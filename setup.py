"""Setup shim for environments without the `wheel` package.

The project is fully described by pyproject.toml; this file only exists
so that `pip install -e .` can fall back to the legacy setuptools
develop path when PEP 517 editable builds are unavailable offline.
"""
from setuptools import setup

setup()
