"""Repository tooling: the ``repro-lint`` static analyzer and doc checkers.

Making ``tools`` a package lets CI (and developers) run the invariant
checker as ``python -m tools.lint src/ tools/`` from the repository
root.  ``check_doc_links.py`` remains directly runnable as a script.
"""
