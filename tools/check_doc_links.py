#!/usr/bin/env python3
"""Docs link checker: every local reference in the Markdown docs resolves.

Scans ``README.md`` and ``docs/*.md`` for

* Markdown links ``[text](target)`` whose target is a local path
  (external ``http(s)``/``mailto`` targets and pure ``#anchors`` are
  skipped), and
* inline-code path mentions like ``src/repro/storage/stats.py`` or
  ``benchmarks/conftest.py`` (backticked tokens containing a ``/`` and
  a known source/doc suffix),

and fails with a non-zero exit status listing every target that does
not exist relative to the referencing file (links) or the repository
root (code mentions).  Run directly or through
``tests/test_docs_links.py``; CI runs it as the docs link-check step.

It also keeps the lint suppressions honest: every ``RPRxxx`` code named
in a ``repro-lint: ignore[...]`` comment anywhere under ``src/``,
``tools/``, ``tests/`` or ``benchmarks/`` must exist in the checker
registry (``tools/lint``), so a renamed or removed checker cannot leave
stale suppressions behind.  ``tests/lint_fixtures/`` is exempt — its
files are deliberately malformed inputs for the lint tests.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: ``[text](target)`` — non-greedy, one line, no nested brackets needed.
MARKDOWN_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Backticked repo paths: at least one '/', a known file suffix.
CODE_PATH = re.compile(r"`([A-Za-z0-9_./-]+/[A-Za-z0-9_.-]+\.(?:py|md|yml|toml))`")

#: Suffixes stripped from link targets before existence checks.
_ANCHOR = re.compile(r"#.*$")


def _documents() -> list[Path]:
    docs = [REPO_ROOT / "README.md"]
    docs.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [doc for doc in docs if doc.exists()]


def _is_external(target: str) -> bool:
    return target.startswith(("http://", "https://", "mailto:")) or target.startswith(
        "#"
    )


def check_document(doc: Path) -> list[str]:
    """Broken references in one Markdown file, as report lines."""
    problems: list[str] = []
    try:
        label = doc.relative_to(REPO_ROOT)
    except ValueError:  # a file outside the repo (tests use tmp dirs)
        label = doc
    text = doc.read_text(encoding="utf-8")
    for line_number, line in enumerate(text.splitlines(), start=1):
        for match in MARKDOWN_LINK.finditer(line):
            target = _ANCHOR.sub("", match.group(1))
            if not target or _is_external(match.group(1)):
                continue
            resolved = (doc.parent / target).resolve()
            if not resolved.exists():
                problems.append(
                    f"{label}:{line_number}: "
                    f"broken link target {target!r}"
                )
        for match in CODE_PATH.finditer(line):
            target = match.group(1)
            # Trailing globs / wildcard mentions are prose, not paths.
            if "*" in target:
                continue
            if not (REPO_ROOT / target).exists():
                problems.append(
                    f"{label}:{line_number}: "
                    f"missing file mentioned in code span {target!r}"
                )
    return problems


#: Python trees whose suppression comments are validated.
SUPPRESSION_TREES = ("src", "tools", "tests", "benchmarks")

#: Directories holding deliberately malformed linter inputs.
SUPPRESSION_EXEMPT = "lint_fixtures"


def check_suppression_codes() -> list[str]:
    """Suppression comments naming codes the lint registry doesn't know."""
    if str(REPO_ROOT) not in sys.path:
        sys.path.insert(0, str(REPO_ROOT))
    from tools.lint import CHECKER_CODES
    from tools.lint.findings import scan_suppressions

    problems: list[str] = []
    for tree in SUPPRESSION_TREES:
        root = REPO_ROOT / tree
        if not root.is_dir():
            continue
        for path in sorted(root.rglob("*.py")):
            if SUPPRESSION_EXEMPT in path.parts:
                continue
            source = path.read_text(encoding="utf-8")
            if "repro-lint:" not in source:
                continue
            label = path.relative_to(REPO_ROOT)
            for suppression in scan_suppressions(source):
                for code in suppression.codes:
                    if code not in CHECKER_CODES:
                        problems.append(
                            f"{label}:{suppression.line}: suppression names "
                            f"unknown lint code {code!r} (known: "
                            f"{', '.join(sorted(CHECKER_CODES))})"
                        )
    return problems


def main() -> int:
    documents = _documents()
    if not documents:
        print("no documentation files found", file=sys.stderr)
        return 1
    problems = [problem for doc in documents for problem in check_document(doc)]
    problems.extend(check_suppression_codes())
    if problems:
        print("\n".join(problems), file=sys.stderr)
        print(f"\n{len(problems)} broken documentation reference(s)", file=sys.stderr)
        return 1
    print(f"checked {len(documents)} documentation file(s): all references resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
