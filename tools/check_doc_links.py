#!/usr/bin/env python3
"""Docs link checker: every local reference in the Markdown docs resolves.

Scans ``README.md`` and ``docs/*.md`` for

* Markdown links ``[text](target)`` whose target is a local path
  (external ``http(s)``/``mailto`` targets and pure ``#anchors`` are
  skipped), and
* inline-code path mentions like ``src/repro/storage/stats.py`` or
  ``benchmarks/conftest.py`` (backticked tokens containing a ``/`` and
  a known source/doc suffix),

and fails with a non-zero exit status listing every target that does
not exist relative to the referencing file (links) or the repository
root (code mentions).  Run directly or through
``tests/test_docs_links.py``; CI runs it as the docs link-check step.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: ``[text](target)`` — non-greedy, one line, no nested brackets needed.
MARKDOWN_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Backticked repo paths: at least one '/', a known file suffix.
CODE_PATH = re.compile(r"`([A-Za-z0-9_./-]+/[A-Za-z0-9_.-]+\.(?:py|md|yml|toml))`")

#: Suffixes stripped from link targets before existence checks.
_ANCHOR = re.compile(r"#.*$")


def _documents() -> list[Path]:
    docs = [REPO_ROOT / "README.md"]
    docs.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [doc for doc in docs if doc.exists()]


def _is_external(target: str) -> bool:
    return target.startswith(("http://", "https://", "mailto:")) or target.startswith(
        "#"
    )


def check_document(doc: Path) -> list[str]:
    """Broken references in one Markdown file, as report lines."""
    problems: list[str] = []
    try:
        label = doc.relative_to(REPO_ROOT)
    except ValueError:  # a file outside the repo (tests use tmp dirs)
        label = doc
    text = doc.read_text(encoding="utf-8")
    for line_number, line in enumerate(text.splitlines(), start=1):
        for match in MARKDOWN_LINK.finditer(line):
            target = _ANCHOR.sub("", match.group(1))
            if not target or _is_external(match.group(1)):
                continue
            resolved = (doc.parent / target).resolve()
            if not resolved.exists():
                problems.append(
                    f"{label}:{line_number}: "
                    f"broken link target {target!r}"
                )
        for match in CODE_PATH.finditer(line):
            target = match.group(1)
            # Trailing globs / wildcard mentions are prose, not paths.
            if "*" in target:
                continue
            if not (REPO_ROOT / target).exists():
                problems.append(
                    f"{label}:{line_number}: "
                    f"missing file mentioned in code span {target!r}"
                )
    return problems


def main() -> int:
    documents = _documents()
    if not documents:
        print("no documentation files found", file=sys.stderr)
        return 1
    problems = [problem for doc in documents for problem in check_document(doc)]
    if problems:
        print("\n".join(problems), file=sys.stderr)
        print(f"\n{len(problems)} broken documentation reference(s)", file=sys.stderr)
        return 1
    print(f"checked {len(documents)} documentation file(s): all references resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
