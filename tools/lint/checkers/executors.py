"""RPR005 executor-hygiene checker.

The scatter/gather tier (``ShardedQueryService._scatter``) relies on
two disciplines that are easy to erode in review:

* exceptions must not be silently swallowed — a bare ``except:`` or a
  broad ``except Exception:`` whose handler never re-raises hides shard
  failures as empty results;
* every future returned by ``executor.submit`` must be consumed via
  ``result()`` (or ``as_completed``), otherwise worker exceptions are
  dropped on the floor and back-pressure disappears.
"""

from __future__ import annotations

import ast

from ..findings import Finding
from ..walker import iter_functions
from .base import Checker

#: Exception names considered too broad to swallow silently.
BROAD_EXCEPTIONS = frozenset({"Exception", "BaseException"})

#: Call names that consume futures.
FUTURE_CONSUMERS = frozenset({"result", "as_completed"})


def _exception_names(node: ast.expr) -> set[str]:
    """Names in an ``except <expr>`` clause (handles tuples)."""
    if isinstance(node, ast.Tuple):
        names: set[str] = set()
        for elt in node.elts:
            names.update(_exception_names(elt))
        return names
    if isinstance(node, ast.Name):
        return {node.id}
    if isinstance(node, ast.Attribute):
        return {node.attr}
    return set()


class ExecutorHygieneChecker(Checker):
    code = "RPR005"
    name = "executor-hygiene"
    description = (
        "no bare/broad except swallowing exceptions; every "
        "executor.submit future must be consumed"
    )

    def check_file(self, path, tree, source):
        findings: list[Finding] = []
        findings.extend(self._check_excepts(path, tree))
        for func in iter_functions(tree):
            findings.extend(self._check_submits(path, func))
        return findings

    @staticmethod
    def _check_excepts(path: str, tree: ast.Module) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                findings.append(
                    Finding(
                        code=ExecutorHygieneChecker.code,
                        path=path,
                        line=node.lineno,
                        message=(
                            "bare 'except:' swallows every error including "
                            "KeyboardInterrupt; catch a specific exception"
                        ),
                    )
                )
                continue
            broad = _exception_names(node.type) & BROAD_EXCEPTIONS
            if not broad:
                continue
            reraises = any(
                isinstance(inner, ast.Raise) for inner in ast.walk(node)
            )
            if not reraises:
                findings.append(
                    Finding(
                        code=ExecutorHygieneChecker.code,
                        path=path,
                        line=node.lineno,
                        message=(
                            f"broad 'except {sorted(broad)[0]}' never "
                            "re-raises; shard failures disappear as empty "
                            "results — narrow the type or re-raise"
                        ),
                    )
                )
        return findings

    @staticmethod
    def _check_submits(path: str, func) -> list[Finding]:
        submit_lines: list[int] = []
        discarded_lines: list[int] = []
        consumes = False
        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                name = None
                if isinstance(node.func, ast.Attribute):
                    name = node.func.attr
                elif isinstance(node.func, ast.Name):
                    name = node.func.id
                if name == "submit" and isinstance(node.func, ast.Attribute):
                    submit_lines.append(node.lineno)
                elif name in FUTURE_CONSUMERS:
                    consumes = True
            elif isinstance(node, ast.Expr) and isinstance(
                node.value, ast.Call
            ):
                call = node.value
                if (
                    isinstance(call.func, ast.Attribute)
                    and call.func.attr == "submit"
                ):
                    discarded_lines.append(call.lineno)
        findings = [
            Finding(
                code=ExecutorHygieneChecker.code,
                path=path,
                line=line,
                message=(
                    f"{func.name} discards the future returned by "
                    "executor.submit; its exception (if any) is lost"
                ),
            )
            for line in discarded_lines
        ]
        if submit_lines and not consumes:
            findings.extend(
                Finding(
                    code=ExecutorHygieneChecker.code,
                    path=path,
                    line=line,
                    message=(
                        f"{func.name} submits work but never consumes the "
                        "futures; call result() or iterate as_completed"
                    ),
                )
                for line in submit_lines
                if line not in discarded_lines
            )
        return findings
