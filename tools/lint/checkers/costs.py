"""RPR003 cost-accounting checker.

The paper's maintenance-cost model only works if every page/entry
mutation in the storage engines and index structures is charged to a
``StatsCollector`` counter (``docs/ANALYSIS.md`` describes the rule).  This checker
enforces that at the AST level: inside the scoped modules, any method
that mutates a page container must — directly or through a callee —
touch ``self.stats.<counter>`` or delegate to a storage primitive that
charges internally (``BPlusTree.insert``, ``HeapFile.append``, ...).

Charging is propagated through the class's own call graph with a
fixpoint, so ``BPlusTree._insert`` (which mutates node pages but leaves
the accounting to ``_split_leaf`` and its public caller) is not a false
positive, while a genuinely uncharged mutation still is.
"""

from __future__ import annotations

import ast

from ..findings import Finding
from ..walker import iter_classes, iter_methods
from .base import Checker

#: Attribute names that hold page/entry containers in the storage and
#: index layers.  Mutating through one of these is a chargeable event.
CONTAINER_ATTRS = frozenset(
    {"entries", "children", "pages", "_pages", "keys", "values"}
)

#: In-place container mutators (``self.entries.append(...)`` etc.).
MUTATING_METHODS = frozenset(
    {"append", "insert", "extend", "pop", "remove", "clear", "update"}
)

#: Storage-primitive calls that charge the shared stats internally;
#: calling one of these on a non-container attribute counts as charging
#: (``self._tree.insert(...)``, ``self.heap.delete_where(...)``).
CHARGING_DELEGATES = frozenset(
    {"insert", "delete", "bulk_load", "append", "extend", "delete_where"}
)


def _is_container_attr(node: ast.AST) -> bool:
    return isinstance(node, ast.Attribute) and node.attr in CONTAINER_ATTRS


def _chain_attrs(node: ast.AST) -> set[str]:
    """All attribute names along one dotted chain (``a.b.c`` -> {b, c})."""
    attrs: set[str] = set()
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        if isinstance(node, ast.Attribute):
            attrs.add(node.attr)
        node = node.value
    return attrs


class _MethodFacts:
    """What one method does, as far as cost accounting is concerned."""

    def __init__(self, method: ast.AST, method_names: set[str]) -> None:
        #: ``(attr, line)`` container mutations performed directly.
        self.mutations: list[tuple[str, int]] = []
        self.charges = False
        #: Names of same-class methods invoked through ``self``.
        self.calls: set[str] = set()
        for node in ast.walk(method):
            self._observe(node, method_names)

    def _observe(self, node: ast.AST, method_names: set[str]) -> None:
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                base = target
                if isinstance(base, ast.Subscript):
                    base = base.value
                if "stats" in _chain_attrs(target):
                    self.charges = True
                elif _is_container_attr(base):
                    self.mutations.append((base.attr, target.lineno))
        elif isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ):
            receiver = node.func.value
            name = node.func.attr
            if name in MUTATING_METHODS and _is_container_attr(receiver):
                self.mutations.append((receiver.attr, node.lineno))
            elif (
                name in CHARGING_DELEGATES
                and isinstance(receiver, ast.Attribute)
                and not _is_container_attr(receiver)
            ):
                self.charges = True
            elif (
                isinstance(receiver, ast.Name)
                and receiver.id == "self"
                and name in method_names
            ):
                self.calls.add(name)


class CostAccountingChecker(Checker):
    code = "RPR003"
    name = "cost-accounting"
    description = (
        "page/entry mutations in storage and index code must charge a "
        "self.stats counter, directly or via a charging callee"
    )
    scope = ("storage/btree", "storage/heap", "indexes/")

    def check_file(self, path, tree, source):
        findings: list[Finding] = []
        for cls in iter_classes(tree):
            findings.extend(self._check_class(path, cls))
        return findings

    def _check_class(self, path: str, cls: ast.ClassDef) -> list[Finding]:
        methods = {m.name: m for m in iter_methods(cls)}
        facts = {
            name: _MethodFacts(node, set(methods))
            for name, node in methods.items()
        }
        charging = self._charging_fixpoint(facts)
        findings: list[Finding] = []
        for name, fact in facts.items():
            if name.startswith("__"):
                continue  # construction/reset is not a chargeable mutation
            if name in charging or not fact.mutations:
                continue
            for attr, line in fact.mutations:
                findings.append(
                    Finding(
                        code=self.code,
                        path=path,
                        line=line,
                        message=(
                            f"{cls.name}.{name} mutates '{attr}' but never "
                            "charges a self.stats counter (directly or "
                            "through a callee); the cost model loses this "
                            "write"
                        ),
                    )
                )
        return findings

    @staticmethod
    def _charging_fixpoint(facts: dict[str, _MethodFacts]) -> set[str]:
        """Methods that charge, directly or via transitive self-calls."""
        charging = {name for name, fact in facts.items() if fact.charges}
        changed = True
        while changed:
            changed = False
            for name, fact in facts.items():
                if name not in charging and fact.calls & charging:
                    charging.add(name)
                    changed = True
        return charging
