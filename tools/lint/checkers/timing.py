"""RPR006 timing-discipline checker.

Every latency number the repository reports — span durations, histogram
observations, bench rounds — must come from one clock so figures are
comparable across layers and a test can swap in a deterministic clock
in one place.  That clock lives in ``repro.obs.clock`` (``now``, an
alias of ``time.perf_counter``); ``docs/OBSERVABILITY.md`` and
``docs/ANALYSIS.md`` describe the rule.

This checker bans ad-hoc wall-clock reads everywhere except the
``repro/obs`` package itself: referencing ``time.time`` /
``time.perf_counter`` / ``time.perf_counter_ns`` (call or alias — an
alias would just hide the call site), and importing those names from
``time`` directly.  ``time.monotonic`` (cache TTL clock, injectable)
and ``time.sleep`` (fault injection delays) are deliberately not
banned: they are not measurement.
"""

from __future__ import annotations

import ast

from ..findings import Finding
from .base import Checker

#: ``time`` module attributes whose use constitutes ad-hoc measurement.
BANNED_ATTRS = frozenset({"time", "perf_counter", "perf_counter_ns"})


class TimingDisciplineChecker(Checker):
    code = "RPR006"
    name = "timing-discipline"
    description = (
        "ad-hoc time.time()/time.perf_counter() outside repro/obs; "
        "use repro.obs.clock.now so every latency shares one clock"
    )
    # Applies everywhere except the clock's own home.
    scope = ()

    def matches(self, path) -> bool:
        return "repro/obs" not in path.as_posix()

    def check_file(self, path, tree, source):
        findings: list[Finding] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Attribute):
                if (
                    node.attr in BANNED_ATTRS
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "time"
                ):
                    findings.append(
                        Finding(
                            code=self.code,
                            path=path,
                            line=node.lineno,
                            message=(
                                f"ad-hoc 'time.{node.attr}' — import the "
                                "shared clock instead ('from repro.obs.clock "
                                "import now') so every latency measurement "
                                "uses one source"
                            ),
                        )
                    )
            elif isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in BANNED_ATTRS:
                        findings.append(
                            Finding(
                                code=self.code,
                                path=path,
                                line=node.lineno,
                                message=(
                                    f"importing '{alias.name}' from 'time' — "
                                    "use repro.obs.clock.now so every "
                                    "latency measurement uses one source"
                                ),
                            )
                        )
        return findings
