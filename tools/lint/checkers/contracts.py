"""RPR004 maintenance-contract checker.

Every ``PathIndex`` subclass must make its incremental-maintenance
story explicit (``docs/ANALYSIS.md``): either override the
``_update`` / ``_remove`` hooks, or declare the corresponding
``incremental`` / ``incremental_removal`` flag so the full-rebuild
fall-back is a visible decision rather than a silent default.  The
checker also keeps the ``INDEX_TYPES`` registry honest: every subclass
defined next to a registry must be registered, and every registry entry
must resolve to a class defined there.

The registry comparison is a whole-run check (:meth:`finalize`): the
classes live in sibling modules of the registry's package, so the
checker accumulates both while files stream past and reconciles them at
the end, grouped by directory so fixture packages stay self-contained.
"""

from __future__ import annotations

import ast
import posixpath

from ..findings import Finding
from ..walker import iter_classes, iter_methods
from .base import Checker

#: Base-class names that opt a class into the maintenance contract.
INDEX_BASES = frozenset({"PathIndex"})

#: The registry mapping ``name -> class`` kept in the package init.
#: (Held as a constant so this file never contains a bare assignment to
#: that name — the checker must not flag itself.)
REGISTRY_NAME = "INDEX_TYPES"

#: ``(flag, hook)`` pairs the contract covers.
CONTRACT = (
    ("incremental", "_update"),
    ("incremental_removal", "_remove"),
)


def _base_names(cls: ast.ClassDef) -> set[str]:
    names: set[str] = set()
    for base in cls.bases:
        if isinstance(base, ast.Name):
            names.add(base.id)
        elif isinstance(base, ast.Attribute):
            names.add(base.attr)
    return names


def _class_level_flags(cls: ast.ClassDef) -> dict[str, ast.expr]:
    """Class-body ``name = value`` assignments (incl. annotated)."""
    flags: dict[str, ast.expr] = {}
    for node in cls.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    flags[target.id] = node.value
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name) and node.value is not None:
                flags[node.target.id] = node.value
    return flags


class MaintenanceContractChecker(Checker):
    code = "RPR004"
    name = "maintenance-contract"
    description = (
        "PathIndex subclasses must override _update/_remove or declare "
        "the incremental flags; INDEX_TYPES must match the class set"
    )

    def __init__(self) -> None:
        #: ``class name -> directory`` for every subclass seen this run.
        self._classes: dict[str, str] = {}
        #: ``(path, line, referenced class names)`` per registry seen.
        self._registries: list[tuple[str, int, set[str]]] = []

    def check_file(self, path, tree, source):
        findings: list[Finding] = []
        directory = posixpath.dirname(path)
        for cls in iter_classes(tree):
            if not (_base_names(cls) & INDEX_BASES):
                continue
            self._classes[cls.name] = directory
            findings.extend(self._check_contract(path, cls))
        self._record_registry(path, tree)
        return findings

    def _check_contract(self, path: str, cls: ast.ClassDef) -> list[Finding]:
        findings: list[Finding] = []
        flags = _class_level_flags(cls)
        methods = {m.name for m in iter_methods(cls)}
        for flag, hook in CONTRACT:
            declared = flags.get(flag)
            overrides = hook in methods
            if declared is None and not overrides:
                findings.append(
                    Finding(
                        code=self.code,
                        path=path,
                        line=cls.lineno,
                        message=(
                            f"{cls.name} neither overrides {hook} nor "
                            f"declares '{flag}'; state the full-rebuild "
                            "fall-back explicitly "
                            f"({flag} = False) or implement {hook}"
                        ),
                    )
                )
                continue
            if declared is None:
                continue
            value = (
                declared.value
                if isinstance(declared, ast.Constant)
                else None
            )
            if value is True and not overrides:
                findings.append(
                    Finding(
                        code=self.code,
                        path=path,
                        line=declared.lineno,
                        message=(
                            f"{cls.name} declares {flag} = True but does "
                            f"not override {hook}; the flag promises an "
                            "incremental path that does not exist"
                        ),
                    )
                )
            elif value is False and overrides:
                findings.append(
                    Finding(
                        code=self.code,
                        path=path,
                        line=declared.lineno,
                        message=(
                            f"{cls.name} declares {flag} = False yet "
                            f"overrides {hook}; the override is dead "
                            "behind the flag"
                        ),
                    )
                )
        return findings

    def _record_registry(self, path: str, tree: ast.Module) -> None:
        for node in tree.body:
            if isinstance(node, ast.Assign):
                targets = node.targets
                value = node.value
            elif isinstance(node, ast.AnnAssign):
                targets = [node.target]
                value = node.value
            else:
                continue
            named = any(
                isinstance(t, ast.Name) and t.id == REGISTRY_NAME
                for t in targets
            )
            if not named or not isinstance(value, ast.Dict):
                continue
            referenced = {
                v.id for v in value.values if isinstance(v, ast.Name)
            }
            self._registries.append((path, node.lineno, referenced))

    def finalize(self):
        findings: list[Finding] = []
        for path, line, referenced in self._registries:
            directory = posixpath.dirname(path)
            local = {
                name
                for name, cls_dir in self._classes.items()
                if cls_dir == directory
            }
            for name in sorted(local - referenced):
                findings.append(
                    Finding(
                        code=self.code,
                        path=path,
                        line=line,
                        message=(
                            f"{REGISTRY_NAME} is out of sync: PathIndex "
                            f"subclass {name} is defined in this package "
                            "but not registered"
                        ),
                    )
                )
            for name in sorted(referenced - set(self._classes)):
                findings.append(
                    Finding(
                        code=self.code,
                        path=path,
                        line=line,
                        message=(
                            f"{REGISTRY_NAME} references {name}, which is "
                            "not a PathIndex subclass seen in this run"
                        ),
                    )
                )
        return findings
