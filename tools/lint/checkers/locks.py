"""RPR001 lock-discipline and RPR002 lock-ordering checkers.

The serving tier guards mutable state behind per-object locks
(``QueryService``, ``LRUCache``, ``ShardTopology``, the shard classes —
see ``docs/ARCHITECTURE.md``).  Two statically checkable conventions
fall out of that design:

* **RPR001** — within a class that creates a ``threading.Lock`` /
  ``RLock``, the attributes written inside any ``with self.<lock>:``
  block form the class's *guarded set*.  A public method that writes a
  guarded attribute outside a lock block is a race waiting for a
  concurrent caller.  Private (underscore) methods are assumed to be
  internal helpers invoked with the lock already held — the pattern
  ``QueryService._flush`` uses — so only public entry points are
  flagged.
* **RPR002** — multi-shard operations must take shard ``add_lock``s in
  ascending shard order (``ShardedCollection.move_document``).  A
  ``with`` statement acquiring two or more ``add_lock``s is accepted
  only when every lock's owner was produced by a ``sorted(...)`` call
  in the same function (the ascending-order idiom); nested ``add_lock``
  acquisitions are flagged outright because their order cannot be
  proven lexically.
"""

from __future__ import annotations

import ast

from ..findings import Finding
from ..walker import (
    is_public_method,
    iter_classes,
    iter_functions,
    iter_methods,
    lock_attributes,
    walk_with_lock_context,
    written_self_attrs,
)
from .base import Checker


class LockDisciplineChecker(Checker):
    code = "RPR001"
    name = "lock-discipline"
    description = (
        "attributes guarded by a class lock must not be written outside "
        "a lock block in public methods"
    )

    def check_file(self, path, tree, source):
        findings: list[Finding] = []
        for cls in iter_classes(tree):
            locks = lock_attributes(cls)
            if not locks:
                continue
            guarded = self._guarded_attributes(cls, locks)
            if not guarded:
                continue
            for method in iter_methods(cls):
                if not is_public_method(method):
                    continue
                findings.extend(
                    self._unguarded_writes(path, cls, method, locks, guarded)
                )
        return findings

    @staticmethod
    def _guarded_attributes(cls: ast.ClassDef, locks: set[str]) -> set[str]:
        """Attrs written under any of the class's locks, in any method."""
        guarded: set[str] = set()

        def record(node, inside):
            if inside:
                guarded.update(attr for attr, _ in written_self_attrs(node))

        for method in iter_methods(cls):
            walk_with_lock_context(method, False, locks, record)
        # Lock slots themselves are infrastructure, not guarded state.
        return guarded - locks

    @staticmethod
    def _unguarded_writes(path, cls, method, locks, guarded) -> list[Finding]:
        findings: list[Finding] = []

        def check(node, inside):
            if inside:
                return
            for attr, line in written_self_attrs(node):
                if attr in guarded:
                    findings.append(
                        Finding(
                            code=LockDisciplineChecker.code,
                            path=path,
                            line=line,
                            message=(
                                f"{cls.name}.{method.name} writes "
                                f"'self.{attr}' without holding a lock, but "
                                f"the attribute is guarded by "
                                f"{sorted(locks)} elsewhere in the class"
                            ),
                        )
                    )

        walk_with_lock_context(method, False, locks, check)
        return findings


#: Lock attributes that participate in the cross-object ordering
#: protocol (acquired on *other* objects, in ascending shard order).
ORDERED_LOCK_ATTRS = frozenset({"add_lock"})


class LockOrderingChecker(Checker):
    code = "RPR002"
    name = "lock-ordering"
    description = (
        "multi-shard add_lock acquisitions must be provably ordered "
        "(owners produced by sorted(...)) and never nested"
    )

    def check_file(self, path, tree, source):
        findings: list[Finding] = []
        for func in iter_functions(tree):
            findings.extend(self._check_function(path, func))
        return findings

    def _check_function(self, path: str, func) -> list[Finding]:
        findings: list[Finding] = []
        sorted_names = self._sorted_bound_names(func)

        def visit(node, held: bool):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue  # nested defs are visited as functions themselves
                child_held = held
                if isinstance(child, (ast.With, ast.AsyncWith)):
                    owners = self._ordered_lock_owners(child)
                    if owners:
                        if held:
                            findings.append(
                                Finding(
                                    code=self.code,
                                    path=path,
                                    line=child.lineno,
                                    message=(
                                        f"{func.name} nests a shard-lock "
                                        "acquisition inside another held "
                                        "shard lock; take every add_lock in "
                                        "one `with`, in ascending shard order"
                                    ),
                                )
                            )
                        elif len(owners) >= 2 and not all(
                            isinstance(owner, ast.Name)
                            and owner.id in sorted_names
                            for owner in owners
                        ):
                            findings.append(
                                Finding(
                                    code=self.code,
                                    path=path,
                                    line=child.lineno,
                                    message=(
                                        f"{func.name} acquires "
                                        f"{len(owners)} add_locks whose order "
                                        "is not provable; bind the owners "
                                        "with sorted(...) first (ascending "
                                        "shard order)"
                                    ),
                                )
                            )
                        child_held = True
                visit(child, child_held)

        visit(func, False)
        return findings

    @staticmethod
    def _ordered_lock_owners(node) -> list[ast.expr]:
        """Owner expressions of the ordered locks a ``with`` acquires."""
        owners = []
        for item in node.items:
            expr = item.context_expr
            if (
                isinstance(expr, ast.Attribute)
                and expr.attr in ORDERED_LOCK_ATTRS
            ):
                # self.add_lock guards this object only — the ordering
                # protocol concerns locks taken on *other* objects.
                if isinstance(expr.value, ast.Name) and expr.value.id == "self":
                    continue
                owners.append(expr.value)
        return owners

    @staticmethod
    def _sorted_bound_names(func) -> set[str]:
        """Names bound (possibly via tuple unpack) to a sorted(...) call."""
        names: set[str] = set()
        for node in ast.walk(func):
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            if not (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id == "sorted"
            ):
                continue
            stack = list(node.targets)
            while stack:
                target = stack.pop()
                if isinstance(target, (ast.Tuple, ast.List)):
                    stack.extend(target.elts)
                elif isinstance(target, ast.Name):
                    names.add(target.id)
        return names
