"""The checker interface the ``repro-lint`` runner drives."""

from __future__ import annotations

import ast
from pathlib import Path

from ..findings import Finding


class Checker:
    """One invariant: a code, a scope and a per-file AST pass.

    Subclasses set :attr:`code` / :attr:`name` / :attr:`description`,
    implement :meth:`check_file`, and may implement :meth:`finalize`
    for whole-run checks that need to see every file first (the RPR004
    registry comparison).  A fresh instance is created per run, so
    checkers may accumulate state across :meth:`check_file` calls.
    """

    #: Stable finding code (``RPR001`` ...), unique across the registry.
    code: str = "RPR999"
    #: Short kebab name used by reporters and docs.
    name: str = "abstract"
    #: One-line summary shown by ``--list-codes``.
    description: str = ""
    #: Path substrings (POSIX) this checker is scoped to; empty = all
    #: files.  Matching is substring-based so the scope survives both
    #: absolute and repository-relative invocation.
    scope: tuple[str, ...] = ()

    def matches(self, path: Path) -> bool:
        """Whether this checker applies to ``path`` (scope filter)."""
        if not self.scope:
            return True
        posix = path.as_posix()
        return any(pattern in posix for pattern in self.scope)

    def check_file(
        self, path: str, tree: ast.Module, source: str
    ) -> list[Finding]:
        """Findings for one parsed file (``path`` is the display path)."""
        raise NotImplementedError

    def finalize(self) -> list[Finding]:
        """Whole-run findings, after every file was checked."""
        return []
