"""Checker registry for ``repro-lint``.

New checkers register here: import the class, append it to
:data:`ALL_CHECKERS`, and the runner, the ``--list-codes`` output, the
suppression-hygiene pass and ``tools/check_doc_links.py`` all pick it
up automatically.
"""

from __future__ import annotations

from .base import Checker
from .contracts import MaintenanceContractChecker
from .costs import CostAccountingChecker
from .executors import ExecutorHygieneChecker
from .locks import LockDisciplineChecker, LockOrderingChecker
from .timing import TimingDisciplineChecker

#: Every registered checker class, in code order.
ALL_CHECKERS: tuple[type[Checker], ...] = (
    LockDisciplineChecker,
    LockOrderingChecker,
    CostAccountingChecker,
    MaintenanceContractChecker,
    ExecutorHygieneChecker,
    TimingDisciplineChecker,
)

#: ``code -> checker class`` for lookups and ``--select`` validation.
CHECKER_CODES: dict[str, type[Checker]] = {
    checker.code: checker for checker in ALL_CHECKERS
}
