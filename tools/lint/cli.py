"""Command-line front end: ``python -m tools.lint [paths...]``.

Exit codes: 0 = clean, 1 = findings reported, 2 = usage error.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from . import CHECKER_CODES, run_paths
from .reporters import render_json, render_text


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based invariant checks for lock discipline, cost "
            "accounting and index-maintenance contracts "
            "(docs/ANALYSIS.md)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tools"],
        help="files or directories to check (default: src tools)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated checker codes to run (e.g. RPR001,RPR003)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print the report as JSON instead of text",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        help="also write the JSON report to FILE (for CI artifacts)",
    )
    parser.add_argument(
        "--list-codes",
        action="store_true",
        help="list the registered checker codes and exit",
    )
    return parser


def _parse_select(raw: str) -> list[str]:
    codes = [code.strip() for code in raw.split(",") if code.strip()]
    unknown = [code for code in codes if code not in CHECKER_CODES]
    if unknown:
        raise SystemExit(
            f"repro-lint: unknown code(s) {', '.join(unknown)}; known: "
            f"{', '.join(sorted(CHECKER_CODES))}"
        )
    return codes


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)
    if options.list_codes:
        for code in sorted(CHECKER_CODES):
            checker = CHECKER_CODES[code]
            print(f"{code}  {checker.name}: {checker.description}")
        return 0
    try:
        select = _parse_select(options.select) if options.select else None
    except SystemExit as exc:
        print(exc, file=sys.stderr)
        return 2
    result = run_paths(options.paths, select=select)
    if options.output:
        with open(options.output, "w", encoding="utf-8") as handle:
            handle.write(render_json(result) + "\n")
    print(render_json(result) if options.json else render_text(result))
    return 0 if result.clean else 1
