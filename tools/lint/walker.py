"""Shared AST plumbing for the ``repro-lint`` checkers.

Everything here is deliberately small: helpers to enumerate classes and
methods, to recognise lock-attribute creation and ``with``-lock
acquisition, and to extract the ``self.<attr>`` targets a statement
writes.  Checkers compose these into their specific invariants.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

#: Constructors whose result makes an attribute a lock:
#: ``threading.Lock()`` / ``threading.RLock()`` / bare ``Lock()``.
LOCK_FACTORIES = frozenset({"Lock", "RLock"})

FunctionNode = (ast.FunctionDef, ast.AsyncFunctionDef)


def iter_classes(tree: ast.AST) -> Iterator[ast.ClassDef]:
    """Every class definition in the module, including nested ones."""
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            yield node


def iter_methods(cls: ast.ClassDef) -> Iterator[ast.FunctionDef]:
    """The directly defined methods of one class (no nested classes)."""
    for node in cls.body:
        if isinstance(node, FunctionNode):
            yield node


def iter_functions(tree: ast.AST) -> Iterator[ast.FunctionDef]:
    """Every function/method definition anywhere in the module."""
    for node in ast.walk(tree):
        if isinstance(node, FunctionNode):
            yield node


def call_name(call: ast.Call) -> Optional[str]:
    """The trailing name of a call target (``x.y.z()`` -> ``"z"``)."""
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    if isinstance(call.func, ast.Name):
        return call.func.id
    return None


def is_lock_constructor(node: ast.AST) -> bool:
    """True for ``threading.Lock()`` / ``threading.RLock()`` / ``Lock()``."""
    return (
        isinstance(node, ast.Call)
        and call_name(node) in LOCK_FACTORIES
        and not node.args
        and not node.keywords
    )


def lock_attributes(cls: ast.ClassDef) -> set[str]:
    """Names of ``self.<attr>`` slots a class binds to a new lock."""
    locks: set[str] = set()
    for method in iter_methods(cls):
        for node in ast.walk(method):
            if not isinstance(node, ast.Assign):
                continue
            if not is_lock_constructor(node.value):
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    locks.add(target.attr)
    return locks


def with_acquired_self_locks(
    node: ast.With | ast.AsyncWith, lock_attrs: set[str]
) -> list[str]:
    """The class lock attrs a ``with`` statement takes via ``self.<lock>``."""
    acquired: list[str] = []
    for item in node.items:
        expr = item.context_expr
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and expr.attr in lock_attrs
        ):
            acquired.append(expr.attr)
    return acquired


def written_self_attrs(node: ast.AST) -> list[tuple[str, int]]:
    """``(attr, line)`` pairs for ``self.<attr>`` slots a statement writes.

    Covers plain, augmented and annotated assignments, both to the
    attribute itself (``self.total = 0``, ``self.total += 1``) and
    through a subscript (``self.counts[key] = n``).  Annotated
    assignments without a value (pure annotations) write nothing.
    """
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, ast.AugAssign):
        targets = [node.target]
    elif isinstance(node, ast.AnnAssign):
        if node.value is None:
            return []
        targets = [node.target]
    else:
        return []
    writes: list[tuple[str, int]] = []
    stack = list(targets)
    while stack:
        target = stack.pop()
        if isinstance(target, (ast.Tuple, ast.List)):
            stack.extend(target.elts)
            continue
        base = target
        if isinstance(base, ast.Subscript):
            base = base.value
        if (
            isinstance(base, ast.Attribute)
            and isinstance(base.value, ast.Name)
            and base.value.id == "self"
        ):
            writes.append((base.attr, target.lineno))
    return writes


def walk_with_lock_context(node, inside: bool, lock_attrs: set[str], on_node):
    """Depth-first walk calling ``on_node(child, inside_lock)`` per node.

    ``inside`` flips to True for the body of any ``with`` statement that
    acquires one of ``lock_attrs`` through ``self`` — lexical
    containment, the same approximation a reviewer applies.
    """
    for child in ast.iter_child_nodes(node):
        child_inside = inside
        if isinstance(child, (ast.With, ast.AsyncWith)):
            if with_acquired_self_locks(child, lock_attrs):
                child_inside = True
        on_node(child, child_inside)
        walk_with_lock_context(child, child_inside, lock_attrs, on_node)


def is_public_method(method: ast.FunctionDef) -> bool:
    """Public = not underscore-prefixed (dunders are not public entry
    points for these invariants either)."""
    return not method.name.startswith("_")
