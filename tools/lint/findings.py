"""The finding model and inline-suppression parsing for ``repro-lint``.

A :class:`Finding` is one violation: a checker code, a file, a line and
a human-readable message.  Findings are value objects so reporters and
tests can sort, compare and deduplicate them.

Suppressions are inline comments of the form::

    some_code_here()  # repro-lint: ignore[RPR003] -- charged by the caller

The bracket lists one or more comma-separated checker codes; everything
after ``--`` is the mandatory justification.  A suppression covers its
own line and, when it stands alone on a comment-only line, the line
below it.  Suppressions without a justification, or naming a code the
registry does not know, are themselves reported under the framework
meta code :data:`META_CODE` (RPR000) — and RPR000 cannot be suppressed,
so suppression hygiene is a hard gate like everything else.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

#: Framework meta code: suppression hygiene and unparsable files.
META_CODE = "RPR000"

#: ``# repro-lint: ignore[RPR001,RPR002] -- justification`` (trailing ok).
SUPPRESSION_RE = re.compile(
    r"#\s*repro-lint:\s*ignore\[([^\]]*)\]\s*(?:--\s*(?P<why>\S.*?))?\s*$"
)


@dataclass(frozen=True)
class Finding:
    """One violation reported by a checker."""

    code: str
    path: str
    line: int
    message: str

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.code, self.message)

    def format(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"

    def to_dict(self) -> dict[str, object]:
        return {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }


@dataclass(frozen=True)
class Suppression:
    """One parsed ``# repro-lint: ignore[...]`` comment."""

    line: int
    codes: tuple[str, ...]
    justification: Optional[str]
    #: True when the comment owns its whole line, in which case it also
    #: covers the line below (the statement it annotates).
    standalone: bool

    def covered_lines(self) -> tuple[int, ...]:
        if self.standalone:
            return (self.line, self.line + 1)
        return (self.line,)


def scan_suppressions(source: str) -> list[Suppression]:
    """Every suppression comment in ``source``, in line order."""
    suppressions: list[Suppression] = []
    for line_number, line in enumerate(source.splitlines(), start=1):
        match = SUPPRESSION_RE.search(line)
        if match is None:
            continue
        codes = tuple(
            code.strip() for code in match.group(1).split(",") if code.strip()
        )
        justification = match.group("why")
        suppressions.append(
            Suppression(
                line=line_number,
                codes=codes,
                justification=justification,
                standalone=line.lstrip().startswith("#"),
            )
        )
    return suppressions


def apply_suppressions(
    findings: list[Finding], suppressions: list[Suppression]
) -> list[Finding]:
    """Drop findings covered by a suppression for their code.

    RPR000 (suppression hygiene) findings are never dropped — a
    suppression cannot vouch for itself.
    """
    covered: dict[int, set[str]] = {}
    for suppression in suppressions:
        for line in suppression.covered_lines():
            covered.setdefault(line, set()).update(suppression.codes)
    return [
        finding
        for finding in findings
        if finding.code == META_CODE
        or finding.code not in covered.get(finding.line, ())
    ]
