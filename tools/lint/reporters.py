"""Text and JSON rendering of a :class:`~tools.lint.LintResult`."""

from __future__ import annotations

import json

from . import LintResult

#: Bumped when the JSON shape changes, so CI consumers can pin it.
JSON_VERSION = 1


def render_text(result: LintResult) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = [finding.format() for finding in result.findings]
    if result.findings:
        lines.append(
            f"{len(result.findings)} finding(s) in "
            f"{result.files_checked} file(s)"
        )
    else:
        lines.append(f"clean: {result.files_checked} file(s) checked")
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Machine-readable report for the CI artifact."""
    payload = {
        "version": JSON_VERSION,
        "files_checked": result.files_checked,
        "finding_count": len(result.findings),
        "findings": [finding.to_dict() for finding in result.findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
