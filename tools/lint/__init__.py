"""``repro-lint``: AST-based invariant checks for this repository.

The framework walks Python sources with the standard :mod:`ast` module
and runs a registry of checkers over each parsed file — no third-party
dependencies, so it works in the same bare container the test suite
runs in.  See ``docs/ANALYSIS.md`` for the catalogue of codes and
``python -m tools.lint --help`` for the CLI.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Sequence

from .checkers import ALL_CHECKERS, CHECKER_CODES
from .findings import (
    META_CODE,
    Finding,
    Suppression,
    apply_suppressions,
    scan_suppressions,
)

__all__ = [
    "ALL_CHECKERS",
    "CHECKER_CODES",
    "META_CODE",
    "Finding",
    "LintResult",
    "collect_files",
    "run_paths",
]

#: Directory names never descended into.
SKIP_DIRS = frozenset({"__pycache__", ".git"})


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings


def collect_files(paths: Iterable[str]) -> list[Path]:
    """The ``.py`` files under ``paths`` (files kept, dirs walked)."""
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(
                candidate
                for candidate in sorted(path.rglob("*.py"))
                if not (SKIP_DIRS & set(candidate.parts))
            )
        elif path.suffix == ".py":
            files.append(path)
    return files


def _suppression_hygiene(
    path: str, suppressions: Sequence[Suppression]
) -> list[Finding]:
    """RPR000 findings for malformed suppressions in one file."""
    findings: list[Finding] = []
    for suppression in suppressions:
        unknown = [
            code for code in suppression.codes if code not in CHECKER_CODES
        ]
        if not suppression.codes:
            unknown = ["<empty>"]
        for code in unknown:
            if code == META_CODE:
                message = (
                    f"{META_CODE} (suppression hygiene) cannot be "
                    "suppressed"
                )
            else:
                message = (
                    f"suppression names unknown code {code}; known "
                    f"codes are {', '.join(sorted(CHECKER_CODES))}"
                )
            findings.append(
                Finding(
                    code=META_CODE,
                    path=path,
                    line=suppression.line,
                    message=message,
                )
            )
        if not suppression.justification:
            findings.append(
                Finding(
                    code=META_CODE,
                    path=path,
                    line=suppression.line,
                    message=(
                        "suppression has no justification; append "
                        "'-- why it is safe' after the bracket"
                    ),
                )
            )
    return findings


def run_paths(
    paths: Iterable[str], select: Optional[Iterable[str]] = None
) -> LintResult:
    """Run every (selected) checker over the files under ``paths``."""
    selected = set(select) if select is not None else None
    checkers = [
        checker_cls()
        for checker_cls in ALL_CHECKERS
        if selected is None or checker_cls.code in selected
    ]
    result = LintResult()
    for file_path in collect_files(paths):
        display = file_path.as_posix()
        result.files_checked += 1
        try:
            source = file_path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=display)
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            result.findings.append(
                Finding(
                    code=META_CODE,
                    path=display,
                    line=getattr(exc, "lineno", None) or 1,
                    message=f"could not parse file: {exc}",
                )
            )
            continue
        file_findings: list[Finding] = []
        for checker in checkers:
            if checker.matches(file_path):
                file_findings.extend(checker.check_file(display, tree, source))
        suppressions = scan_suppressions(source)
        file_findings.extend(_suppression_hygiene(display, suppressions))
        result.findings.extend(
            apply_suppressions(file_findings, suppressions)
        )
    for checker in checkers:
        result.findings.extend(checker.finalize())
    result.findings.sort(key=Finding.sort_key)
    return result
