"""Aggregate per-bench ``BENCH_*.json`` artifacts into one trajectory.

Every benchmark run writes a machine-readable artifact via
:func:`repro.bench.write_bench_report` (``benchmarks/artifacts/
BENCH_<name>.json``).  Each artifact carries its own provenance
(``generated_at``, ``git_revision``) and a bench-specific summary dict
whose *headline* number — the ratio the bench asserts on — lives at a
bench-specific path.  This tool collects all of them into a single
``BENCH_summary.json`` so the performance trajectory of the serving
stack is readable in one place (and diffable across PRs) instead of
spread over a dozen files.

Stdlib-only on purpose: CI runs it right after the bench smoke steps,
with or without ``PYTHONPATH=src``.

Usage::

    python -m tools.bench_summary [--dir benchmarks/artifacts]
                                  [--output benchmarks/artifacts/BENCH_summary.json]
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from datetime import datetime, timezone
from pathlib import Path
from typing import Optional

#: Where each bench's headline number lives inside its ``summary`` dict
#: (a ``/``-separated path).  Benches not listed here fall back to a
#: deterministic scan for ratio/speedup-named numeric leaves.
HEADLINES = {
    "failover": "throughput_ratio",
    "frontdoor": "coalesce_qps_ratio",
    "incremental_update": "cost_ratio",
    "kernels": "sections/fig12_mixed/speedup",
    "observability": "paired_ratio_median",
    "rebalance": "skew_recovery/throughput_ratio",
    "remove_replace": "cost_ratio",
    "service_throughput": "speedup",
    "shard_scaling": "sharded/4/throughput_ratio",
}

#: Substrings that mark a numeric leaf as headline-shaped.
_RATIO_MARKERS = ("ratio", "speedup")


def _dig(summary: dict, path: str) -> Optional[float]:
    """The numeric leaf at a ``/``-separated path, or ``None``."""
    node = summary
    for part in path.split("/"):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    if isinstance(node, bool) or not isinstance(node, (int, float)):
        return None
    return float(node)


def _ratio_leaves(node, prefix: str = "") -> list[tuple[str, float]]:
    """Every ratio/speedup-named numeric leaf, with its path."""
    leaves: list[tuple[str, float]] = []
    if isinstance(node, dict):
        for key in sorted(node):
            leaves.extend(_ratio_leaves(node[key], f"{prefix}/{key}"))
    elif not isinstance(node, bool) and isinstance(node, (int, float)):
        path = prefix.lstrip("/")
        if any(marker in path.lower() for marker in _RATIO_MARKERS):
            leaves.append((path, float(node)))
    return leaves


def headline_for(bench: str, summary: dict) -> tuple[Optional[str], Optional[float]]:
    """The bench's headline ``(metric_path, value)``.

    Prefers the per-bench override in :data:`HEADLINES`; otherwise the
    shallowest (then alphabetically first) ratio/speedup-named numeric
    leaf, so unknown benches still contribute a deterministic headline.
    """
    override = HEADLINES.get(bench)
    if override is not None:
        value = _dig(summary, override)
        if value is not None:
            return override, value
    leaves = _ratio_leaves(summary)
    if not leaves:
        return None, None
    leaves.sort(key=lambda leaf: (leaf[0].count("/"), leaf[0]))
    return leaves[0]


def _git_revision() -> Optional[str]:
    """The current commit hash, or ``None`` outside a git checkout."""
    try:
        result = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5.0,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    revision = result.stdout.strip()
    if result.returncode != 0 or not revision:
        return None
    return revision


def summarize(directory: Path) -> dict:
    """One trajectory row per ``BENCH_*.json`` artifact in ``directory``."""
    rows = []
    for path in sorted(directory.glob("BENCH_*.json")):
        if path.name == "BENCH_summary.json":
            continue
        try:
            report = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            rows.append({"bench": path.stem, "error": str(error)})
            continue
        bench = report.get("bench", path.stem.replace("BENCH_", "", 1))
        summary = report.get("summary", {})
        metric, value = headline_for(bench, summary if isinstance(summary, dict) else {})
        rows.append(
            {
                "bench": bench,
                "headline_metric": metric,
                "headline": value,
                "generated_at": report.get("generated_at"),
                "git_revision": report.get("git_revision"),
            }
        )
    return {
        "generated_at": datetime.now(timezone.utc).isoformat(),
        "git_revision": _git_revision(),
        "artifacts": len(rows),
        "benches": rows,
    }


def _format_table(rows: list[dict]) -> str:
    headers = ("bench", "headline", "metric", "generated_at")
    cells = [
        (
            str(row.get("bench")),
            f"{row['headline']:.3f}" if row.get("headline") is not None else "-",
            str(row.get("headline_metric") or row.get("error", "-")),
            str(row.get("generated_at") or "-"),
        )
        for row in rows
    ]
    widths = [
        max(len(header), *(len(row[i]) for row in cells)) if cells else len(header)
        for i, header in enumerate(headers)
    ]
    lines = [
        "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)),
        "  ".join("-" * width for width in widths),
    ]
    lines.extend(
        "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        for row in cells
    )
    return "\n".join(lines)


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--dir",
        default="benchmarks/artifacts",
        type=Path,
        help="directory holding the BENCH_*.json artifacts",
    )
    parser.add_argument(
        "--output",
        default=None,
        type=Path,
        help="where to write BENCH_summary.json (default: <dir>/BENCH_summary.json)",
    )
    arguments = parser.parse_args(argv)
    directory: Path = arguments.dir
    if not directory.is_dir():
        print(f"no artifact directory at {directory}; nothing to summarize")
        return 0
    summary = summarize(directory)
    output = arguments.output or directory / "BENCH_summary.json"
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(
        json.dumps(summary, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(_format_table(summary["benches"]))
    print(f"\n{summary['artifacts']} artifact(s) -> {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
