"""End-to-end observability: tracing, metrics registry, ops event log.

The instrumentation contract of ``repro.obs`` (``docs/OBSERVABILITY.md``):

* **primitives** — the metrics registry (counters, gauges, fixed-bucket
  histograms with interpolated p50/p95/p99), the bounded ops event log,
  and the tracer's span nesting, cost attribution and bounded rings,
  all with injected deterministic clocks where wall time would flake;
* **engine tier** — a :class:`~repro.service.QueryService` query leaves
  a ``query -> plan -> cache-lookup -> choose -> execute`` trace, cache
  hits are annotated and counted, maintenance opens ``index-maintain``
  spans and publishes ``cache-invalidated`` events, and the slow-query
  log fires deterministically under an injected clock;
* **sharded tier** — one scatter-gather query is *one* trace whose
  spans cross the executor's thread pool (``contextvars`` copied per
  submit), and the shared registry reports separate latency histograms
  per tier;
* **failover story** — a seeded replica kill mid-workload produces a
  trace showing the failed read and the retry on a healthy replica,
  plus ``fault-injected`` / ``replica-health`` / ``replica-quarantined``
  events in the ops log, asserted deterministically;
* **request attribution** — stable ``query_id`` values thread through
  ``execute_batch`` into :class:`~repro.service.BatchResult` and the
  root span attributes;
* **stats satellites** — ``StatsCollector.merge`` / ``sum_snapshots``
  edge cases: empty collectors, disjoint counter sets, and monotonicity
  across a merge-after-revive.
"""

from __future__ import annotations

import threading

import pytest

from repro import ShardedQueryService, TwigIndexDatabase
from repro.datasets import generate_xmark
from repro.faults import FaultPlan, InjectedFault, inject
from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    EventLog,
    MetricsRegistry,
    NULL_SPAN,
    Telemetry,
    Tracer,
    current_span,
    render_prometheus,
)
from repro.service import QueryService
from repro.service.base import ServingFacade
from repro.shard import REPLICA_DEAD, AutoRebalancer, ReplicatedShard, ShardedCollection
from repro.storage.stats import ACTIVITY_COUNTERS, StatsCollector, sum_snapshots

XPATH = "/site/people/person/name"


def _doc(i: int, scale: float = 0.01):
    return generate_xmark(scale=scale, seed=700 + i, name=f"doc-{i}")


class FakeClock:
    """A deterministic clock: each read advances by ``step`` seconds."""

    def __init__(self, step: float = 1.0) -> None:
        self.step = step
        self.time = 0.0

    def __call__(self) -> float:
        self.time += self.step
        return self.time


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
def test_counter_gauge_basics_and_kind_conflicts():
    registry = MetricsRegistry()
    queries = registry.counter("queries_total", "served queries")
    queries.inc(tier="engine")
    queries.inc(2, tier="engine")
    queries.inc(tier="sharded")
    assert queries.value(tier="engine") == 3.0
    assert queries.value(tier="sharded") == 1.0
    assert queries.value(tier="absent") == 0.0
    with pytest.raises(ValueError):
        queries.inc(-1, tier="engine")

    depth = registry.gauge("depth", "last value wins")
    depth.set(4.0)
    depth.set(2.0)
    assert depth.value() == 2.0

    # get-or-create returns the same family; kind conflicts raise.
    assert registry.counter("queries_total") is queries
    with pytest.raises(ValueError):
        registry.gauge("queries_total")
    with pytest.raises(ValueError):
        registry.histogram("depth")
    assert len(registry) == 2


def test_histogram_quantiles_interpolate_and_clamp():
    registry = MetricsRegistry()
    latency = registry.histogram("latency", buckets=(1.0, 2.0, 4.0))
    for value in (0.5, 1.5, 1.5, 3.0):
        latency.observe(value)
    # p50: rank 2 of 4 falls in the (1, 2] bucket -> interpolated, then
    # clamped into [observed min, observed max].
    assert 0.5 <= latency.quantile(0.5) <= 2.0
    assert latency.quantile(0.99) <= 3.0
    assert latency.quantile(0.5, other="series") == 0.0  # empty series

    # Overflow beyond the last bound: the exact max is the estimate.
    latency.observe(9.0)
    assert latency.quantile(0.99) == 9.0

    snapshot = latency.snapshot()
    (series,) = snapshot["series"]
    assert series["count"] == 5
    assert series["min"] == 0.5 and series["max"] == 9.0
    assert series["buckets"][-1] == {"le": "+Inf", "cumulative": 5}
    assert set(("p50", "p95", "p99")) <= set(series)

    with pytest.raises(ValueError):
        registry.histogram("bad", buckets=(2.0, 1.0))


def test_registry_snapshot_is_grouped_and_json_shaped():
    registry = MetricsRegistry()
    registry.counter("c").inc()
    registry.gauge("g").set(1.0)
    registry.histogram("h").observe(0.001)
    snapshot = registry.snapshot()
    assert [f["name"] for f in snapshot["counters"]] == ["c"]
    assert [f["name"] for f in snapshot["gauges"]] == ["g"]
    assert [f["name"] for f in snapshot["histograms"]] == ["h"]
    assert snapshot["histograms"][0]["bucket_bounds"] == list(
        DEFAULT_LATENCY_BUCKETS
    )


def test_prometheus_exposition_format():
    registry = MetricsRegistry()
    registry.counter("repro_queries_total", "Total queries").inc(
        3, tier="engine", strategy="rootpaths"
    )
    registry.gauge("repro_stats", 'quoted "help"').set(7, counter="reads_retried")
    registry.histogram("repro_latency", buckets=(0.1, 1.0)).observe(0.05)
    text = render_prometheus(registry.snapshot())
    assert "# HELP repro_queries_total Total queries" in text
    assert "# TYPE repro_queries_total counter" in text
    assert 'repro_queries_total{strategy="rootpaths",tier="engine"} 3' in text
    assert 'repro_stats{counter="reads_retried"} 7' in text
    assert 'repro_latency_bucket{le="+Inf"} 1' in text
    assert "repro_latency_sum 0.05" in text
    assert "repro_latency_count 1" in text
    for quantile in ("0.5", "0.95", "0.99"):
        assert f'repro_latency{{quantile="{quantile}"}}' in text


# ----------------------------------------------------------------------
# Ops event log
# ----------------------------------------------------------------------
def test_event_log_is_a_bounded_ring_with_monotone_seq():
    log = EventLog(capacity=4)
    for i in range(10):
        log.publish("tick", round=i)
    events = log.events()
    assert len(events) == 4 and len(log) == 4
    assert [event.attributes["round"] for event in events] == [6, 7, 8, 9]
    assert [event.seq for event in events] == [7, 8, 9, 10]
    assert log.total_published == 10

    log.publish("other")
    # counts() tallies everything ever published, not just the retained
    # window — the ring forgets, the totals do not.
    assert log.counts() == {"tick": 10, "other": 1}
    assert [e.kind for e in log.events(kind="other")] == ["other"]
    assert len(log.events(last=2)) == 2
    description = log.describe()
    assert description["capacity"] == 4 and description["published"] == 11


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------
def test_spans_nest_by_context_and_attribute_cost():
    stats = StatsCollector()
    tracer = Tracer(clock=FakeClock())
    assert current_span() is None
    with tracer.span("query", stats=stats, tier="engine") as root:
        assert current_span() is root
        with tracer.span("plan") as plan:
            stats.index_lookups += 2
            assert current_span() is plan
        with tracer.span("execute", strategy="rootpaths"):
            stats.tuples_produced += 5
    assert current_span() is None

    (trace,) = tracer.traces()
    assert trace.trace_id == 1
    assert [span.name for span in trace.root.walk()] == [
        "query",
        "plan",
        "execute",
    ]
    # Each clock read ticks one second; the root saw all inner reads.
    assert trace.root.duration_seconds == pytest.approx(5.0)
    assert trace.root.cost["index_lookups"] == 2
    assert trace.root.cost["tuples_produced"] == 5
    assert trace.root.find("execute")[0].attributes["strategy"] == "rootpaths"
    rendered = trace.render()
    assert "trace #1" in rendered and "plan" in rendered
    tree = trace.tree()
    assert tree["trace_id"] == 1
    assert [child["name"] for child in tree["children"]] == ["plan", "execute"]


def test_span_exceptions_are_annotated_and_ring_is_bounded():
    tracer = Tracer(capacity=3, clock=FakeClock())
    with pytest.raises(RuntimeError):
        with tracer.span("query"):
            raise RuntimeError("boom")
    (trace,) = tracer.traces()
    assert "RuntimeError" in trace.root.attributes["error"]

    for i in range(5):
        with tracer.span("query", round=i):
            pass
    traces = tracer.traces()
    assert len(traces) == 3
    assert [t.root.attributes["round"] for t in traces] == [2, 3, 4]
    assert tracer.traces_finished == 6
    assert len(tracer.traces(last=1)) == 1
    with pytest.raises(ValueError):
        Tracer(capacity=0)


def test_slow_query_log_fires_deterministically():
    clock = FakeClock(step=1.0)
    telemetry = Telemetry(slow_query_seconds=10.0, clock=clock)
    with telemetry.span("query", xpath="/a", query_id="q000-abc"):
        pass  # 1s root: under threshold
    clock.step = 12.0
    with telemetry.span("query", xpath="/b", query_id="q001-def"):
        pass  # 12s root: over threshold
    assert len(telemetry.traces()) == 2
    (slow,) = telemetry.slow_queries()
    assert slow.root.attributes["xpath"] == "/b"
    (event,) = telemetry.events.events(kind="slow-query")
    assert event.attributes["trace_id"] == slow.trace_id
    assert event.attributes["xpath"] == "/b"
    assert event.attributes["query_id"] == "q001-def"
    assert event.attributes["seconds"] == pytest.approx(12.0)

    # The threshold is reconfigurable through the hub.
    telemetry.slow_query_seconds = 0.5
    assert telemetry.tracer.slow_query_seconds == 0.5


def test_disabled_telemetry_is_a_complete_noop():
    telemetry = Telemetry(enabled=False)
    with telemetry.span("query", xpath="/a") as span:
        assert span is NULL_SPAN
        span.annotate(ignored=True)  # no-op, no branches at call sites
    telemetry.event("replica-quarantined", shard=0)
    telemetry.record_query("engine", "rootpaths", 0.1, cached=False)
    assert telemetry.traces() == []
    assert telemetry.events.total_published == 0
    assert len(telemetry.metrics) == 0
    assert NULL_SPAN.attributes == {}
    assert telemetry.describe()["enabled"] is False


def test_record_query_feeds_the_standard_families():
    telemetry = Telemetry()
    telemetry.record_query("engine", "rootpaths", 0.002, cached=False)
    telemetry.record_query("engine", "rootpaths", 0.004, cached=True)
    telemetry.record_query("sharded", "edge", 0.008, cached=False)
    counters = telemetry.metrics.counter("repro_queries_total")
    assert counters.value(tier="engine", strategy="rootpaths") == 2
    assert counters.value(tier="sharded", strategy="edge") == 1
    lookups = telemetry.metrics.counter("repro_result_cache_lookups_total")
    assert lookups.value(tier="engine", outcome="hit") == 1
    assert lookups.value(tier="engine", outcome="miss") == 1
    latency = telemetry.metrics.histogram("repro_query_latency_seconds")
    assert latency.quantile(0.5, tier="engine") > 0.0
    assert latency.quantile(0.5, tier="sharded") > 0.0


# ----------------------------------------------------------------------
# Engine tier: QueryService / TwigIndexDatabase
# ----------------------------------------------------------------------
def test_query_service_traces_plan_cache_choose_execute():
    db = TwigIndexDatabase.from_documents([_doc(0)])
    db.build_index("rootpaths")
    first = db.service.execute(XPATH, strategy="auto")
    second = db.service.execute(XPATH, strategy="auto")
    assert second.ids == first.ids and second.cached

    miss, hit = db.traces(last=2)
    assert miss.root.name == "query"
    assert miss.root.attributes["tier"] == "engine"
    assert miss.root.attributes["xpath"] == XPATH
    assert miss.root.attributes["cached"] is False
    names = [span.name for span in miss.root.walk()]
    assert names[:3] == ["query", "plan", "cache-lookup"]
    assert "choose" in names and "execute" in names
    assert miss.root.find("cache-lookup")[0].attributes["outcome"] == "miss"
    # The root's cost diff prices the query in the paper's currency.
    assert sum(miss.root.cost.values()) > 0

    assert hit.root.attributes["cached"] is True
    assert hit.root.find("cache-lookup")[0].attributes["outcome"] == "hit"
    assert hit.root.find("execute") == []  # a hit never executes

    lookups = db.telemetry.metrics.counter("repro_result_cache_lookups_total")
    assert lookups.value(tier="engine", outcome="hit") == 1
    assert lookups.value(tier="engine", outcome="miss") == 1


def test_maintenance_spans_and_cache_invalidation_events():
    db = TwigIndexDatabase.from_documents([_doc(0)])
    db.build_index("rootpaths")
    db.service.execute(XPATH, strategy="auto")  # populate caches
    db.add_document(_doc(1))

    maintain = [
        trace
        for trace in db.traces()
        if trace.root.name == "index-maintain"
    ]
    operations = {t.root.attributes["operation"] for t in maintain}
    assert {"build-index", "add-document"} <= operations
    # Maintenance windows carry the write-side cost diff.
    add = [t for t in maintain if t.root.attributes["operation"] == "add-document"]
    assert sum(add[-1].root.cost.values()) > 0

    invalidated = db.telemetry.events.events(kind="cache-invalidated")
    assert invalidated, "the add must drop cached results"
    assert all(event.attributes["entries"] > 0 for event in invalidated)
    assert {"result", "choice"} <= {
        event.attributes["cache"] for event in invalidated
    }


def test_facade_surfaces_metrics_traces_and_describe():
    db = TwigIndexDatabase.from_documents([_doc(0)])
    db.build_index("rootpaths")
    assert db.telemetry is db.service.telemetry
    db.service.execute(XPATH, strategy="auto")

    snapshot = db.metrics()
    names = {f["name"] for group in snapshot.values() for f in group}
    assert {
        "repro_queries_total",
        "repro_query_latency_seconds",
        "repro_stats",
        "repro_cache",
    } <= names

    text = db.metrics_text()
    assert 'repro_query_latency_seconds{tier="engine",quantile="0.95"}' in text
    assert 'repro_queries_total{strategy="rootpaths",tier="engine"} 1' in text
    # The scrape exports every StatsCollector counter, activity ones
    # included, plus per-cache counters.
    for counter in ACTIVITY_COUNTERS:
        assert f'repro_stats{{counter="{counter}"}}' in text
    assert 'repro_cache{cache="result",counter="size"}' in text

    telemetry = db.service.describe()["telemetry"]
    assert telemetry["enabled"] is True
    assert telemetry["traces"]["finished"] >= 1
    assert db.traces(last=1)[0].root.name == "query"
    assert db.slow_queries() == []


def test_slow_query_log_through_the_service():
    db = TwigIndexDatabase.from_documents([_doc(0)])
    db.build_index("rootpaths")
    db.telemetry.slow_query_seconds = 0.0  # everything is slow
    db.service.execute(XPATH, strategy="auto")
    (slow,) = db.slow_queries()
    assert slow.root.attributes["xpath"] == XPATH
    (event,) = db.telemetry.events.events(kind="slow-query")
    assert event.attributes["trace_id"] == slow.trace_id


def test_disabled_stack_serves_identically_with_zero_telemetry():
    enabled = TwigIndexDatabase.from_documents([_doc(0)])
    disabled = TwigIndexDatabase(telemetry=Telemetry(enabled=False))
    disabled.add_document(_doc(0))
    for database in (enabled, disabled):
        database.build_index("rootpaths")
    expected = enabled.service.execute(XPATH, strategy="auto").ids
    assert disabled.service.execute(XPATH, strategy="auto").ids == expected
    assert disabled.traces() == []
    assert disabled.telemetry.events.total_published == 0
    assert len(disabled.telemetry.metrics) == 0


# ----------------------------------------------------------------------
# Request attribution: query ids through execute_batch
# ----------------------------------------------------------------------
def test_default_query_ids_are_stable_and_content_addressed():
    first = ServingFacade.default_query_id(0, XPATH)
    again = ServingFacade.default_query_id(0, XPATH)
    other = ServingFacade.default_query_id(1, XPATH)
    assert first == again  # same position, same query -> same id
    assert first.startswith("q000-") and other.startswith("q001-")
    assert first.split("-")[1] == other.split("-")[1]  # content hash part
    # Normalization: equivalent spellings share the content hash.
    spaced = ServingFacade.default_query_id(0, "/site/people/person/name ")
    assert spaced == first


def test_batch_results_carry_query_ids_and_root_spans_are_attributed():
    db = TwigIndexDatabase.from_documents([_doc(0)])
    db.build_index("rootpaths")
    batch = db.service.execute_batch([XPATH, "//person"], strategy="auto")
    assert len(batch.query_ids) == 2
    assert batch.query_ids[0] != batch.query_ids[1]
    roots = [trace.root for trace in db.traces() if trace.root.name == "query"]
    assert [root.attributes["query_id"] for root in roots] == batch.query_ids

    named = db.service.execute_batch(
        [XPATH], strategy="auto", query_ids=["tenant-7/q1"]
    )
    assert named.query_ids == ["tenant-7/q1"]
    assert db.traces(last=1)[0].root.attributes["query_id"] == "tenant-7/q1"

    with pytest.raises(ValueError):
        db.service.execute_batch([XPATH], query_ids=["a", "b"])


# ----------------------------------------------------------------------
# Sharded tier: one trace across the scatter pool
# ----------------------------------------------------------------------
def test_sharded_query_is_one_trace_across_the_thread_pool():
    service = ShardedQueryService.from_documents(
        [_doc(i) for i in range(8)], num_shards=2, replicas=2
    )
    service.build_index("rootpaths")
    result = service.execute(XPATH, strategy="auto", query_id="req-1")
    assert result.ids

    (trace,) = [
        t
        for t in service.traces()
        if t.root.name == "query" and t.root.attributes["tier"] == "sharded"
    ]
    root = trace.root
    assert root.attributes["query_id"] == "req-1"
    (scatter,) = root.find("scatter")
    shard_spans = scatter.find("shard")
    assert {span.attributes["shard"] for span in shard_spans} == {0, 1}
    # Worker threads joined this trace: every shard span nests a replica
    # read whose engine-tier query span nests plan/execute work.
    for span in shard_spans:
        (replica,) = span.find("replica")
        assert replica.attributes["outcome"] == "ok"
        (engine_query,) = replica.find("query")
        assert engine_query.attributes["tier"] == "engine"
        assert engine_query.find("plan")
    assert root.find("gather")

    text = service.metrics_text()
    for tier in ("engine", "sharded"):
        assert f'repro_query_latency_seconds{{tier="{tier}",quantile="0.95"}}' in text
    assert service.describe()["telemetry"]["enabled"] is True
    service.close()


def test_sharded_batch_threads_query_ids():
    service = ShardedQueryService.from_documents(
        [_doc(i) for i in range(2)], num_shards=2
    )
    service.build_index("rootpaths")
    batch = service.execute_batch([XPATH, XPATH])
    assert len(batch.query_ids) == 2
    roots = [
        t.root
        for t in service.traces()
        if t.root.name == "query" and t.root.attributes["tier"] == "sharded"
    ]
    assert [root.attributes["query_id"] for root in roots] == batch.query_ids
    service.close()


# ----------------------------------------------------------------------
# The failover story, deterministically
# ----------------------------------------------------------------------
def test_seeded_replica_kill_leaves_a_failover_trace_and_quarantine_event():
    service = ShardedQueryService.from_documents(
        [_doc(i) for i in range(2)], num_shards=1, replicas=3
    )
    service.build_index("rootpaths")
    reference = service.execute(XPATH, use_result_cache=False).ids

    shard = service.collection.shards[0]
    injector = inject(shard, 1, FaultPlan.failing_at(*range(1, 50)))
    # Round-robin hands replica 1 every third read while it is healthy,
    # then only on probation probes (every probe_interval-th read) once
    # suspect; each of its reads fails and retries on the next healthy
    # replica, and after dead_after consecutive failures the replica is
    # quarantined.  No sleeps, no randomness: the whole story is
    # call-count scheduled, so 40 reads deterministically cover the
    # probes that walk it suspect -> dead.
    answers = [
        service.execute(XPATH, use_result_cache=False).ids for _ in range(40)
    ]
    assert all(answer == reference for answer in answers)
    assert injector.fired  # the plan really fired
    assert shard.health_report()["states"][1] == REPLICA_DEAD

    # The trace of a failed read shows the failure AND the retry.
    failover_traces = [
        t
        for t in service.traces()
        if t.root.name == "query"
        and any(
            span.attributes.get("outcome") == "failed"
            for span in t.root.find("replica")
        )
    ]
    assert failover_traces, "no trace recorded the failed read"
    spans = failover_traces[0].root.find("replica")
    failed = [s for s in spans if s.attributes["outcome"] == "failed"]
    retried = [s for s in spans if s.attributes["outcome"] == "ok"]
    assert failed[0].attributes["replica"] == 1
    assert "InjectedFault" in failed[0].attributes["error"]
    assert retried and retried[0].attributes["replica"] != 1

    # The ops log tells the same story as ordered events.
    events = service.telemetry.events
    (injected, *_rest) = events.events(kind="fault-injected")
    assert injected.attributes["fault"] == "error"
    suspect = events.events(kind="replica-health")
    assert any(e.attributes["state"] == "suspect" for e in suspect)
    (quarantined,) = events.events(kind="replica-quarantined")
    assert quarantined.attributes["replica"] == 1
    assert "dead_after" in quarantined.attributes["reason"]
    # Ordering: injection precedes demotion precedes quarantine.
    assert injected.seq < suspect[0].seq < quarantined.seq

    # Failover activity reaches the exposition via the scrape gauges.
    text = service.metrics_text()
    retries = [
        line
        for line in text.splitlines()
        if line.startswith('repro_stats{counter="reads_retried"}')
    ]
    assert retries and float(retries[0].split()[-1]) >= 3
    service.close()


def test_revive_publishes_a_replay_event():
    shard = ReplicatedShard(0, replicas=2, dead_after=1)
    for i in range(2):
        shard.add_document(_doc(i))
    shard.build_index("rootpaths")
    inject(shard, 1, FaultPlan.failing_at(1))
    for _ in range(2):
        shard.execute(XPATH)
    assert shard.health_report()["states"][1] == REPLICA_DEAD
    shard.add_document(_doc(5))  # missed write, replayed by revive
    shard.revive(1)
    (revived,) = shard.telemetry.events.events(kind="replica-revived")
    assert revived.attributes["replica"] == 1
    assert revived.attributes["replayed"] >= 1
    assert revived.attributes["watermark"] == shard.watermark


def test_auto_rebalance_publishes_triggered_and_completed_events():
    import zlib

    def colliding(base: str) -> str:
        for salt in range(10_000):
            name = f"{base}-{salt}"
            if zlib.crc32(name.encode("utf-8")) % 2 == 0:
                return name
        raise AssertionError("no colliding name")  # pragma: no cover

    collection = ShardedCollection(num_shards=2, placement="hash")
    for i in range(6):
        collection.add_document(
            generate_xmark(scale=0.01, seed=500 + i, name=colliding(f"s-{i}"))
        )
    auto = AutoRebalancer(
        collection,
        policy="size_balanced",
        check_interval=1,
        background=False,
        enabled=True,
    )
    assert auto.check()["fired"]
    events = collection.telemetry.events
    (triggered,) = events.events(kind="auto-rebalance", last=None)[:1]
    assert triggered.attributes["phase"] == "triggered"
    assert triggered.attributes["ratio"] >= auto.high_watermark
    completed = [
        e
        for e in events.events(kind="auto-rebalance")
        if e.attributes["phase"] == "completed"
    ]
    assert completed and completed[0].attributes["documents_moved"] > 0
    auto.close()


# ----------------------------------------------------------------------
# Telemetry is one hub per stack, and thread-safe
# ----------------------------------------------------------------------
def test_one_hub_is_shared_by_every_layer():
    service = ShardedQueryService.from_documents(
        [_doc(i) for i in range(2)], num_shards=2, replicas=2
    )
    hub = service.telemetry
    assert service.collection.telemetry is hub
    for shard in service.collection.shards:
        assert shard.telemetry is hub
        for replica in shard.replicas:
            assert replica.telemetry is hub
            assert replica.service.telemetry is hub
    service.close()


def test_concurrent_queries_trace_without_interleaving():
    service = ShardedQueryService.from_documents(
        [_doc(i) for i in range(8)], num_shards=2, replicas=2
    )
    service.build_index("rootpaths")
    errors: list[Exception] = []

    def worker():
        try:
            for _ in range(5):
                service.execute(XPATH, use_result_cache=False)
        except Exception as error:  # pragma: no cover - failure path
            errors.append(error)

    threads = [threading.Thread(target=worker) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == []
    roots = [
        t.root
        for t in service.traces()
        if t.root.name == "query" and t.root.attributes["tier"] == "sharded"
    ]
    # Every sharded trace is complete: scatter, per-shard reads, gather.
    for root in roots:
        assert root.find("scatter") and root.find("gather")
        assert len(root.find("shard")) == 2
    counter = service.telemetry.metrics.counter("repro_queries_total")
    assert counter.value(tier="sharded", strategy="rootpaths") == 20
    service.close()


# ----------------------------------------------------------------------
# Stats satellites: merge / sum_snapshots edge cases
# ----------------------------------------------------------------------
def test_merge_of_empty_collectors_is_identity():
    base = StatsCollector()
    base.index_lookups = 3
    merged = base.merge(StatsCollector(), StatsCollector())
    assert merged is base  # merge chains in place
    assert base.index_lookups == 3
    assert StatsCollector().merge().snapshot() == StatsCollector().snapshot()


def test_sum_snapshots_with_disjoint_counter_sets_unions_keys():
    assert sum_snapshots() == {}
    left = {"btree_node_reads": 2}
    right = {"heap_page_reads": 5, "btree_node_reads": 1}
    exotic = {"not_a_standard_counter": 7}
    total = sum_snapshots(left, right, exotic)
    assert total == {
        "btree_node_reads": 3,
        "heap_page_reads": 5,
        "not_a_standard_counter": 7,
    }
    # Inputs are not mutated.
    assert left == {"btree_node_reads": 2}


def test_merge_after_revive_is_monotone():
    shard = ReplicatedShard(0, replicas=2, dead_after=1)
    for i in range(2):
        shard.add_document(_doc(i))
    shard.build_index("rootpaths")
    before = shard.stats_snapshot()
    inject(shard, 1, FaultPlan.failing_at(1))
    for _ in range(2):
        shard.execute(XPATH)
    shard.revive(1)
    after = shard.stats_snapshot()
    # A revive replaces one replica's collector with a freshly-merged
    # one; no aggregated counter may move backwards.
    assert all(after[key] >= value for key, value in before.items())
    assert after["replicas_revived"] >= 1
