"""Tests for twig decomposition (PathQuery) and the naive matcher oracle."""

import pytest

from repro.datasets import FIGURE_1_QUERY
from repro.query import parse_xpath


# ----------------------------------------------------------------------
# TwigPattern structure and decomposition
# ----------------------------------------------------------------------
def test_branch_points_and_leaves():
    twig = parse_xpath(FIGURE_1_QUERY)
    assert [n.label for n in twig.branch_points()] == ["book", "author"]
    assert sorted(n.label for n in twig.leaves()) == ["fn", "ln", "title"]
    assert twig.branch_count == 3
    assert [n.label for n in twig.output_path()] == ["book", "author"]
    assert [n.label for n in twig.value_conditions()] == ["title", "fn", "ln"]


def test_path_queries_cover_all_root_to_leaf_paths():
    twig = parse_xpath(FIGURE_1_QUERY)
    queries = twig.path_queries()
    described = {q.describe() for q in queries}
    assert described == {
        "/book/title = 'XML'",
        "/book//author/fn = 'jane'",
        "/book//author/ln = 'doe'",
    }


def test_path_query_pattern_segments_and_anchoring():
    twig = parse_xpath("/site//item[quantity='2']/mailbox/mail/to")
    queries = {q.leaf.label: q for q in twig.path_queries()}
    quantity = queries["quantity"]
    assert quantity.pattern.segments == (("site",), ("item", "quantity"))
    assert quantity.pattern.anchored
    assert quantity.value == "2"
    assert quantity.is_recursive
    to = queries["to"]
    assert to.pattern.segments == (("site",), ("item", "mailbox", "mail", "to"))
    assert to.value is None


def test_relative_query_is_not_anchored():
    twig = parse_xpath("//author[fn='jane']")
    (query,) = twig.path_queries()
    assert not query.pattern.anchored
    assert query.pattern.segments == (("author", "fn"),)


def test_position_of_and_errors():
    twig = parse_xpath("/a/b/c")
    (query,) = twig.path_queries()
    assert query.position_of(twig.output) == 2
    other = parse_xpath("/x").root
    with pytest.raises(ValueError):
        query.position_of(other)


def test_path_query_for_prefix_path():
    twig = parse_xpath("/site/open_auctions/open_auction[bidder/@increase='3.00']/time")
    trunk_prefix = twig.output_path()[:3]
    query = twig.path_query_for(trunk_prefix)
    assert query.pattern.labels == ("site", "open_auctions", "open_auction")
    assert query.value is None


# ----------------------------------------------------------------------
# Naive matcher (the oracle)
# ----------------------------------------------------------------------
def test_figure_1_query_matches_jane_doe_only(book_db):
    matcher = book_db.matcher()
    twig = parse_xpath(FIGURE_1_QUERY)
    nodes = matcher.match_nodes(twig)
    assert len(nodes) == 1
    author = nodes[0]
    values = {c.first_value() for c in author.structural_children()}
    assert values == {"jane", "doe"}


def test_parent_child_vs_ancestor_descendant(book_db):
    matcher = book_db.matcher()
    # 'title' is a child of book and of chapter; the child axis from book
    # only reaches the first, the descendant axis reaches both.
    assert matcher.count_matches(parse_xpath("/book/title")) == 1
    assert matcher.count_matches(parse_xpath("/book//title")) == 2


def test_value_conditions_must_hold(book_db):
    matcher = book_db.matcher()
    assert matcher.count_matches(parse_xpath("//author[fn='jane']")) == 2
    assert matcher.count_matches(parse_xpath("//author[fn='nobody']")) == 0
    assert matcher.count_matches(parse_xpath("//author[fn='jane'][ln='doe']")) == 1


def test_absolute_query_requires_document_root(book_db):
    matcher = book_db.matcher()
    assert matcher.count_matches(parse_xpath("/author")) == 0
    assert matcher.count_matches(parse_xpath("//author")) == 3


def test_branch_cardinalities_match_figure_7_style(book_db):
    matcher = book_db.matcher()
    twig = parse_xpath(FIGURE_1_QUERY)
    assert matcher.branch_cardinalities(twig) == [1, 2, 2]


def test_match_ids_are_sorted_and_stable(book_db):
    matcher = book_db.matcher()
    ids = matcher.match_ids(parse_xpath("//author"))
    assert ids == sorted(ids)
    assert matcher.match_ids(parse_xpath("//author")) == ids


def test_attribute_condition_matching(xmark_small):
    matcher = xmark_small.matcher()
    twig = parse_xpath("/site/people/person[profile/@income='46814.17']")
    assert matcher.count_matches(twig) == 1
