"""Concurrent access: readers hammering execute() against add_document().

The serving tier's thread-safety contract: a
:class:`~repro.service.QueryService` (and each shard of a
:class:`~repro.shard.ShardedQueryService`) may be queried from many
threads while another thread adds documents — never returning a torn
read of a half-maintained index, never a stale cached answer after the
caches were invalidated — and once the writer finishes, queries must
see the final document set.

What "never stale or torn" means differs by tier:

* the **single-node** service serializes execution against writes on
  one lock, so every observed answer must be the oracle answer of some
  *prefix* of the add sequence (linearizability);
* the **sharded** service has per-shard snapshots but no global read
  snapshot (see the consistency model in :mod:`repro.shard.service`),
  so every observed answer must be a *consistent cut*: per shard, a
  prefix of that shard's add sub-sequence.

The harness precomputes the oracle answers of every admissible state
(documents are independent trees, so a state's answer is the union of
its documents' match sets), races reader threads against one writer,
and checks each observed answer against the admissible set.
"""

from __future__ import annotations

import threading

import pytest

from repro import ShardedQueryService, TwigIndexDatabase
from repro.datasets import generate_xmark

QUERIES = (
    "/site/people/person/name",
    "//person[name='Hagen Artosi']",
    "/site/open_auctions/open_auction",
)

BASE_DOCS = 2
EXTRA_DOCS = 3
READER_THREADS = 3
READER_ROUNDS = 25


def _documents(count: int):
    return [
        generate_xmark(scale=0.015, seed=500 + i, name=f"doc-{i}")
        for i in range(count)
    ]


def _prefix_oracles() -> list[dict[str, list[int]]]:
    """Oracle answers for every prefix of the add sequence.

    Prefix k holds the answers after the first BASE_DOCS + k documents;
    these are the only answer sets a linearizable service may return.
    """
    oracles = []
    for k in range(EXTRA_DOCS + 1):
        reference = TwigIndexDatabase.from_documents(_documents(BASE_DOCS + k))
        oracles.append({xpath: reference.oracle(xpath) for xpath in QUERIES})
    return oracles


@pytest.fixture(scope="module")
def prefix_oracles():
    return _prefix_oracles()


def _hammer(execute, add_document):
    """Race readers against one writer; return the observed answers."""
    observed: dict[str, set[tuple[int, ...]]] = {xpath: set() for xpath in QUERIES}
    errors: list[BaseException] = []
    observed_lock = threading.Lock()
    writer_done = threading.Event()

    def writer():
        try:
            for document in _documents(BASE_DOCS + EXTRA_DOCS)[BASE_DOCS:]:
                add_document(document)
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)
        finally:
            writer_done.set()

    def reader():
        try:
            rounds = 0
            while rounds < READER_ROUNDS or not writer_done.is_set():
                rounds += 1
                for xpath in QUERIES:
                    ids = tuple(execute(xpath).ids)
                    with observed_lock:
                        observed[xpath].add(ids)
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=writer)] + [
        threading.Thread(target=reader) for _ in range(READER_THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
        assert not thread.is_alive(), "hammer thread wedged"
    assert not errors, errors
    return observed


def _assert_answers_admissible(observed, allowed_by_query, contract):
    for xpath in QUERIES:
        stale_or_torn = observed[xpath] - allowed_by_query[xpath]
        assert not stale_or_torn, (
            f"{xpath}: observed answers matching no {contract} of the add "
            f"sequence: {sorted(len(ids) for ids in stale_or_torn)} ids"
        )


def _per_document_answers():
    """Each document's own match ids in the global id space.

    Documents are independent trees, so the answer of any document
    subset is the union of the per-document match sets; this is what
    lets the harness enumerate every admissible concurrent state.
    """
    reference = TwigIndexDatabase.from_documents(
        _documents(BASE_DOCS + EXTRA_DOCS)
    )
    spans = reference.document_spans()
    contributions: dict[str, list[list[int]]] = {}
    for xpath in QUERIES:
        full = reference.oracle(xpath)
        contributions[xpath] = [
            [i for i in full if start <= i < end] for _, start, end in spans
        ]
    return contributions


def _consistent_cut_answers(shard_deltas: list[list[int]]):
    """Admissible answers when each shard may lag at its own prefix.

    ``shard_deltas`` lists, per shard, the positions (document indexes)
    of the delta documents that shard received, in arrival order.  A
    cut includes every base document plus, for each shard, a prefix of
    its deltas.
    """
    contributions = _per_document_answers()
    cuts = [list(range(BASE_DOCS))]
    for deltas in shard_deltas:
        cuts = [
            cut + deltas[:take] for cut in cuts for take in range(len(deltas) + 1)
        ]
    allowed: dict[str, set[tuple[int, ...]]] = {}
    for xpath in QUERIES:
        per_doc = contributions[xpath]
        allowed[xpath] = {
            tuple(sorted(id_ for position in cut for id_ in per_doc[position]))
            for cut in cuts
        }
    return allowed


def test_single_service_race_no_stale_results(prefix_oracles):
    database = TwigIndexDatabase.from_documents(_documents(BASE_DOCS))
    database.build_index("rootpaths")
    database.build_index("datapaths")
    service = database.service

    observed = _hammer(
        lambda xpath: service.execute(xpath, strategy="auto"),
        service.add_document,
    )
    # One lock serializes everything: full linearizability.
    allowed = {
        xpath: {tuple(prefix[xpath]) for prefix in prefix_oracles}
        for xpath in QUERIES
    }
    _assert_answers_admissible(observed, allowed, "prefix")

    # The settled service answers for the final document set, cached and
    # uncached alike, and the caches are internally consistent.
    final = prefix_oracles[-1]
    for xpath in QUERIES:
        assert service.execute(xpath).ids == final[xpath]
        assert (
            service.execute(xpath, use_result_cache=False).ids == final[xpath]
        )
    report = service.describe()
    assert report["result_cache"]["size"] <= service.result_cache.max_size
    assert report["result_invalidations"] >= EXTRA_DOCS


@pytest.mark.parametrize("placement", ["round_robin", "hash"])
def test_sharded_service_race_no_stale_results(prefix_oracles, placement):
    service = ShardedQueryService.from_documents(
        _documents(BASE_DOCS), num_shards=2, placement=placement
    )
    service.build_index("rootpaths")
    service.build_index("datapaths")

    observed = _hammer(
        lambda xpath: service.execute(xpath, strategy="auto"),
        service.add_document,
    )
    # Scatter-gather: per-shard snapshots, no global snapshot — check
    # against every consistent cut.  The delta-to-shard assignment is
    # read back from the collection (both policies here are
    # deterministic, so the racing run used the same assignment).
    shard_deltas: list[list[int]] = [
        [] for _ in range(service.collection.num_shards)
    ]
    for placement in service.collection.placements():
        if placement.ordinal >= BASE_DOCS:
            shard_deltas[placement.shard_index].append(placement.ordinal)
    allowed = _consistent_cut_answers(shard_deltas)
    _assert_answers_admissible(observed, allowed, "consistent cut")

    final = prefix_oracles[-1]
    for xpath in QUERIES:
        assert service.execute(xpath).ids == final[xpath]
        assert service.oracle(xpath) == final[xpath]
    service.close()


def test_concurrent_scattered_queries_share_one_collection():
    """Many reader threads scatter concurrently over the same shards."""
    service = ShardedQueryService.from_documents(
        _documents(4), num_shards=4, placement="round_robin"
    )
    service.build_index("rootpaths")
    service.build_index("datapaths")
    expected = {xpath: service.oracle(xpath) for xpath in QUERIES}
    errors: list[BaseException] = []

    def reader():
        try:
            for _ in range(10):
                for xpath in QUERIES:
                    assert service.execute(xpath).ids == expected[xpath]
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=reader) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
        assert not thread.is_alive()
    assert not errors, errors
    service.close()
