"""Unit tests for the tag dictionary / designator encoding."""

from hypothesis import given, strategies as st

from repro.xmltree.dictionary import TagDictionary


def test_intern_is_stable_and_dense():
    tags = TagDictionary()
    first = tags.intern("book")
    second = tags.intern("title")
    assert first == 1 and second == 2
    assert tags.intern("book") == first
    assert len(tags) == 2
    assert "book" in tags and "missing" not in tags


def test_id_of_unknown_tag_is_none():
    tags = TagDictionary()
    assert tags.id_of("nope") is None
    tags.intern("a")
    assert tags.id_of("a") == 1
    assert tags.tag_of(1) == "a"


def test_designators_are_unique_for_many_tags():
    tags = TagDictionary()
    names = [f"tag{i}" for i in range(200)]
    designators = [tags.designator(name) for name in names]
    assert len(set(designators)) == len(names)
    # The first tags get single characters, exactly like the paper's figures.
    assert len(designators[0]) == 1
    assert any(len(d) > 1 for d in designators)


def test_encode_path_matches_figure_style():
    tags = TagDictionary()
    for tag in ("book", "title", "allauthors", "author", "fn", "ln"):
        tags.intern(tag)
    encoded = tags.encode_path(("book", "allauthors", "author", "fn"))
    assert len(encoded) == 4
    assert encoded[0] == tags.designator("book")


def test_path_ids_round_trip():
    tags = TagDictionary()
    path = ("site", "regions", "namerica", "item")
    ids = tags.path_ids(path)
    assert tags.decode_path_ids(ids) == list(path)


@given(st.lists(st.text(alphabet="abcdefgh", min_size=1, max_size=6), min_size=1, max_size=30))
def test_intern_all_round_trips(names):
    tags = TagDictionary()
    ids = tags.intern_all(names)
    assert [tags.tag_of(i) for i in ids] == names
    # Interning again yields the same ids.
    assert tags.intern_all(names) == ids


def test_estimated_size_grows_with_tags():
    tags = TagDictionary()
    empty = tags.estimated_size_bytes()
    tags.intern("alpha")
    tags.intern("beta")
    assert tags.estimated_size_bytes() > empty
