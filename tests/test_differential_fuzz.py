"""The randomized differential fuzzing harness.

One seed drives everything: random corpora (including degenerate
chain/star shapes), random twig queries sampled from witness paths,
and random document churn (add / remove / replace / move).  Every case
is answered by a panel of independent systems that must all agree with
the naive tree-matching oracle:

* the columnar matcher (kernel passes over the flattened node table);
* every fixed strategy, kernels **on** and kernels **off**;
* the optimizer-driven ``auto`` mode through the service layer;
* a 2-shard collection (kernels off) and a 4-shard, 2-replica
  collection (kernels on).

Each seed replays ``CORPORA x STAGES x QUERIES_PER_STAGE`` cases
(>= 200 by default); churn runs between stages through every system's
incremental-maintenance path.  On a mismatch the harness greedily
shrinks the corpus (dropping documents while the failure reproduces
from scratch) and fails with a self-contained repro: the seed, the
offending system and query, and the minimal corpus printed as
indented outlines.

CI runs a fixed three-seed matrix; run more locally with e.g.
``FUZZ_SEEDS=0,1,2,3,4,5 pytest tests/test_differential_fuzz.py``.
"""

from __future__ import annotations

import os
import random
from typing import Optional, Sequence

import pytest

from repro import ShardedQueryService, TwigIndexDatabase
from repro.planner import DEFAULT_STRATEGIES
from repro.query.match import ColumnarMatcher, NaiveMatcher
from repro.query.parser import parse_xpath
from repro.workloads import (
    clone_document,
    random_churn_ops,
    random_corpus,
    random_document,
    random_twig_xpath,
)
from repro.xmltree import Document

SEEDS = [int(token) for token in os.environ.get("FUZZ_SEEDS", "0,1,2").split(",")]

#: Corpora per seed, churn stages per corpus, queries per stage.
#: 6 x 3 x 12 = 216 (corpus, query, churn) cases per seed.
CORPORA = 6
STAGES = 3
QUERIES_PER_STAGE = 12

#: Strategies exercised on the sharded configurations (their indexes
#: are built up front; ``auto`` then prices among them per shard).
SHARDED_STRATEGIES = ("rootpaths", "datapaths", "auto")


# ----------------------------------------------------------------------
# Systems under test
# ----------------------------------------------------------------------
def _apply_op(
    target, op: str, name: str, document: Optional[Document]
) -> None:
    """Replay one churn op against any document store (engine facade,
    sharded service, or the oracle database — they share the API)."""
    if op == "add":
        target.add_document(clone_document(document))
    elif op == "remove":
        target.remove_document(name)
    elif op == "replace":
        target.replace_document(name, clone_document(document))
    else:  # move: fused remove + add under a fresh name
        target.remove_document(name)
        target.add_document(clone_document(document))


class _Single:
    """A single-engine TwigIndexDatabase, kernels on or off."""

    def __init__(self, label: str, use_kernels: bool) -> None:
        self.label = label
        self.db = TwigIndexDatabase(use_kernels=use_kernels)

    def load(self, documents: Sequence[Document]) -> None:
        for document in documents:
            self.db.add_document(clone_document(document))

    def apply(self, op: str, name: str, document: Optional[Document]) -> None:
        _apply_op(self.db, op, name, document)

    def answers(self, xpath: str) -> dict[str, list[int]]:
        out = {}
        for strategy in DEFAULT_STRATEGIES:
            out[f"{self.label}/{strategy}"] = self.db.query(
                xpath, strategy=strategy
            ).ids
        out[f"{self.label}/auto"] = self.db.service.execute(
            xpath, strategy="auto"
        ).ids
        return out

    def close(self) -> None:
        pass


class _Sharded:
    """A sharded (optionally replicated) collection behind the facade."""

    def __init__(
        self, label: str, num_shards: int, replicas: int, use_kernels: bool
    ) -> None:
        self.label = label
        self.service = ShardedQueryService(
            num_shards=num_shards, replicas=replicas, use_kernels=use_kernels
        )
        for strategy in SHARDED_STRATEGIES:
            if strategy != "auto":
                self.service.ensure_indexes_for(strategy)

    def load(self, documents: Sequence[Document]) -> None:
        for document in documents:
            self.service.add_document(clone_document(document))

    def apply(self, op: str, name: str, document: Optional[Document]) -> None:
        _apply_op(self.service, op, name, document)

    def answers(self, xpath: str) -> dict[str, list[int]]:
        return {
            f"{self.label}/{strategy}": self.service.execute(
                xpath, strategy=strategy
            ).ids
            for strategy in SHARDED_STRATEGIES
        }

    def close(self) -> None:
        self.service.close()


_SYSTEM_FACTORIES = {
    "single-kernels": lambda: _Single("single-kernels", use_kernels=True),
    "single-legacy": lambda: _Single("single-legacy", use_kernels=False),
    "shard2-legacy": lambda: _Sharded(
        "shard2-legacy", num_shards=2, replicas=1, use_kernels=False
    ),
    "shard4x2-kernels": lambda: _Sharded(
        "shard4x2-kernels", num_shards=4, replicas=2, use_kernels=True
    ),
}


def _systems() -> list:
    return [factory() for factory in _SYSTEM_FACTORIES.values()]


# ----------------------------------------------------------------------
# Shrinking and reporting
# ----------------------------------------------------------------------
def _describe(document: Document) -> str:
    """A document as an indented outline (enough to rebuild it by hand)."""
    lines = [f"document {document.name!r}:"]
    stack = [(document.root, 1)]
    while stack:
        node, depth = stack.pop()
        lines.append("  " * depth + f"{node.kind.value} {node.label!r}")
        for child in reversed(node.children):
            stack.append((child, depth + 1))
    return "\n".join(lines)


def _mismatch_reproduces(
    documents: Sequence[Document], xpath: str, answer_key: str
) -> bool:
    """Does rebuilding the failing system from scratch still produce
    the wrong answer for this query?"""
    oracle_db = TwigIndexDatabase()
    for document in documents:
        oracle_db.add_document(clone_document(document))
    expected = oracle_db.oracle(xpath)
    if answer_key == "columnar-matcher":
        twig = parse_xpath(xpath)
        return ColumnarMatcher(oracle_db.db).match_ids(twig) != expected
    label = answer_key.split("/", 1)[0]
    system = _SYSTEM_FACTORIES[label]()
    try:
        system.load(documents)
        answers = system.answers(xpath)
    finally:
        system.close()
    return answers[answer_key] != expected


def _shrink(
    documents: list[Document], xpath: str, answer_key: str
) -> Optional[list[Document]]:
    """Greedy document-drop shrink; None when the failure needs churn
    history and does not reproduce from a from-scratch rebuild."""
    if not _mismatch_reproduces(documents, xpath, answer_key):
        return None
    shrunk = list(documents)
    progress = True
    while progress and len(shrunk) > 1:
        progress = False
        for index in range(len(shrunk)):
            trial = shrunk[:index] + shrunk[index + 1 :]
            if _mismatch_reproduces(trial, xpath, answer_key):
                shrunk = trial
                progress = True
                break
    return shrunk


def _report(
    seed: int,
    stage: int,
    documents: list[Document],
    xpath: str,
    answer_key: str,
    expected: list[int],
    got: list[int],
) -> str:
    shrunk = _shrink(documents, xpath, answer_key)
    lines = [
        f"differential fuzz mismatch (seed={seed}, stage={stage})",
        f"  system:   {answer_key}",
        f"  query:    {xpath}",
        f"  expected: {expected}",
        f"  got:      {got}",
    ]
    if shrunk is None:
        lines.append(
            "  does not reproduce from scratch — requires the churn "
            "history; re-run this seed for the full schedule"
        )
        corpus = documents
    else:
        lines.append(f"  minimal corpus ({len(shrunk)} document(s)):")
        corpus = shrunk
    for document in corpus:
        lines.append(_describe(document))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# The harness
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_differential_fuzz(seed):
    rng = random.Random(seed)
    cases = 0
    for corpus_index in range(CORPORA):
        corpus = random_corpus(
            rng,
            documents=rng.randrange(2, 5),
            max_depth=rng.randrange(3, 7),
        )
        # `documents` tracks the live corpus so shrinking can rebuild
        # the exact document set the failing stage saw.
        documents = {document.name: document for document in corpus}
        oracle_db = TwigIndexDatabase()
        systems = _systems()
        try:
            for document in corpus:
                oracle_db.add_document(clone_document(document))
            for system in systems:
                system.load(corpus)
            naive = NaiveMatcher(oracle_db.db)
            columnar = ColumnarMatcher(oracle_db.db)
            for stage in range(STAGES):
                if stage:
                    ops = random_churn_ops(
                        rng,
                        list(documents),
                        operations=rng.randrange(1, 4),
                        name_prefix=f"churn-{corpus_index}-{stage}",
                    )
                    for op, name, document in ops:
                        _apply_op(oracle_db, op, name, document)
                        for system in systems:
                            system.apply(op, name, document)
                        if op in ("remove", "move"):
                            del documents[name]
                        if document is not None:
                            documents[document.name] = document
                live = list(documents.values())
                if not live:
                    # A pathological schedule removed everything; reseed
                    # so witness-path query sampling has a document.
                    refill = random_document(
                        rng, f"refill-{corpus_index}-{stage}"
                    )
                    _apply_op(oracle_db, "add", refill.name, refill)
                    for system in systems:
                        system.apply("add", refill.name, refill)
                    documents[refill.name] = refill
                    live = [refill]
                for _ in range(QUERIES_PER_STAGE):
                    xpath = random_twig_xpath(rng, live)
                    twig = parse_xpath(xpath)
                    expected = naive.match_ids(twig)
                    cases += 1
                    answers = {"columnar-matcher": columnar.match_ids(twig)}
                    for system in systems:
                        answers.update(system.answers(xpath))
                    for answer_key, got in answers.items():
                        if got != expected:
                            pytest.fail(
                                _report(
                                    seed, stage, live, xpath,
                                    answer_key, expected, got,
                                )
                            )
        finally:
            for system in systems:
                system.close()
    assert cases >= 200, f"only {cases} fuzz cases ran; the harness shrank"
