"""Malformed suppressions: unknown code, missing justification, RPR000."""


def unknown_code(executor, task):
    executor.submit(task)  # repro-lint: ignore[RPR999] -- code does not exist


def no_reason(executor, task):
    executor.submit(task)  # repro-lint: ignore[RPR005]


def meta_code(executor, task):
    executor.submit(task)  # repro-lint: ignore[RPR000,RPR005] -- RPR000 is not suppressible
