"""Deliberately broken (and matching clean) inputs for the repro-lint
tests.  Nothing here is imported at runtime; the linter parses these
files as text.  Excluded from ruff and from the CI lint gate."""
