"""RPR006 fixture: four ad-hoc wall-clock reads the checker must flag."""

import time
from time import perf_counter  # violation: banned name imported from time


def measure(work):
    started = time.perf_counter()  # violation: ad-hoc perf_counter
    work()
    return time.perf_counter_ns() - started  # violation: perf_counter_ns


def stamp():
    return time.time()  # violation: wall-clock read


def indirect():
    return perf_counter()
