"""RPR005 clean: futures consumed, exceptions narrow or re-raised."""


def scatter(executor, work, shards):
    futures = [executor.submit(work, shard) for shard in shards]
    return [future.result() for future in futures]


def tolerant(operation):
    try:
        return operation()
    except ValueError:
        return None


def logged(operation, log):
    try:
        return operation()
    except Exception:
        log.warning("operation failed")
        raise
