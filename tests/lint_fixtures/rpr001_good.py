"""RPR001 clean: every public write to a guarded attribute holds the lock."""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self.total = 0

    def add(self, amount):
        with self._lock:
            self.total += amount

    def reset(self):
        with self._lock:
            self.total = 0

    def _drain(self):
        # Private helper: assumed to run with the lock already held.
        self.total = 0
