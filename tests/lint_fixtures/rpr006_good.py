"""RPR006 fixture: timing discipline respected.

The shared clock is imported from ``repro.obs.clock``; the only direct
``time`` uses are the deliberately unbanned ones (``monotonic`` for
injectable TTL clocks, ``sleep`` for fault delays).
"""

import time

from repro.obs.clock import now


def measure(work):
    started = now()
    work()
    return now() - started


def ttl_expired(deadline):
    # monotonic is the cache TTL clock, injectable in tests — not banned.
    return time.monotonic() >= deadline


def delay(seconds):
    time.sleep(seconds)
