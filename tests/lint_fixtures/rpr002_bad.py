"""RPR002 violations: nested and unordered shard-lock acquisitions."""


def move_nested(source, target, doc):
    with source.add_lock:
        with target.add_lock:  # nested acquisition: order depends on caller
            source.remove(doc)
            target.add(doc)


def move_unordered(source, target, doc):
    with source.add_lock, target.add_lock:  # owners never sorted
        source.remove(doc)
        target.add(doc)
