"""RPR002 clean: multi-shard locks taken in one `with`, sorted first."""


def move(source, target, doc):
    first, second = sorted((source, target), key=lambda shard: shard.index)
    with first.add_lock, second.add_lock:
        source.remove(doc)
        target.add(doc)


def add(shard, doc):
    with shard.add_lock:
        shard.add(doc)


def guard_self(self_like, doc):
    with self_like.add_lock:
        self_like.add(doc)
