"""Index classes for the clean registry fixture."""


class PathIndex:
    """Local stand-in for the real base; not itself checked."""

    incremental = False
    incremental_removal = False


class AlphaIndex(PathIndex):
    name = "alpha"
    incremental = False
    incremental_removal = False


class BetaIndex(PathIndex):
    name = "beta"
    incremental = False
    incremental_removal = False
