"""RPR004 registry clean: every local subclass registered, every entry real."""

from .models import AlphaIndex, BetaIndex

INDEX_TYPES = {
    AlphaIndex.name: AlphaIndex,
    BetaIndex.name: BetaIndex,
}
