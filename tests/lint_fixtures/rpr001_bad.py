"""RPR001 violation: a public method writes a guarded attribute unlocked."""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self.total = 0

    def add(self, amount):
        with self._lock:
            self.total += amount

    def reset(self):
        self.total = 0  # guarded elsewhere, written here without the lock
