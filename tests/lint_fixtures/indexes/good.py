"""RPR003 clean: every container mutation charges, directly or via a
callee (the directory name puts these files in the checker's scope)."""


class PostingList:
    def __init__(self, stats):
        self.stats = stats
        self.entries = []

    def add(self, key):
        self.entries.append(key)
        self.stats.index_entry_writes += 1

    def bulk(self, keys):
        self._extend(keys)

    def _extend(self, keys):
        self.entries.extend(keys)
        self._charge(len(keys))

    def _charge(self, amount):
        self.stats.index_entry_writes += amount


class Delegating:
    def __init__(self, tree, stats):
        self._tree = tree
        self.stats = stats

    def add(self, key, value):
        self._tree.insert(key, value)  # primitive charges internally
