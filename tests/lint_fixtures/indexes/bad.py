"""RPR003 violations: container mutations that never reach the stats."""


class PostingList:
    def __init__(self, stats):
        self.stats = stats
        self.entries = []

    def add(self, key):
        self.entries.append(key)  # nothing charged, nothing delegated

    def overwrite(self, index, key):
        self.entries[index] = key  # silent in-place write
