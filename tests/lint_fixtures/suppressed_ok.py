"""Well-formed suppressions: the findings below are silenced, with reasons."""


def fire_and_forget(executor, task):
    executor.submit(task)  # repro-lint: ignore[RPR005] -- fixture: deliberate fire-and-forget


def scatter(executor, work, shards):
    # repro-lint: ignore[RPR005] -- fixture: caller consumes the futures
    futures = [executor.submit(work, shard) for shard in shards]
    return futures
