"""RPR004 violations: silent defaults, lying flags, dead hooks."""


class PathIndex:
    """Local stand-in for the real base; not itself checked."""

    incremental = False
    incremental_removal = False


class SilentDefault(PathIndex):
    pass  # neither flags nor hooks: the fall-back is invisible


class LyingFlag(PathIndex):
    incremental = True  # promises an incremental path...
    incremental_removal = False
    # ...but defines no _update


class DeadHook(PathIndex):
    incremental = False  # hides the override it ships
    incremental_removal = False

    def _update(self, db, doc):
        return doc
