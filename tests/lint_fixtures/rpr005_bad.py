"""RPR005 violations: dropped futures and swallowed exceptions."""


def scatter(executor, work, shards):
    futures = [executor.submit(work, shard) for shard in shards]
    return len(futures)  # futures never consumed


def fire_and_forget(executor, task):
    executor.submit(task)  # future discarded outright


def swallow(operation):
    try:
        return operation()
    except Exception:
        return None  # broad catch, never re-raised


def swallow_all(operation):
    try:
        return operation()
    except:  # noqa: E722 - the point of the fixture
        return None
