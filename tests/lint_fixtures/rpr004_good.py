"""RPR004 clean: contract stated explicitly on both sides."""


class PathIndex:
    """Local stand-in for the real base; not itself checked."""

    incremental = False
    incremental_removal = False


class GoodIncremental(PathIndex):
    incremental = True
    incremental_removal = True

    def _update(self, db, doc):
        return doc

    def _remove(self, db, doc):
        return doc


class GoodFallback(PathIndex):
    incremental = False
    incremental_removal = False
