"""Index classes for the broken registry fixture."""


class PathIndex:
    """Local stand-in for the real base; not itself checked."""

    incremental = False
    incremental_removal = False


class GammaIndex(PathIndex):
    name = "gamma"
    incremental = False
    incremental_removal = False


class DeltaIndex(PathIndex):
    name = "delta"  # defined here but missing from INDEX_TYPES
    incremental = False
    incremental_removal = False
