"""RPR004 registry violations: an unregistered subclass and a ghost entry."""

from .models import GammaIndex

INDEX_TYPES = {
    GammaIndex.name: GammaIndex,
    "ghost": GhostIndex,  # noqa: F821 - never imported; the linter only parses
}
