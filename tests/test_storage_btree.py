"""Unit and property tests for the B+-tree access method."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import StorageError
from repro.storage import BPlusTree, StatsCollector, encode_key
from repro.storage.btree import _Internal, _Leaf


def make_tree(order=8, stats=None):
    return BPlusTree(order=order, stats=stats or StatsCollector())


def test_order_must_be_reasonable():
    with pytest.raises(StorageError):
        BPlusTree(order=2)


def test_insert_and_exact_search():
    tree = make_tree()
    for i in range(100):
        tree.insert(encode_key((i,)), f"v{i}")
    assert len(tree) == 100
    assert tree.search(encode_key((42,))) == ["v42"]
    assert tree.search(encode_key((1000,))) == []


def test_duplicate_keys_are_all_returned():
    tree = make_tree(order=4)
    for i in range(50):
        tree.insert(encode_key(("dup",)), i)
    tree.insert(encode_key(("other",)), "x")
    assert sorted(tree.search(encode_key(("dup",)))) == list(range(50))


def test_duplicates_spanning_many_leaves_found_from_first():
    """Regression test: reads must descend to the *first* duplicate."""
    tree = make_tree(order=4)
    for i in range(200):
        tree.insert(encode_key(("k", i % 3)), i)
    found = tree.search(encode_key(("k", 1)))
    assert sorted(found) == [i for i in range(200) if i % 3 == 1]


def test_prefix_scan_returns_exactly_prefixed_entries():
    tree = make_tree(order=6)
    for value in ("jane", "john", None):
        for path in ((5, 4), (5, 9), (7, 4)):
            tree.insert(encode_key((value, *path)), (value, path))
    results = [payload for _k, payload in tree.scan_prefix(encode_key(("jane", 5)))]
    assert sorted(results) == [("jane", (5, 4)), ("jane", (5, 9))]
    # None (NULL leaf value) is a distinct prefix.
    none_results = list(tree.scan_prefix(encode_key((None,))))
    assert len(none_results) == 3


def test_scan_range_and_scan_all():
    tree = make_tree(order=5)
    for i in range(40):
        tree.insert(encode_key((i,)), i)
    ranged = [v for _k, v in tree.scan_range(encode_key((10,)), encode_key((20,)))]
    assert ranged == list(range(10, 20))
    inclusive = [v for _k, v in tree.scan_range(encode_key((10,)), encode_key((20,)), include_high=True)]
    assert inclusive == list(range(10, 21))
    assert [v for _k, v in tree.scan_all()] == list(range(40))


def test_delete_specific_value_and_all():
    tree = make_tree(order=4)
    for i in range(30):
        tree.insert(encode_key(("k",)), i)
    removed = tree.delete(encode_key(("k",)), value=7)
    assert removed == 1
    assert 7 not in tree.search(encode_key(("k",)))
    removed_all = tree.delete(encode_key(("k",)))
    assert removed_all == 29
    assert tree.search(encode_key(("k",))) == []
    assert len(tree) == 0


def test_stats_count_node_reads_and_lookups():
    stats = StatsCollector()
    tree = make_tree(order=4, stats=stats)
    for i in range(200):
        tree.insert(encode_key((i,)), i)
    stats.reset()
    tree.search(encode_key((150,)))
    assert stats.index_lookups == 1
    assert stats.btree_node_reads >= tree.height
    assert stats.btree_entries_scanned >= 1


def test_count_prefix():
    tree = make_tree()
    for i in range(10):
        tree.insert(encode_key(("a", i)), i)
        tree.insert(encode_key(("b", i)), i)
    assert tree.count_prefix(encode_key(("a",))) == 10


def test_estimated_size_with_and_without_prefix_compression():
    tree = make_tree(order=16)
    for i in range(500):
        tree.insert(encode_key(("shared-prefix", i)), i)
    raw = tree.estimated_size_bytes(prefix_compression=False)
    compressed = tree.estimated_size_bytes(prefix_compression=True)
    assert 0 < compressed < raw


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=30), st.integers(min_value=0, max_value=5)),
        max_size=300,
    ),
    st.integers(min_value=4, max_value=32),
)
def test_against_sorted_list_reference(pairs, order):
    """Property: search and ordered iteration agree with a sorted list."""
    tree = BPlusTree(order=order, stats=StatsCollector())
    reference: list[tuple] = []
    for first, second in pairs:
        key = encode_key((first, second))
        tree.insert(key, (first, second))
        reference.append((key, (first, second)))
    reference.sort(key=lambda kv: kv[0])
    assert [v for _k, v in tree.scan_all()] == [v for _k, v in reference]
    for probe in {p[0] for p in pairs} | {99}:
        prefix = encode_key((probe,))
        expected = sorted(v for k, v in reference if k[: len(prefix)] == prefix)
        got = sorted(v for _k, v in tree.scan_prefix(prefix))
        assert got == expected


# ----------------------------------------------------------------------
# Churn: random interleaved insert / delete / scan_prefix against a
# sorted-dict oracle (the maintenance extension's workload shape).
# ----------------------------------------------------------------------
def _leaf_chain(tree: BPlusTree) -> list[_Leaf]:
    """The leaf linked list, reached by descending leftmost pointers."""
    node = tree._root
    while isinstance(node, _Internal):
        node = node.children[0]
    leaves = []
    while node is not None:
        leaves.append(node)
        node = node.next
    return leaves


def _leaf_depths(tree: BPlusTree) -> set[int]:
    """Depths of every leaf reached through the internal structure."""
    depths: set[int] = set()
    stack = [(tree._root, 1)]
    while stack:
        node, depth = stack.pop()
        if isinstance(node, _Leaf):
            depths.add(depth)
        else:
            stack.extend((child, depth + 1) for child in node.children)
    return depths


def _check_invariants(tree: BPlusTree, oracle: dict) -> None:
    """Structural invariants the churn test enforces after every op."""
    # Height: every leaf sits at the same depth, equal to the reported
    # height (entry deletes never rebalance, but must not skew depths).
    assert _leaf_depths(tree) == {tree.height}
    # Leaf chain: globally non-decreasing keys, every entry reachable.
    chained = [key for leaf in _leaf_chain(tree) for key in leaf.keys]
    assert chained == sorted(chained)
    assert len(chained) == len(tree) == sum(len(vs) for vs in oracle.values())
    # Content: key-by-key multiset equality with the oracle.
    by_key: dict = {}
    for key, value in tree.scan_all():
        by_key.setdefault(key, []).append(value)
    assert {k: sorted(vs) for k, vs in by_key.items()} == {
        k: sorted(vs) for k, vs in oracle.items() if vs
    }


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=0, max_value=2**30),
    st.integers(min_value=4, max_value=16),
)
def test_churn_against_sorted_dict_oracle(seed, order):
    """Random insert/delete/scan_prefix churn preserves all invariants."""
    rng = random.Random(seed)
    tree = BPlusTree(order=order, stats=StatsCollector())
    oracle: dict = {}
    for step in range(150):
        roll = rng.random()
        first, second = rng.randrange(12), rng.randrange(4)
        key = encode_key((first, second))
        if roll < 0.55 or not any(oracle.values()):
            value = (first, second, step)
            tree.insert(key, value)
            oracle.setdefault(key, []).append(value)
        elif roll < 0.7:
            victims = oracle.get(key, [])
            expected = len(victims)
            assert tree.delete(key) == expected
            oracle[key] = []
        elif roll < 0.8 and oracle.get(key):
            victim = rng.choice(oracle[key])
            assert tree.delete(key, value=victim) == 1
            oracle[key].remove(victim)
        else:
            prefix = encode_key((first,))
            expected = sorted(
                v
                for k, values in oracle.items()
                for v in values
                if k[: len(prefix)] == prefix
            )
            got = sorted(v for _k, v in tree.scan_prefix(prefix))
            assert got == expected
            assert tree.count_prefix(prefix) == len(expected)
        _check_invariants(tree, oracle)


def test_delete_charges_page_writes_and_delete_counter():
    stats = StatsCollector()
    tree = BPlusTree(order=4, stats=stats)
    for i in range(20):
        tree.insert(encode_key(("k", i)), i)
    stats.reset()
    assert tree.delete(encode_key(("k", 3))) == 1
    assert stats.btree_page_writes >= 1
    assert stats.btree_deletes == 1
    assert stats.btree_writes == 0  # inserts charge writes, deletes don't


def test_delete_miss_still_charges_probe_work():
    stats = StatsCollector()
    tree = BPlusTree(order=4, stats=stats)
    for i in range(10):
        tree.insert(encode_key(("k", i)), i)
    stats.reset()
    assert tree.delete(encode_key(("absent",))) == 0
    # A miss charges the (floored) per-call delete work but no page write.
    assert stats.btree_deletes == 1
    assert stats.btree_page_writes == 0


def test_delete_counts_in_maintenance_cost_currency():
    from repro.storage.stats import maintenance_cost

    stats = StatsCollector()
    tree = BPlusTree(order=4, stats=stats)
    for i in range(30):
        tree.insert(encode_key(("k", i % 5)), i)
    stats.reset()
    removed = tree.delete(encode_key(("k", 2)))
    assert removed == 6
    cost = maintenance_cost(stats.snapshot())
    # Page-granular leaf writes at weight 10 plus per-entry delete work.
    assert cost == 10 * stats.btree_page_writes + stats.btree_deletes
    assert cost > 0


def test_delete_emptying_every_leaf_keeps_tree_usable():
    """Deleting everything leaves a multi-level skeleton that still works."""
    tree = make_tree(order=4)
    for i in range(100):
        tree.insert(encode_key((i,)), i)
    assert tree.height > 1
    for i in range(100):
        assert tree.delete(encode_key((i,))) == 1
    assert len(tree) == 0
    assert tree.search(encode_key((50,))) == []
    assert list(tree.scan_all()) == []
    # The emptied tree accepts fresh inserts and answers correctly.
    for i in range(40):
        tree.insert(encode_key((i,)), f"new{i}")
    assert tree.search(encode_key((7,))) == ["new7"]
    assert [v for _k, v in tree.scan_all()] == [f"new{i}" for i in range(40)]


def test_delete_duplicates_spanning_leaves_removes_them_all():
    """Duplicates crossing several underfull leaves are all found."""
    tree = make_tree(order=4)
    for i in range(60):
        tree.insert(encode_key(("dup",)), i)
    tree.insert(encode_key(("zz",)), "sentinel")
    # Punch holes first so some leaves go underfull (no rebalancing).
    for victim in range(0, 60, 3):
        assert tree.delete(encode_key(("dup",)), value=victim) == 1
    remaining = [i for i in range(60) if i % 3 != 0]
    assert sorted(tree.search(encode_key(("dup",)))) == remaining
    assert tree.delete(encode_key(("dup",))) == len(remaining)
    assert tree.search(encode_key(("dup",))) == []
    assert tree.search(encode_key(("zz",))) == ["sentinel"]


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=0, max_value=2**30),
    st.integers(min_value=4, max_value=12),
)
def test_delete_then_reinsert_churn_against_dict_oracle(seed, order):
    """Remove-document-shaped churn: bulk deletes then reinsertion waves.

    Models the maintenance extension's actual access pattern — a
    document removal deletes a contiguous batch of (key, payload)
    entries, a replacement reinserts a similar batch — interleaved with
    prefix scans, against a dict oracle, with structural invariants
    checked after every wave.
    """
    rng = random.Random(seed)
    tree = BPlusTree(order=order, stats=StatsCollector())
    oracle: dict = {}
    next_id = 0
    live_batches: list[list[tuple]] = []
    for _wave in range(12):
        if live_batches and rng.random() < 0.45:
            batch = live_batches.pop(rng.randrange(len(live_batches)))
            for key, value in batch:
                assert tree.delete(key, value=value) == 1
                oracle[key].remove(value)
        else:
            batch = []
            for _ in range(rng.randrange(1, 25)):
                key = encode_key((rng.randrange(8), rng.randrange(4)))
                value = ("doc", next_id)
                next_id += 1
                tree.insert(key, value)
                oracle.setdefault(key, []).append(value)
                batch.append((key, value))
            live_batches.append(batch)
        probe = encode_key((rng.randrange(8),))
        expected = sorted(
            v
            for k, values in oracle.items()
            for v in values
            if k[: len(probe)] == probe
        )
        assert sorted(v for _k, v in tree.scan_prefix(probe)) == expected
        _check_invariants(tree, oracle)


def test_insert_charges_page_writes_for_leaf_and_splits():
    stats = StatsCollector()
    tree = BPlusTree(order=4, stats=stats)
    tree.insert(encode_key((0,)), 0)
    assert stats.btree_page_writes == 1  # just the leaf
    before = stats.btree_page_writes
    for i in range(1, 5):
        tree.insert(encode_key((i,)), i)
    # The 5th entry overflows the order-4 leaf: new right leaf + new root.
    assert tree.height == 2
    assert stats.btree_page_writes == before + 4 + 2


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=400))
def test_height_stays_logarithmic(values):
    tree = BPlusTree(order=8, stats=StatsCollector())
    for value in values:
        tree.insert(encode_key((value,)), value)
    # A generous logarithmic bound: order-8 tree of n entries.
    n = len(values)
    bound = 2
    capacity = 8
    while capacity < n:
        capacity *= 4
        bound += 1
    assert tree.height <= bound
