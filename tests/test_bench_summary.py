"""The bench-summary aggregator: headline extraction and the artifact."""

from __future__ import annotations

import json

import pytest

from tools.bench_summary import HEADLINES, headline_for, main, summarize


def _write_artifact(directory, name: str, summary, **extra) -> None:
    payload = {"bench": name, "summary": summary, **extra}
    (directory / f"BENCH_{name}.json").write_text(
        json.dumps(payload), encoding="utf-8"
    )


class TestHeadlineFor:
    def test_override_paths_win(self):
        metric, value = headline_for("service_throughput", {"speedup": 2.5})
        assert (metric, value) == ("speedup", 2.5)

    def test_nested_override_path(self):
        summary = {"sections": {"fig12_mixed": {"speedup": 5.0, "other": 1}}}
        metric, value = headline_for("kernels", summary)
        assert (metric, value) == ("sections/fig12_mixed/speedup", 5.0)

    def test_override_miss_falls_back_to_scan(self):
        # A kernels artifact without the expected section still yields a
        # deterministic headline from the ratio-named leaves.
        metric, value = headline_for("kernels", {"legacy_speedup": 4.0})
        assert (metric, value) == ("legacy_speedup", 4.0)

    def test_fallback_prefers_shallowest_then_alphabetical(self):
        summary = {
            "deep": {"qps_ratio": 9.0},
            "z_ratio": 3.0,
            "a_speedup": 2.0,
            "unrelated": 7.0,
        }
        metric, value = headline_for("mystery", summary)
        assert (metric, value) == ("a_speedup", 2.0)

    def test_no_ratio_leaves_means_no_headline(self):
        assert headline_for("mystery", {"notes": "hi", "count": 3}) == (None, None)

    def test_booleans_are_not_headlines(self):
        assert headline_for("mystery", {"good_ratio": True}) == (None, None)

    def test_every_known_bench_has_an_override(self):
        # The map mirrors the benches under benchmarks/; keep it honest.
        assert set(HEADLINES) >= {"frontdoor", "shard_scaling", "failover"}


class TestSummarize:
    @pytest.fixture()
    def artifact_dir(self, tmp_path):
        _write_artifact(
            tmp_path,
            "service_throughput",
            {"speedup": 19.4},
            generated_at="2026-08-08T00:00:00+00:00",
            git_revision="abc123",
        )
        _write_artifact(tmp_path, "mystery", {"deep": {"qps_ratio": 1.5}})
        _write_artifact(tmp_path, "plain", {"notes": "no numbers"})
        (tmp_path / "BENCH_broken.json").write_text("{not json", encoding="utf-8")
        # A stale summary must never feed back into itself.
        (tmp_path / "BENCH_summary.json").write_text("{}", encoding="utf-8")
        return tmp_path

    def test_one_row_per_artifact_summary_excluded(self, artifact_dir):
        summary = summarize(artifact_dir)
        assert summary["artifacts"] == 4
        assert [row["bench"] for row in summary["benches"]] == [
            "BENCH_broken",
            "mystery",
            "plain",
            "service_throughput",
        ]

    def test_rows_carry_headline_and_provenance(self, artifact_dir):
        rows = {row["bench"]: row for row in summarize(artifact_dir)["benches"]}
        throughput = rows["service_throughput"]
        assert throughput["headline"] == 19.4
        assert throughput["headline_metric"] == "speedup"
        assert throughput["generated_at"] == "2026-08-08T00:00:00+00:00"
        assert throughput["git_revision"] == "abc123"
        assert rows["mystery"]["headline_metric"] == "deep/qps_ratio"
        assert rows["plain"]["headline"] is None

    def test_unreadable_artifact_becomes_an_error_row(self, artifact_dir):
        rows = {row["bench"]: row for row in summarize(artifact_dir)["benches"]}
        assert "error" in rows["BENCH_broken"]

    def test_summary_has_its_own_provenance(self, artifact_dir):
        summary = summarize(artifact_dir)
        assert summary["generated_at"]
        assert "git_revision" in summary


class TestMain:
    def test_writes_summary_and_prints_table(self, tmp_path, capsys):
        _write_artifact(tmp_path, "frontdoor", {"coalesce_qps_ratio": 5.4})
        assert main(["--dir", str(tmp_path)]) == 0
        payload = json.loads(
            (tmp_path / "BENCH_summary.json").read_text(encoding="utf-8")
        )
        assert payload["artifacts"] == 1
        assert payload["benches"][0]["headline"] == 5.4
        out = capsys.readouterr().out
        assert "frontdoor" in out
        assert "coalesce_qps_ratio" in out

    def test_explicit_output_path(self, tmp_path):
        _write_artifact(tmp_path, "frontdoor", {"coalesce_qps_ratio": 5.4})
        output = tmp_path / "elsewhere" / "trajectory.json"
        assert main(["--dir", str(tmp_path), "--output", str(output)]) == 0
        assert json.loads(output.read_text(encoding="utf-8"))["artifacts"] == 1

    def test_missing_directory_is_a_clean_noop(self, tmp_path, capsys):
        assert main(["--dir", str(tmp_path / "nope")]) == 0
        assert "nothing to summarize" in capsys.readouterr().out
