"""Routing-table unit tests: epochs, moves, retired-span pruning, plans.

The :class:`~repro.shard.topology.ShardTopology` invariants the
sharded tier rests on, tested at the table level (no engines needed for
most), plus the collection-level movement machinery:

* global spans survive moves unchanged (a move is invisible in the
  global id space);
* every routing mutation bumps the epoch;
* retired spans translate until :meth:`compact` prunes them, and the
  hot path stays live-spans-only;
* a long add/remove/move churn keeps answers exact while compaction
  bounds the table;
* ``SizeBalancedPlacement`` tie-breaking (lowest shard index) and
  therefore :meth:`plan_rebalance` are deterministic.
"""

from __future__ import annotations

import random

import pytest

from repro import ShardedCollection, ShardedQueryService, TwigIndexDatabase
from repro.datasets import book_document, generate_xmark
from repro.errors import DocumentError
from repro.shard import (
    DocumentPlacement,
    ShardTopology,
    SizeBalancedPlacement,
)


def _placement(topology: ShardTopology, name: str, shard: int, local_start: int, count: int) -> DocumentPlacement:
    return topology.reserve(name, topology.next_ordinal(), shard, local_start, count)


# ----------------------------------------------------------------------
# Reservation, translation and epochs (pure table tests)
# ----------------------------------------------------------------------
def test_reserve_assigns_contiguous_global_spans():
    topology = ShardTopology(3)
    a = _placement(topology, "a", 0, 1, 10)
    b = _placement(topology, "b", 2, 1, 5)
    c = _placement(topology, "c", 0, 11, 7)
    assert (a.global_start, a.global_end) == (1, 11)
    assert (b.global_start, b.global_end) == (11, 16)
    assert (c.global_start, c.global_end) == (16, 23)
    assert topology.global_watermark == 23
    assert topology.to_global(2, 3) == 13
    assert topology.translate_sorted(0, [1, 5, 11, 17]) == [1, 5, 16, 22]
    assert topology.live_counts() == [2, 0, 1]
    assert topology.shard_node_weights() == [17, 0, 5]


def test_every_routing_mutation_bumps_the_epoch():
    topology = ShardTopology(2)
    epochs = [topology.epoch]
    a = _placement(topology, "a", 0, 1, 4)
    epochs.append(topology.epoch)
    moved = topology.record_move(a, 1, 1)
    epochs.append(topology.epoch)
    topology.retire(moved)
    epochs.append(topology.epoch)
    topology.compact()
    epochs.append(topology.epoch)
    assert epochs == sorted(epochs)
    assert len(set(epochs)) == len(epochs)
    # An empty compact is a no-op for readers: no epoch bump.
    before = topology.epoch
    assert topology.compact() == 0
    assert topology.epoch == before


def test_record_move_preserves_global_span_and_identity():
    topology = ShardTopology(2)
    original = _placement(topology, "doc", 0, 1, 9)
    moved = topology.record_move(original, 1, 1)
    assert moved.name == original.name
    assert moved.ordinal == original.ordinal
    assert (moved.global_start, moved.global_end) == (
        original.global_start,
        original.global_end,
    )
    assert (moved.shard_index, moved.local_start, moved.local_end) == (1, 1, 10)
    assert topology.placements() == [moved]
    assert topology.documents_moved == 1
    # The old record is no longer live: moving it again is an error.
    with pytest.raises(DocumentError):
        topology.record_move(original, 1, 20)
    # Both the retired source span and the live target span translate.
    assert topology.to_global(0, 5) == original.global_start + 4
    assert topology.to_global(1, 5) == original.global_start + 4


def test_retired_spans_translate_until_compacted():
    topology = ShardTopology(1)
    a = _placement(topology, "a", 0, 1, 5)
    b = _placement(topology, "b", 0, 6, 5)
    topology.retire(a)
    # Hot path: b only.  Slow path: a still translates (consistent cut).
    assert topology.translate_sorted(0, [2, 7]) == [2, 7]
    assert topology.retired_span_count == 1
    assert topology.compact() == 1
    assert topology.retired_span_count == 0
    assert topology.spans_pruned == 1
    # After compaction the pruned span no longer translates…
    with pytest.raises(DocumentError):
        topology.to_global(0, 2)
    with pytest.raises(DocumentError):
        topology.translate_sorted(0, [2])
    # …while live spans are untouched.
    assert topology.translate_sorted(0, [6, 10]) == [b.global_start, b.global_end - 1]


def test_scope_filtering_follows_a_moved_document():
    topology = ShardTopology(2)
    a = _placement(topology, "a", 0, 1, 5)
    b = _placement(topology, "b", 0, 6, 5)
    moved = topology.record_move(b, 1, 1)
    assert topology.shards_for_documents(["b"]) == {1: [moved]}
    assert topology.shards_for_documents(["a", "b"]) == {0: [a], 1: [moved]}
    # Scoped translation drops the co-resident document's ids.
    assert topology.translate_sorted(0, [2, 3], scope=[a]) == [2, 3]
    assert topology.translate_sorted(1, [1, 3], scope=[moved]) == [6, 8]
    assert topology.global_spans_for(["b"]) == [(6, 11)]


def test_unknown_ids_and_bad_shards_raise():
    topology = ShardTopology(2)
    _placement(topology, "a", 0, 1, 5)
    assert topology.to_global(0, 0) == 0  # virtual root
    with pytest.raises(DocumentError):
        topology.to_global(0, 6)
    with pytest.raises(DocumentError):
        topology.to_global(1, 1)
    with pytest.raises(DocumentError):
        topology.to_global(2, 1)
    with pytest.raises(DocumentError):
        topology.placements_for("missing")
    with pytest.raises(DocumentError):
        topology.reserve("x", topology.next_ordinal(), 5, 1, 1)


# ----------------------------------------------------------------------
# Collection-level movement
# ----------------------------------------------------------------------
def _documents(count: int, scale: float = 0.01):
    return [
        generate_xmark(scale=scale, seed=300 + i, name=f"doc-{i}")
        for i in range(count)
    ]


def test_move_document_is_online_and_answer_preserving():
    single = TwigIndexDatabase.from_documents(_documents(3))
    single.build_index("rootpaths")
    collection = ShardedCollection(num_shards=3, placement="round_robin")
    collection.add_documents(_documents(3))
    collection.build_index("rootpaths")
    service = ShardedQueryService(collection)
    xpath = "/site/people/person/name"
    expected = single.service.execute(xpath).ids
    assert service.execute(xpath).ids == expected

    placement = collection.placements_for("doc-1")[0]
    moved = collection.move_document("doc-1", (placement.shard_index + 1) % 3)
    assert moved.shard_index == (placement.shard_index + 1) % 3
    assert (moved.global_start, moved.global_end) == (
        placement.global_start,
        placement.global_end,
    )
    # The document physically changed shards…
    assert collection.shards[placement.shard_index].document_count == 0
    assert collection.shards[moved.shard_index].document_count == 2
    # …and answers (scoped and unscoped) are unchanged.
    assert service.execute(xpath, use_result_cache=False).ids == expected
    assert service.execute(
        xpath, documents=["doc-1"], use_result_cache=False
    ).ids == service.oracle(xpath, documents=["doc-1"])
    # A move to the owning shard is a no-op.
    assert collection.move_document("doc-1", moved.shard_index) == moved
    with pytest.raises(DocumentError):
        collection.move_document("doc-1", 7)
    with pytest.raises(DocumentError):
        collection.move_document(placement, 0)  # stale record
    service.close()


def test_move_invalidates_only_the_two_shards_touched():
    collection = ShardedCollection(num_shards=4, placement="round_robin")
    collection.add_documents(_documents(4))
    collection.build_index("rootpaths")
    service = ShardedQueryService(collection)
    xpath = "/site/people/person/name"
    service.execute(xpath)  # warm all four shards' result caches
    before = [shard.service.result_invalidations for shard in collection.shards]
    collection.move_document("doc-0", 1)  # shard 0 -> shard 1
    after = [shard.service.result_invalidations for shard in collection.shards]
    assert after[0] == before[0] + 1  # source: removal invalidation
    assert after[1] == before[1] + 1  # target: add invalidation
    assert after[2] == before[2] and after[3] == before[3]
    # The untouched shards still serve their cached partials.
    assert len(collection.shards[2].service.result_cache) > 0
    assert len(collection.shards[3].service.result_cache) > 0
    service.close()


def test_move_charges_maintenance_on_both_sides_and_counts_itself():
    collection = ShardedCollection(num_shards=2, placement="round_robin")
    collection.add_documents(_documents(2))
    collection.build_index("rootpaths")
    before = [shard.stats_snapshot() for shard in collection.shards]
    collection.move_document("doc-0", 1)
    source_diff = collection.shards[0].stats_diff(before[0])
    target_diff = collection.shards[1].stats_diff(before[1])
    # Source paid delete-side maintenance, target insert-side — the two
    # halves of a move in the shared cost currency.
    assert source_diff["btree_deletes"] > 0
    assert target_diff["btree_writes"] > 0
    assert target_diff["documents_moved"] == 1
    assert collection.topology.documents_moved == 1


# ----------------------------------------------------------------------
# Churn: retired spans accumulate, compaction prunes, answers stay exact
# ----------------------------------------------------------------------
def test_churn_accumulates_retired_spans_and_compact_prunes_them():
    rng = random.Random(7)
    collection = ShardedCollection(num_shards=3, placement="round_robin")
    collection.build_index("rootpaths")
    service = ShardedQueryService(collection)
    xpath = "/site/people/person/name"

    alive: list[str] = []
    serial = 0
    for _step in range(40):
        action = rng.random()
        if action < 0.5 or len(alive) < 2:
            name = f"churn-{serial}"
            serial += 1
            collection.add_document(
                generate_xmark(scale=0.004, seed=5000 + serial, name=name)
            )
            alive.append(name)
        elif action < 0.75:
            victim = alive.pop(rng.randrange(len(alive)))
            collection.remove_document(victim)
        else:
            name = alive[rng.randrange(len(alive))]
            collection.move_document(name, rng.randrange(3))
        # Answers stay oracle-exact through every kind of churn.
        assert (
            service.execute(xpath, use_result_cache=False).ids
            == service.oracle(xpath)
        )

    topology = collection.topology
    retired = topology.retired_span_count
    assert retired > 0  # churn left a tail of retired spans
    assert retired == topology.spans_retired - topology.spans_pruned
    pruned = collection.compact()
    assert pruned == retired
    assert topology.retired_span_count == 0
    # The hot path now holds exactly the live documents, and the tier
    # still answers exactly.
    assert topology.document_count == len(alive)
    assert (
        service.execute(xpath, use_result_cache=False).ids == service.oracle(xpath)
    )
    service.close()


# ----------------------------------------------------------------------
# Deterministic planning
# ----------------------------------------------------------------------
def test_size_balanced_tie_break_is_lowest_shard_index():
    policy = SizeBalancedPlacement()
    document = book_document()
    # All-equal weights: always shard 0, never an arbitrary choice.
    assert policy.choose(document, 0, [0, 0, 0, 0]) == 0
    assert policy.choose(document, 3, [7, 7, 7, 7]) == 0
    # A tie among a subset resolves to the lowest tied index.
    assert policy.choose(document, 1, [5, 3, 3, 9]) == 1
    assert policy.choose(document, 2, [4, 6, 2, 2]) == 2


def test_rebalance_plans_are_reproducible():
    def build() -> ShardedCollection:
        collection = ShardedCollection(num_shards=3, placement="hash")
        collection.add_documents(_documents(5, scale=0.008))
        return collection

    first = build().plan_rebalance("size_balanced")
    second = build().plan_rebalance("size_balanced")
    assert [(m.placement.ordinal, m.target_shard) for m in first] == [
        (m.placement.ordinal, m.target_shard) for m in second
    ]
    # Planning mutates nothing: the same collection plans identically
    # twice, and a plan's replay (simulated weights from zero) assigns
    # every document deterministically.
    collection = build()
    assert collection.plan_rebalance() == collection.plan_rebalance()


def test_rebalance_report_counts_moves_and_prunes():
    collection = ShardedCollection(num_shards=2, placement="round_robin")
    collection.add_documents(_documents(4, scale=0.006))
    collection.build_index("rootpaths")
    # round_robin alternates 0/1; size_balanced may move some subset.
    report = collection.rebalance("size_balanced", compact=True)
    assert report.policy == "size_balanced"
    assert report.documents_moved == report.planned
    assert report.spans_pruned == report.documents_moved
    if report.documents_moved:
        assert report.nodes_moved > 0
        assert report.maintenance_cost > 0
    # A second rebalance under the same policy is a fixed point.
    again = collection.rebalance("size_balanced")
    assert again.documents_moved == 0
