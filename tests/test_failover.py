"""Failover & self-driving operations: fault injection, revive, auto-rebalance.

The operations loop of the distributed tier, exercised deterministically
through :mod:`repro.faults` (seeded plans, call-count scheduling, no
wall-clock randomness anywhere):

* **fault plans and the injector proxy** — schedules validate, seeds
  reproduce, and the injector raises / delays / drifts exactly at the
  scheduled calls while delegating everything else;
* **the health state machine** — consecutive read failures demote a
  replica healthy → suspect → dead, reads retry on the next healthy
  replica (the caller never sees a survivable fault), pickers never
  select a dead replica, probation traffic redeems a recovered suspect;
* **the differential pin** — a seeded plan killing one replica of a
  3-replica shard mid-workload leaves every query answer bit-identical
  to a never-faulted single engine;
* **revive / re-sync** — a quarantined replica that missed writes is
  rebuilt from the shard's write log (adds *and* removals, so id gaps
  reproduce) and passes the alignment check;
* **watermark-triggered auto-rebalance** — the hysteresis band fires
  ``rebalance(policy)`` exactly once per sustained skew episode;
* **the satellite regressions** — ``invalidate`` under the write lock,
  ``_sum_reports`` recomputing ``hit_rate`` from summed counters, the
  bounded round-robin cursor, and the first-id index behind
  ``document_at``.
"""

from __future__ import annotations

import threading
import zlib

import pytest

from repro import ShardedQueryService, TwigIndexDatabase
from repro.datasets import generate_xmark
from repro.errors import DocumentError, QueryParseError
from repro.faults import (
    FAULT_KINDS,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    InjectedFault,
    inject,
)
from repro.service.cache import LRUCache
from repro.shard import (
    REPLICA_DEAD,
    REPLICA_HEALTHY,
    REPLICA_SUSPECT,
    AutoRebalancer,
    ReplicatedShard,
    RoundRobinPicker,
    ShardedCollection,
)
from repro.shard.replica import _sum_reports

XPATH = "/site/people/person/name"


def _doc(i: int, scale: float = 0.01):
    return generate_xmark(scale=scale, seed=700 + i, name=f"doc-{i}")


def _replicated(replicas: int = 3, **options) -> ReplicatedShard:
    shard = ReplicatedShard(0, replicas=replicas, **options)
    for i in range(2):
        shard.add_document(_doc(i))
    shard.build_index("rootpaths")
    return shard


# ----------------------------------------------------------------------
# Fault plans
# ----------------------------------------------------------------------
def test_fault_plan_validation():
    with pytest.raises(ValueError):
        FaultEvent(call=0)
    with pytest.raises(ValueError):
        FaultEvent(call=1, kind="meteor")
    with pytest.raises(ValueError):
        FaultEvent(call=1, kind="slow", delay_seconds=0.0)
    with pytest.raises(ValueError):
        FaultEvent(call=1, kind="diverge", drift=0)
    with pytest.raises(ValueError):  # two faults on one call
        FaultPlan([FaultEvent(call=3), FaultEvent(call=3, kind="slow", delay_seconds=1)])
    with pytest.raises(ValueError):
        FaultPlan.seeded(seed=1, horizon=10, rate=1.5)
    with pytest.raises(ValueError):
        FaultPlan.seeded(seed=1, horizon=10, rate=0.5, kinds=("meteor",))


def test_seeded_plans_are_reproducible_and_wall_clock_free():
    first = FaultPlan.seeded(seed=42, horizon=200, rate=0.15, kinds=FAULT_KINDS)
    second = FaultPlan.seeded(seed=42, horizon=200, rate=0.15, kinds=FAULT_KINDS)
    assert first.events == second.events
    assert len(first) > 0
    assert all(1 <= event.call <= 200 for event in first.events)
    other = FaultPlan.seeded(seed=43, horizon=200, rate=0.15, kinds=FAULT_KINDS)
    assert first.events != other.events


def test_injector_fires_exactly_at_scheduled_calls_and_delegates():
    class Surface:
        watermark = 17

        def __init__(self):
            self.calls = 0

        def execute(self, xpath):
            self.calls += 1
            return f"answer-{self.calls}"

        def describe(self):
            return {"kind": "surface"}

    slept: list[float] = []
    surface = Surface()
    plan = FaultPlan(
        [
            FaultEvent(call=2, kind="error"),
            FaultEvent(call=4, kind="slow", delay_seconds=0.25),
            FaultEvent(call=5, kind="diverge", drift=3),
        ]
    )
    injector = FaultInjector(surface, plan, sleep=slept.append)

    assert injector.execute("q") == "answer-1"
    with pytest.raises(InjectedFault):
        injector.execute("q")
    assert surface.calls == 1  # the faulted call never reached the surface
    assert injector.watermark == 17
    assert injector.execute("q") == "answer-2"
    assert injector.execute("q") == "answer-3" and slept == [0.25]
    injector.execute("q")
    assert injector.watermark == 17 + 3  # diverge drift is permanent
    assert injector.calls_seen == 5
    assert [event.kind for event in injector.fired] == ["error", "slow", "diverge"]
    assert injector.describe() == {"kind": "surface"}  # transparent proxy


# ----------------------------------------------------------------------
# Health machine: retry, quarantine, probation
# ----------------------------------------------------------------------
def test_failed_read_retries_on_next_replica_and_caller_sees_no_error():
    shard = _replicated()
    expected = shard.primary.service.execute(XPATH, strategy="rootpaths").ids
    inject(shard, 1, FaultPlan.failing_at(1))
    for _ in range(6):
        assert shard.execute(XPATH, strategy="rootpaths").ids == expected
    report = shard.health_report()
    assert report["reads_retried"] >= 1
    assert shard.ops_stats.reads_retried >= 1


def test_picker_never_selects_a_dead_replica():
    # dead_after=1: the first failure quarantines the replica outright.
    shard = _replicated(dead_after=1)
    injector = inject(shard, 1, FaultPlan.failing_at(*range(1, 1000)))
    expected = shard.primary.service.execute(XPATH, strategy="rootpaths").ids
    for _ in range(30):
        assert shard.execute(XPATH, strategy="rootpaths").ids == expected
    report = shard.health_report()
    assert report["states"][1] == REPLICA_DEAD
    assert report["replicas_failed"] == 1
    # Exactly one read ever reached the dead replica: the one that
    # killed it.  Everything after routed around the quarantine.
    assert injector.calls_seen == 1
    assert shard.replica_reads[1] == 1


def test_consecutive_failures_walk_healthy_suspect_dead():
    shard = _replicated(suspect_after=1, dead_after=2, probe_interval=2)
    inject(shard, 2, FaultPlan.failing_at(*range(1, 1000)))
    seen: list[str] = []
    for _ in range(8):  # round-robin reaches the faulted replica, then probes it
        shard.execute(XPATH)
        seen.append(shard.health_report()["states"][2])
    assert REPLICA_SUSPECT in seen  # demoted before it died
    assert seen[-1] == REPLICA_DEAD
    # The walk is monotone: healthy* suspect* dead*.
    order = {REPLICA_HEALTHY: 0, REPLICA_SUSPECT: 1, REPLICA_DEAD: 2}
    assert [order[state] for state in seen] == sorted(order[state] for state in seen)


def test_probation_redeems_a_suspect_that_recovers():
    # The replica fails exactly once; the probe interval then routes a
    # read back to it, and the success redeems it to healthy.
    shard = _replicated(suspect_after=1, dead_after=3, probe_interval=4)
    inject(shard, 1, FaultPlan.failing_at(1))
    while shard.health_report()["states"][1] == REPLICA_HEALTHY:
        shard.execute(XPATH)  # round-robin reaches the fault within a cycle
    assert shard.health_report()["states"][1] == REPLICA_SUSPECT
    for _ in range(2 * 4):  # at least one probe window passes
        shard.execute(XPATH)
    report = shard.health_report()
    assert report["states"][1] == REPLICA_HEALTHY
    assert report["detail"][1]["successes"] >= 1


def test_all_replicas_dead_surfaces_an_error():
    shard = _replicated(replicas=2, dead_after=1)
    inject(shard, 0, FaultPlan.failing_at(*range(1, 100)))
    inject(shard, 1, FaultPlan.failing_at(*range(1, 100)))
    with pytest.raises((DocumentError, InjectedFault)):
        for _ in range(4):
            shard.execute(XPATH)
    with pytest.raises(DocumentError):
        shard.execute(XPATH)  # both quarantined: no live replica left


def test_query_errors_do_not_demote_health_or_retry():
    # A bad query fails identically on every replica: with the old
    # catch-everything demotion, repeating it dead_after times walked
    # the whole replica set (primary included) to dead and turned a
    # caller mistake into a permanent shard read outage.
    shard = _replicated(suspect_after=1, dead_after=2)
    expected = shard.primary.service.execute(XPATH, strategy="rootpaths").ids
    for _ in range(8):  # well past dead_after on every replica
        with pytest.raises(QueryParseError):
            shard.execute("not a query ((")
    report = shard.health_report()
    assert report["states"] == [REPLICA_HEALTHY] * 3
    assert report["reads_retried"] == 0
    assert report["replicas_failed"] == 0
    # Valid reads still serve afterwards.
    assert shard.execute(XPATH, strategy="rootpaths").ids == expected


def test_divergent_secondary_is_quarantined_by_the_alignment_check():
    shard = _replicated()
    injector = inject(shard, 2, FaultPlan.diverging_at(1, drift=5))
    while not injector.fired:  # round-robin reaches replica 2 within a cycle
        shard.execute(XPATH)  # arms the drift on replica 2's watermark
    shard.add_document(_doc(7))  # write-through alignment catches it
    report = shard.health_report()
    assert report["states"][2] == REPLICA_DEAD
    assert "diverged" in report["detail"][2]["last_error"]
    assert report["replicas_failed"] == 1
    # The healthy replicas still agree and still serve.
    assert shard.replicas[0].watermark == shard.replicas[1].watermark
    shard.execute(XPATH)


# ----------------------------------------------------------------------
# The differential pin: seeded mid-workload kill vs a single engine
# ----------------------------------------------------------------------
def test_seeded_replica_kill_mid_workload_answers_identical_to_single_engine():
    parameters = [(0.015, 11), (0.02, 12), (0.015, 13)]

    def documents():
        return [
            generate_xmark(scale=scale, seed=seed, name=f"doc-{i}")
            for i, (scale, seed) in enumerate(parameters)
        ]

    single = TwigIndexDatabase.from_documents(documents())
    single.build_index("rootpaths")
    sharded = ShardedQueryService.from_documents(
        documents(), num_shards=2, placement="hash", replicas=3
    )
    sharded.build_index("rootpaths")

    plan = FaultPlan.seeded(seed=20260808, horizon=30, rate=0.4)
    injectors = [
        inject(sharded.collection.shards[0], 1, plan),
        inject(sharded.collection.shards[1], 2, plan),
    ]
    workload = [
        XPATH,
        "//person[name='Hagen Artosi']",
        "/site/open_auctions/open_auction/time",
        "//item[location]",
    ]
    for round_number in range(8):
        for xpath in workload:
            expected = single.service.execute(xpath, strategy="rootpaths").ids
            got = sharded.execute(
                xpath, strategy="rootpaths", use_result_cache=round_number % 2 == 0
            ).ids
            assert got == expected, xpath
    # The faults really fired and the tier really failed over.
    assert any(injector.fired for injector in injectors)
    failover = sharded.describe()["operations"]["failover"]
    assert failover["reads_retried"] >= 1
    sharded.close()


# ----------------------------------------------------------------------
# Revive / re-sync
# ----------------------------------------------------------------------
def test_revive_replays_the_write_log_through_removal_gaps():
    shard = _replicated(dead_after=1)
    shard.remove_document("doc-0")  # leaves an id gap in the replay
    inject(shard, 1, FaultPlan.failing_at(*range(1, 100)))
    for _ in range(4):
        shard.execute(XPATH)
    assert shard.health_report()["states"][1] == REPLICA_DEAD
    # Writes land while the replica is quarantined: it misses them.
    shard.add_document(_doc(5))
    assert shard.replicas[1].watermark != shard.primary.watermark

    revived = shard.revive(1)
    assert shard.replicas[1] is revived  # injector discarded with the slot
    assert revived.watermark == shard.primary.watermark
    assert revived.document_count == shard.primary.document_count
    assert sorted(revived.engine.indexes) == sorted(shard.primary.engine.indexes)
    # The rebuilt replica assigns exactly the primary's node ids.
    assert (
        revived.service.execute(XPATH, strategy="rootpaths").ids
        == shard.primary.service.execute(XPATH, strategy="rootpaths").ids
    )
    report = shard.health_report()
    assert report["states"][1] == REPLICA_HEALTHY
    assert report["replicas_revived"] == 1
    # The next write-through alignment check passes with all replicas.
    shard.add_document(_doc(6))
    assert len({replica.watermark for replica in shard.replicas}) == 1


def test_revive_is_monotone_in_the_merged_stats():
    shard = _replicated(dead_after=1)
    inject(shard, 1, FaultPlan.failing_at(*range(1, 100)))
    for _ in range(3):
        shard.execute(XPATH)
    before = shard.stats_snapshot()
    shard.revive(1)
    after = shard.stats_snapshot()
    assert all(after[key] >= value for key, value in before.items())
    assert after["replicas_revived"] == 1


def test_oplog_stays_bounded_under_churn_and_revive_stays_exact():
    # Constant corpus, endless remove/re-add churn: without compaction
    # the write log keeps a clone of every document ever added and
    # grows without bound.  Small docs keep the loop fast.
    shard = _replicated(replicas=2, dead_after=1)
    for i in range(70):
        name = f"doc-{i % 2}"
        shard.remove_document(name)
        shard.add_document(
            generate_xmark(scale=0.005, seed=900 + i, name=name)
        )
    assert len(shard._oplog) < ReplicatedShard.OPLOG_COMPACT_MIN
    # The compacted log (live adds + id-gap entries) still re-syncs a
    # replica to exactly the primary's ids through the removal gaps.
    inject(shard, 1, FaultPlan.failing_at(*range(1, 100)))
    for _ in range(4):
        shard.execute(XPATH)
    assert shard.health_report()["states"][1] == REPLICA_DEAD
    shard.add_document(_doc(8))  # a write the quarantined replica misses
    revived = shard.revive(1)
    assert revived.watermark == shard.primary.watermark
    assert revived.document_count == shard.primary.document_count
    assert (
        revived.service.execute(XPATH, strategy="rootpaths").ids
        == shard.primary.service.execute(XPATH, strategy="rootpaths").ids
    )


def test_service_revive_passthrough_and_validation():
    service = ShardedQueryService.from_documents(
        [_doc(0), _doc(1)], num_shards=2, placement="round_robin", replicas=2
    )
    revived = service.revive_replica(0, 1)
    assert revived.watermark == service.collection.shards[0].primary.watermark
    with pytest.raises(DocumentError):
        service.revive_replica(7, 0)
    with pytest.raises(DocumentError):
        service.revive_replica(0, 9)
    service.close()
    plain = ShardedQueryService.from_documents([_doc(0)], num_shards=1)
    with pytest.raises(DocumentError):
        plain.revive_replica(0, 0)  # not replicated
    plain.close()


# ----------------------------------------------------------------------
# Watermark-triggered auto-rebalance
# ----------------------------------------------------------------------
def _colliding_name(base: str, num_shards: int) -> str:
    """A document name whose CRC32 routes to shard 0."""
    for salt in range(10_000):
        name = f"{base}-{salt}"
        if zlib.crc32(name.encode("utf-8")) % num_shards == 0:
            return name
    raise AssertionError("no colliding name found")  # pragma: no cover


def _skewed_collection(num_docs: int = 6) -> ShardedCollection:
    collection = ShardedCollection(num_shards=2, placement="hash")
    for i in range(num_docs):
        collection.add_document(
            generate_xmark(scale=0.01, seed=500 + i, name=_colliding_name(f"s-{i}", 2))
        )
    return collection


def test_auto_rebalance_fires_exactly_once_per_sustained_skew_episode():
    collection = _skewed_collection()
    # policy="hash" re-places the colliding corpus right back onto shard
    # 0, so the skew *stays* at the high watermark after the fire — the
    # sustained-episode case the hysteresis band must not re-fire on.
    auto = AutoRebalancer(
        collection,
        policy="hash",
        high_watermark=2.0,
        low_watermark=1.25,
        check_interval=1,
        background=False,
        enabled=True,
    )
    assert auto.check()["fired"]
    for _ in range(5):
        assert not auto.check()["fired"]  # skew still high, trigger disarmed
    assert auto.stats.auto_rebalances == 1

    # The episode ends only when measured skew drains below the low
    # watermark; the next check re-arms without firing.
    collection.rebalance("size_balanced")
    record = auto.check()
    assert not record["fired"]
    assert auto.describe()["armed"]

    # A second sustained episode fires exactly once more.
    for placement in collection.placements():
        collection.move_document(placement, 0)
    assert auto.check()["fired"]
    for _ in range(5):
        assert not auto.check()["fired"]
    assert auto.stats.auto_rebalances == 2
    assert auto.describe()["episodes_total"] == 2
    auto.close()


def test_auto_rebalance_respects_min_documents_and_hysteresis_band():
    collection = _skewed_collection(num_docs=2)  # ratio 2.0 but tiny corpus
    auto = AutoRebalancer(
        collection, check_interval=1, background=False, enabled=True
    )
    assert collection.topology.skew()["ratio"] == 2.0
    assert not auto.check()["fired"]  # below min_documents (2 * num_shards)
    with pytest.raises(ValueError):
        AutoRebalancer(collection, high_watermark=1.2, low_watermark=1.5)
    with pytest.raises(ValueError):
        AutoRebalancer(collection, check_interval=0)
    auto.close()


def test_service_drives_auto_rebalance_between_queries():
    documents = [
        generate_xmark(scale=0.01, seed=300 + i, name=_colliding_name(f"q-{i}", 2))
        for i in range(6)
    ]
    service = ShardedQueryService.from_documents(
        documents,
        num_shards=2,
        placement="hash",
        auto_rebalance=True,
        rebalance_interval=2,
        rebalance_background=False,  # inline, so assertions are deterministic
    )
    service.build_index("rootpaths")
    assert service.collection.topology.skew()["ratio"] == 2.0
    expected = service.oracle(XPATH)
    for _ in range(8):
        assert service.execute(XPATH, use_result_cache=False).ids == expected
    operations = service.describe()["operations"]["auto_rebalance"]
    assert operations["auto_rebalances"] == 1  # once, not once per check
    assert operations["episodes_total"] == 1
    assert operations["last_skew"]["ratio"] < 1.25  # skew drained
    weights = service.collection.topology.shard_node_weights()
    assert all(weight > 0 for weight in weights)
    # The activity counter rides the shared stats machinery.
    assert service._stats_snapshot()[-1]["auto_rebalances"] == 1
    service.close()


def test_plan_rebalance_skips_placements_retired_mid_plan(monkeypatch):
    # A removal racing the planner can retire a placement (and detach
    # its shard-side document) after the placements() snapshot; the
    # plan must skip it, not abort — from a background auto-rebalance
    # an abort would surface as an operations failure.
    collection = _skewed_collection()
    stale = collection.placements()
    retired = stale[0]
    collection.remove_document(retired.name)
    monkeypatch.setattr(collection.topology, "placements", lambda: stale)
    moves = collection.plan_rebalance()
    assert all(move.placement is not retired for move in moves)


def test_background_rebalance_failure_is_status_not_a_query_error(monkeypatch):
    documents = [
        generate_xmark(scale=0.01, seed=400 + i, name=_colliding_name(f"f-{i}", 2))
        for i in range(6)
    ]
    service = ShardedQueryService.from_documents(
        documents,
        num_shards=2,
        placement="hash",
        auto_rebalance=True,
        rebalance_interval=1,
    )
    service.build_index("rootpaths")

    def boom(policy, compact=False):
        raise RuntimeError("rebalance exploded")

    monkeypatch.setattr(service.collection, "rebalance", boom)
    expected = service.oracle(XPATH)
    # The trigger fires on the first tick and the background run fails;
    # no later query (whose answer was already gathered) may lose its
    # result to that failure.
    for _ in range(6):
        assert service.execute(XPATH, use_result_cache=False).ids == expected
    assert service.operations.drain() is None  # never completed a run
    operations = service.describe()["operations"]["auto_rebalance"]
    assert operations["auto_rebalances"] == 0
    assert operations["auto_rebalance_failures"] >= 1
    assert "rebalance exploded" in operations["last_error"]
    assert "error" in operations["episodes"][-1]
    service.close()


def test_fired_background_run_is_published_before_check_returns():
    # The future must be published atomically with the firing decision:
    # a drain() racing the check may never observe a fired-but-
    # unpublished run and return with pre-rebalance state.
    collection = _skewed_collection()
    auto = AutoRebalancer(
        collection, check_interval=1, background=True, enabled=True
    )
    release = threading.Event()
    real_rebalance = collection.rebalance

    def gated(policy, compact=False):
        assert release.wait(10)
        return real_rebalance(policy)

    collection.rebalance = gated
    try:
        record = auto.check()
        assert record["fired"]
        assert auto.describe()["in_flight"]  # visible before any sync point
    finally:
        release.set()
    report = auto.drain()
    assert report is not None
    assert auto.stats.auto_rebalances == 1
    auto.close()


def test_disabled_auto_rebalance_never_checks():
    service = ShardedQueryService.from_documents(
        [_doc(0), _doc(1)], num_shards=2, placement="hash"
    )
    for _ in range(5):
        service.execute(XPATH)
    operations = service.describe()["operations"]["auto_rebalance"]
    assert not operations["enabled"]
    assert operations["checks"] == 0
    assert operations["auto_rebalances"] == 0
    service.close()


# ----------------------------------------------------------------------
# Satellite regressions
# ----------------------------------------------------------------------
def test_invalidate_takes_the_write_lock():
    shard = _replicated(replicas=2)
    finished = threading.Event()

    def invalidate():
        shard.invalidate(rebuilt=False)
        finished.set()

    with shard.add_lock:
        worker = threading.Thread(target=invalidate)
        worker.start()
        assert not finished.wait(0.15)  # blocked behind the write lock
    worker.join(timeout=5)
    assert finished.is_set()


def test_invalidate_racing_write_through_leaves_replicas_consistent():
    shard = _replicated(replicas=3)
    stop = threading.Event()
    errors: list[BaseException] = []

    def sweep():
        try:
            while not stop.is_set():
                shard.invalidate(rebuilt=False)
        except BaseException as error:  # pragma: no cover - failure path
            errors.append(error)

    sweeper = threading.Thread(target=sweep)
    sweeper.start()
    try:
        for i in range(8):
            shard.add_document(_doc(20 + i, scale=0.005))
    finally:
        stop.set()
        sweeper.join(timeout=10)
    assert not errors
    # No torn interleaving: replicas aligned, healthy, answers equal.
    assert len({replica.watermark for replica in shard.replicas}) == 1
    assert shard.health_report()["dead"] == 0
    answers = {
        tuple(replica.service.execute(XPATH, strategy="rootpaths").ids)
        for replica in shard.replicas
    }
    assert len(answers) == 1


def test_sum_reports_recomputes_hit_rate_from_summed_counters():
    reports = [
        {"hits": 9, "misses": 1, "hit_rate": 0.9, "max_size": 64},
        {"hits": 0, "misses": 10, "hit_rate": 0.0, "max_size": 64},
    ]
    merged = _sum_reports(reports)
    assert merged["hits"] == 9 and merged["misses"] == 11
    assert merged["hit_rate"] == pytest.approx(0.45)  # not the primary's 0.9
    assert merged["max_size"] == 64
    nested = _sum_reports([{"cache": r} for r in reports])
    assert nested["cache"]["hit_rate"] == pytest.approx(0.45)


def test_replicated_shard_hit_rate_reflects_all_replicas():
    # Sticky affinity drives all traffic for one query to one replica;
    # the shard-level rate must fold every replica's counters, not copy
    # the primary's.
    shard = _replicated(read_picker="sticky")
    for _ in range(6):
        shard.execute(XPATH)
    report = shard.service_report()["result_cache"]
    assert report["hit_rate"] == pytest.approx(
        report["hits"] / (report["hits"] + report["misses"])
    )


def test_round_robin_cursor_stays_bounded():
    picker = RoundRobinPicker()
    picks = [picker.pick([0, 0, 0], "q") for _ in range(1000)]
    assert picks[:6] == [0, 1, 2, 0, 1, 2]  # the cycle is unchanged
    assert picker._cursor < 3


def test_lru_hit_rate_is_read_under_the_lock():
    cache = LRUCache(max_size=4)
    cache.put("a", 1)
    cache.get("a")
    cache.get("b")
    assert cache.hit_rate == pytest.approx(0.5)
    # Concurrent readers always observe a rate a consistent counter
    # pair could produce.
    stop = threading.Event()
    rates: list[float] = []

    def read():
        while not stop.is_set():
            rates.append(cache.hit_rate)

    reader = threading.Thread(target=read)
    reader.start()
    try:
        for i in range(2000):
            cache.put(i % 8, i)
            cache.get(i % 8)
    finally:
        stop.set()
        reader.join(timeout=10)
    assert all(0.0 <= rate <= 1.0 for rate in rates)


def test_document_at_index_tracks_add_remove_churn():
    shard = _replicated(replicas=1)
    first = shard.primary.db.documents[0]
    assert shard.document_at(first.first_id) is first
    removed = shard.remove_document("doc-0")
    with pytest.raises(DocumentError):
        shard.document_at(removed.first_id)
    added = shard.add_document(_doc(9))
    assert shard.document_at(added.first_id) is added
    with pytest.raises(DocumentError):
        shard.document_at(10**9)
