"""Tests for the baseline indices: Edge, DataGuide, Index Fabric, ASR, Join Indices."""

import pytest

from repro.indexes import (
    AccessSupportRelationsIndex,
    DataGuideIndex,
    EdgeIndex,
    INDEX_TYPES,
    IndexFabricIndex,
    JoinIndicesIndex,
)
from repro.paths import PathPattern
from repro.storage import StatsCollector
from repro.xmltree.document import VIRTUAL_ROOT_ID


# ----------------------------------------------------------------------
# Edge table
# ----------------------------------------------------------------------
def test_edge_value_tag_and_link_indices(book_xmldb):
    edge = EdgeIndex(stats=StatsCollector()).build(book_xmldb)
    assert edge.edge_count == book_xmldb.node_count
    janes = edge.nodes_with_value("fn", "jane")
    assert len(janes) == 2
    assert len(edge.nodes_with_label("author")) == 3
    parent = edge.parent_of(janes[0])
    assert parent is not None and parent[1] == "author"
    author_id = parent[0]
    assert sorted(edge.children_of(author_id, "fn")) == sorted(
        i for i in janes if edge.parent_of(i)[0] == author_id
    )


def test_edge_ancestor_walk_reaches_virtual_root(book_xmldb):
    edge = EdgeIndex(stats=StatsCollector()).build(book_xmldb)
    fn_id = edge.nodes_with_value("fn", "john")[0]
    chain = list(edge.ancestors_of(fn_id))
    assert [label for _id, label in chain] == ["author", "allauthors", "book", "#root"]
    assert chain[-1][0] == VIRTUAL_ROOT_ID


def test_edge_value_of(book_xmldb):
    edge = EdgeIndex(stats=StatsCollector()).build(book_xmldb)
    title_id = edge.nodes_with_value("title", "XML")[0]
    assert edge.value_of(title_id) == "XML"


# ----------------------------------------------------------------------
# DataGuide
# ----------------------------------------------------------------------
def test_dataguide_lookup_and_distinct_paths(book_xmldb):
    guide = DataGuideIndex(stats=StatsCollector()).build(book_xmldb)
    assert len(guide.distinct_paths()) == 11
    title_ids = guide.lookup_path(("book", "title"))
    assert len(title_ids) == 1
    author_ids = guide.lookup_path(("book", "allauthors", "author"))
    assert len(author_ids) == 3
    assert guide.lookup_path(("book", "unknown")) == []


def test_dataguide_paths_matching_recursive_pattern(book_xmldb):
    guide = DataGuideIndex(stats=StatsCollector()).build(book_xmldb)
    pattern = PathPattern((("title",),), anchored=False)
    matching = guide.paths_matching(pattern)
    assert sorted(matching) == [("book", "chapter", "title"), ("book", "title")]


# ----------------------------------------------------------------------
# Index Fabric
# ----------------------------------------------------------------------
def test_index_fabric_lookup_by_path_and_value(book_xmldb):
    fabric = IndexFabricIndex(stats=StatsCollector()).build(book_xmldb)
    ids = fabric.lookup(("book", "allauthors", "author", "fn"), "jane")
    assert len(ids) == 2
    assert all(book_xmldb.node(i).label == "fn" for i in ids)
    assert fabric.lookup(("book", "title"), "nope") == []
    assert fabric.supports(("book", "title"), "XML")
    assert not fabric.supports(("book", "title"), None)
    assert not fabric.supports(("book", "nothing"), "x")


def test_index_fabric_return_first_option(book_xmldb):
    fabric = IndexFabricIndex(stats=StatsCollector(), return_first=True).build(book_xmldb)
    ids = fabric.lookup(("book", "allauthors", "author", "fn"), "jane")
    assert set(ids) == {book_xmldb.documents[0].root.node_id}


# ----------------------------------------------------------------------
# Access Support Relations
# ----------------------------------------------------------------------
def test_asr_one_relation_per_schema_path(book_xmldb):
    asr = AccessSupportRelationsIndex(stats=StatsCollector()).build(book_xmldb)
    assert asr.relation_count == 11
    relation = asr.relation_for(("book", "allauthors", "author", "ln"))
    assert relation is not None
    rows = relation.rows_with_value("doe")
    assert len(rows) == 2
    # All intermediate ids are stored in separate columns.
    assert all(len(row) == 5 for row in rows)  # 4 ids + value
    assert asr.relation_for(("missing",)) is None


def test_asr_relations_matching_charges_per_relation(book_xmldb):
    stats = StatsCollector()
    asr = AccessSupportRelationsIndex(stats=stats).build(book_xmldb)
    stats.reset()
    pattern = PathPattern((("book",), ("title",)), anchored=True)
    matching = asr.relations_matching(pattern)
    assert len(matching) == 2
    assert stats.heap_page_reads >= 2 * asr.RELATION_OPEN_COST


# ----------------------------------------------------------------------
# Join Indices
# ----------------------------------------------------------------------
def test_join_index_forward_and_backward_lookups(book_xmldb):
    ji = JoinIndicesIndex(stats=StatsCollector()).build(book_xmldb)
    relation = ji.relation_for(("author", "fn"))
    assert relation is not None
    heads = relation.heads_for_value("jane")
    assert len(heads) == 2
    assert all(book_xmldb.node(h).label == "author" for h in heads)
    pairs = relation.backward_pairs_for_value("jane")
    assert all(book_xmldb.node(t).label == "fn" for _h, t in pairs)
    tails = relation.tails_for_head(heads[0])
    assert any(value == "jane" for _tail, value in tails)
    assert len(relation.all_pairs()) == relation.pair_count


def test_join_index_has_more_relations_and_space_than_asr(book_xmldb):
    asr = AccessSupportRelationsIndex(stats=StatsCollector()).build(book_xmldb)
    ji = JoinIndicesIndex(stats=StatsCollector()).build(book_xmldb)
    assert ji.relation_count >= asr.relation_count
    assert ji.estimated_size_bytes() > asr.estimated_size_bytes()


# ----------------------------------------------------------------------
# Registry and size sanity across the family
# ----------------------------------------------------------------------
def test_registry_contains_all_family_members():
    assert set(INDEX_TYPES) == {
        "rootpaths",
        "datapaths",
        "edge",
        "dataguide",
        "index_fabric",
        "asr",
        "join_index",
    }


def test_every_index_reports_positive_size(book_xmldb):
    for name, index_class in INDEX_TYPES.items():
        index = index_class(stats=StatsCollector()).build(book_xmldb)
        assert index.is_built
        assert index.estimated_size_bytes() > 0, name
        assert index.estimated_size_mb() == pytest.approx(
            index.estimated_size_bytes() / (1024 * 1024)
        )
