"""Replica-set unit tests: write-through, pickers, merged accounting.

A :class:`~repro.shard.replica.ReplicatedShard` must be
indistinguishable from a plain shard to the collection above it: every
replica holds the same documents with the same node ids (write-through
with cloned trees), any replica answers any read (the picker's choice
cannot change the answer), and the shard's cost/cache reports fold all
replicas together through the one aggregation path
(:meth:`~repro.storage.stats.StatsCollector.merge`).
"""

from __future__ import annotations

import pytest

from repro import ShardedQueryService
from repro.datasets import book_document, generate_xmark
from repro.errors import DocumentError
from repro.shard import (
    LeastLoadedPicker,
    READ_PICKERS,
    ReplicatedShard,
    RoundRobinPicker,
    StickyPicker,
    make_picker,
)
from repro.storage.stats import sum_snapshots


def _doc(i: int, scale: float = 0.01):
    return generate_xmark(scale=scale, seed=700 + i, name=f"doc-{i}")


def _replicated(replicas: int = 3, picker: str = "round_robin") -> ReplicatedShard:
    shard = ReplicatedShard(0, replicas=replicas, read_picker=picker)
    for i in range(2):
        shard.add_document(_doc(i))
    shard.build_index("rootpaths")
    return shard


# ----------------------------------------------------------------------
# Pickers
# ----------------------------------------------------------------------
def test_picker_registry_and_unknown_names():
    assert set(READ_PICKERS) == {"round_robin", "least_loaded", "sticky"}
    assert isinstance(make_picker("round_robin"), RoundRobinPicker)
    assert isinstance(make_picker("least_loaded"), LeastLoadedPicker)
    sticky = StickyPicker()
    assert make_picker(sticky) is sticky
    with pytest.raises(DocumentError):
        make_picker("random")


def test_round_robin_cycles_and_sticky_pins():
    round_robin = RoundRobinPicker()
    assert [round_robin.pick([0, 0, 0], "q") for _ in range(6)] == [0, 1, 2, 0, 1, 2]
    sticky = StickyPicker()
    picks = {sticky.pick([0, 0, 0], f"query-{i}") for i in range(20)}
    assert picks <= {0, 1, 2} and len(picks) > 1  # spreads across replicas
    assert all(
        sticky.pick([0, 0, 0], "the same query") == sticky.pick([0, 0, 0], "the same query")
        for _ in range(5)
    )


def test_least_loaded_prefers_idle_replicas_lowest_index_ties():
    picker = LeastLoadedPicker()
    assert picker.pick([0, 0, 0], "q") == 0
    assert picker.pick([2, 1, 1], "q") == 1
    assert picker.pick([1, 2, 0], "q") == 2


# ----------------------------------------------------------------------
# Write-through and read fan-out
# ----------------------------------------------------------------------
def test_write_through_keeps_replicas_identical():
    shard = _replicated()
    watermarks = {replica.watermark for replica in shard.replicas}
    assert len(watermarks) == 1
    xpath = "/site/people/person/name"
    twig_answers = {
        tuple(replica.service.execute(xpath, strategy="rootpaths").ids)
        for replica in shard.replicas
    }
    assert len(twig_answers) == 1
    # Every replica built the index.
    assert all("rootpaths" in replica.engine.indexes for replica in shard.replicas)
    # Documents are clones, never shared trees.
    roots = {id(replica.db.documents[0].root) for replica in shard.replicas}
    assert len(roots) == len(shard.replicas)


def test_remove_document_removes_the_same_span_everywhere():
    shard = _replicated()
    before = shard.watermark
    shard.remove_document("doc-0")
    assert all(replica.document_count == 1 for replica in shard.replicas)
    assert all(replica.watermark == before for replica in shard.replicas)
    xpath = "/site/people/person/name"
    answers = {
        tuple(replica.service.execute(xpath, strategy="rootpaths").ids)
        for replica in shard.replicas
    }
    assert len(answers) == 1


def test_reads_fan_out_and_are_counted():
    shard = _replicated(replicas=3, picker="round_robin")
    xpath = "/site/people/person/name"
    expected = shard.replicas[0].service.execute(xpath, strategy="rootpaths").ids
    for _ in range(6):
        assert shard.execute(xpath, strategy="rootpaths").ids == expected
    assert shard.replica_reads == [2, 2, 2]


def test_replica_stats_merge_through_the_one_aggregation_path():
    shard = _replicated()
    merged = shard.stats_snapshot()
    assert merged == sum_snapshots(
        *(replica.stats.snapshot() for replica in shard.replicas)
    )
    before = shard.stats_snapshot()
    shard.execute("/site/people/person/name", use_result_cache=False)
    diff = shard.stats_diff(before)
    assert sum(diff.values()) > 0  # one replica's work shows in the fold


def test_service_report_sums_counters_and_keeps_configuration():
    shard = _replicated()
    xpath = "/site/people/person/name"
    for _ in range(3):
        shard.execute(xpath)
    report = shard.service_report()
    per_replica = [replica.service.describe() for replica in shard.replicas]
    assert report["result_cache"]["misses"] == sum(
        r["result_cache"]["misses"] for r in per_replica
    )
    assert report["maintenance"]["documents_added"] == sum(
        r["maintenance"]["documents_added"] for r in per_replica
    )
    # Configuration keys are not summed across replicas.
    assert report["result_cache"]["max_size"] == (
        per_replica[0]["result_cache"]["max_size"]
    )
    describe = shard.describe()
    assert describe["replicas"] == 3
    assert describe["read_picker"] == "round_robin"
    assert len(describe["replica_reads"]) == 3


def test_replicated_collection_write_amplification_is_priced():
    # The same corpus on 1 vs 3 replicas: maintenance work (index
    # builds + incremental adds) triples in the merged snapshot — the
    # honest cost of write-through replication.
    def maintenance(replicas: int) -> int:
        service = ShardedQueryService(
            num_shards=1, placement="hash", replicas=replicas
        )
        service.add_document(_doc(0))
        service.build_index("rootpaths")
        service.add_document(_doc(1))
        snapshot = service.collection.shards[0].stats_snapshot()
        service.close()
        return snapshot["btree_writes"]

    single = maintenance(1)
    triple = maintenance(3)
    assert single > 0
    assert triple == 3 * single


def test_replica_validation():
    with pytest.raises(ValueError):
        ReplicatedShard(0, replicas=0)
    with pytest.raises(ValueError):
        ShardedQueryService(num_shards=2, replicas=0)
    shard = ReplicatedShard(0, replicas=2)
    shard.add_document(book_document())
    assert shard.replica_count == 2
    assert shard.document_count == 1
