"""Property tests pinning the columnar kernels.

Three pins:

* the batch codecs and merge/gallop kernels agree with tiny obvious
  oracles (nested loops, set operations) on random inputs;
* the path interner hands out stable ids across document churn, so
  placement caches keyed by path id survive rebuilds;
* kernels-on and kernels-off executions return bit-identical answers
  *and* bit-identical cost counters for every strategy — the kernels
  are a pure encoding change, not a cost-model change.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import TwigIndexDatabase
from repro.kernels.columns import (
    NodeColumns,
    PathInterner,
    decode_id_column,
    encode_id_column,
)
from repro.kernels.filter import (
    filter_has_descendant,
    gallop_leftmost,
    intersect_sorted,
)
from repro.kernels.join import structural_join
from repro.planner import DEFAULT_STRATEGIES
from repro.query.match import ColumnarMatcher, NaiveMatcher
from repro.workloads import (
    max_fanout_star,
    random_corpus,
    random_document,
    random_twig_xpath,
    self_nested_chain,
)


# ----------------------------------------------------------------------
# Codec round-trips
# ----------------------------------------------------------------------
@given(st.lists(st.integers(min_value=-(2**40), max_value=2**40)))
@settings(max_examples=50, deadline=None)
def test_id_column_codec_round_trip(values):
    assert list(decode_id_column(encode_id_column(values))) == values


def test_node_columns_ids_match_preorder(book_xmldb):
    columns = NodeColumns(book_xmldb)
    ids = list(columns.ids)
    assert ids == sorted(ids)
    expected = sorted(
        node.node_id
        for document in book_xmldb.documents
        for node in document.root.iter_subtree()
        if node.is_structural
    )
    assert ids == expected


# ----------------------------------------------------------------------
# Gallop / intersect against set oracles
# ----------------------------------------------------------------------
@given(
    st.lists(st.integers(min_value=0, max_value=200), unique=True),
    st.integers(min_value=-5, max_value=220),
)
@settings(max_examples=60, deadline=None)
def test_gallop_leftmost_matches_linear_scan(values, target):
    values.sort()
    expected = next(
        (i for i, v in enumerate(values) if v >= target), len(values)
    )
    assert gallop_leftmost(values, target) == expected


@given(
    st.lists(st.integers(min_value=0, max_value=100), unique=True),
    st.lists(st.integers(min_value=0, max_value=100), unique=True),
)
@settings(max_examples=60, deadline=None)
def test_intersect_sorted_matches_set_intersection(left, right):
    left.sort()
    right.sort()
    assert intersect_sorted(left, right) == sorted(set(left) & set(right))


# ----------------------------------------------------------------------
# Structural join and descendant filter against nested-loop oracles
# ----------------------------------------------------------------------
def _containment_oracle(ancestors, candidates, ids, ends):
    """The 10-line nested-loop definition the kernels must reproduce."""
    kept = []
    for candidate in candidates:
        for ancestor in ancestors:
            if ids[ancestor] < ids[candidate] <= ends[ancestor]:
                kept.append(candidate)
                break
    return kept


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5, 6, 7])
def test_structural_join_matches_nested_loop_oracle(seed):
    rng = random.Random(seed)
    db = TwigIndexDatabase()
    for document in random_corpus(rng, documents=2):
        db.add_document(document)
    columns = NodeColumns(db.db)
    ids, ends = columns.ids, columns.ends
    positions = range(len(columns))
    for _ in range(25):
        ancestors = sorted(rng.sample(positions, rng.randrange(0, len(columns))))
        candidates = sorted(rng.sample(positions, rng.randrange(0, len(columns))))
        expected = _containment_oracle(ancestors, candidates, ids, ends)
        assert structural_join(ancestors, candidates, ids, ends) == expected
        # filter_has_descendant is the transpose: ancestors that contain
        # at least one candidate.
        expected_bases = [
            b
            for b in ancestors
            if any(ids[b] < ids[c] <= ends[b] for c in candidates)
        ]
        assert (
            filter_has_descendant(ancestors, candidates, ids, ends)
            == expected_bases
        )


def test_structural_join_excludes_self_on_same_tag_chain():
    db = TwigIndexDatabase.from_documents([self_nested_chain(6, tag="a")])
    columns = NodeColumns(db.db)
    everyone = list(range(len(columns)))
    joined = structural_join(everyone, everyone, columns.ids, columns.ends)
    # Every node except the root has a proper ancestor; nobody matches
    # itself even though all intervals share one label.
    assert joined == everyone[1:]


# ----------------------------------------------------------------------
# Interner stability
# ----------------------------------------------------------------------
def test_path_interner_ids_are_stable():
    interner = PathInterner()
    first = interner.intern(("r", "a"))
    second = interner.intern(("r", "b"))
    assert interner.intern(("r", "a")) == first
    assert interner.id_of(("r", "b")) == second
    assert interner.path_of(first) == ("r", "a")
    assert len(interner) == 2


def test_strategy_interner_survives_rebuild_and_churn():
    rng = random.Random(11)
    db = TwigIndexDatabase()
    for document in random_corpus(rng, documents=2):
        db.add_document(document)
    db.build_index("rootpaths")
    strategy = db.engine.strategy("rootpaths")
    queries = [random_twig_xpath(rng, db.db.documents) for _ in range(10)]
    for xpath in queries:
        strategy.evaluate(db.parse(xpath))
    interner = strategy._interner
    before = {interner.path_of(pid): pid for pid in range(len(interner))}
    # Full index rebuild plus churn: interned ids must not move.
    db.add_document(random_document(rng, "later"))
    db.build_index("rootpaths")
    for xpath in queries:
        strategy.evaluate(db.parse(xpath))
    for path, pid in before.items():
        assert interner.id_of(path) == pid


# ----------------------------------------------------------------------
# Kernels on/off: identical answers AND identical cost counters
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [101, 202, 303])
def test_kernels_toggle_is_invisible_to_answers_and_counters(seed):
    rng = random.Random(seed)
    corpus = random_corpus(rng, documents=2)
    on = TwigIndexDatabase(use_kernels=True)
    off = TwigIndexDatabase(use_kernels=False)
    for document in corpus:
        on.add_document(document)
    for document in corpus:
        off.add_document(document)
    queries = [random_twig_xpath(rng, corpus) for _ in range(15)]
    for strategy in DEFAULT_STRATEGIES:
        for xpath in queries:
            a = on.query(xpath, strategy=strategy)
            b = off.query(xpath, strategy=strategy)
            assert a.ids == b.ids, f"{strategy} ids differ on {xpath}"
            assert a.cost == b.cost, f"{strategy} cost differs on {xpath}"
    for force in ("merge", "inl"):
        for xpath in queries:
            a = on.query(xpath, strategy="datapaths", force_plan=force)
            b = off.query(xpath, strategy="datapaths", force_plan=force)
            assert a.ids == b.ids
            assert a.cost == b.cost


# ----------------------------------------------------------------------
# Columnar matcher against the naive oracle
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [17, 29])
def test_columnar_matcher_agrees_with_naive(seed):
    rng = random.Random(seed)
    db = TwigIndexDatabase()
    for document in random_corpus(rng):
        db.add_document(document)
    db.add_document(max_fanout_star(12, name="star-2"))
    naive = NaiveMatcher(db.db)
    columnar = db.matcher(use_kernels=True)
    assert isinstance(columnar, ColumnarMatcher)
    for _ in range(40):
        twig = db.parse(random_twig_xpath(rng, db.db.documents))
        assert columnar.match_ids(twig) == naive.match_ids(twig)
