"""Incremental index maintenance: differential harness and regressions.

The tentpole invariant: for any sequence of document adds, a database
whose indexes are maintained **incrementally** (one
:meth:`~repro.indexes.base.PathIndex.update` per add) must answer every
query identically to a database whose indexes are **rebuilt from
scratch** after each add.  The harness replays randomized document
sequences against both databases and diffs the answers of every
strategy (and ``auto``) across a Figure-12-style generated workload.

Also pinned here:

* the stale-index regression — before the maintenance extension,
  ``add_document`` after ``build_index`` left every index answering
  from the pre-add snapshot,
* that incremental maintenance is charged in the maintenance-cost
  currency and is cheaper than a rebuild for a small delta document,
* which indexes maintain in place vs fall back to a rebuild.
"""

from __future__ import annotations

import random

import pytest

from repro import TwigIndexDatabase
from repro.datasets import book_document, generate_dblp, generate_xmark
from repro.planner import DEFAULT_STRATEGIES
from repro.service.service import AUTO_STRATEGY
from repro.storage.stats import maintenance_cost
from repro.workloads.generator import branch_count_sweep, generate_twig

#: Every index of the family, by registry name.
ALL_INDEXES = (
    "rootpaths",
    "datapaths",
    "edge",
    "dataguide",
    "index_fabric",
    "asr",
    "join_index",
)


def _workload() -> list[str]:
    """A Figure-12-style generated query workload (plus recursion)."""
    queries = [
        generated.xpath
        for selectivity in ("selective", "moderate", "unselective")
        for generated in branch_count_sweep(
            selectivity, max_branches=2 if selectivity == "moderate" else 3
        )
    ]
    queries.append(generate_twig(1, ["selective"], branch_depth="low").xpath)
    queries.extend(
        [
            "/site/people/person/name",
            "//person[name='Hagen Artosi']",
            "/site/open_auctions/open_auction/time",
        ]
    )
    return queries


def _document_sequence(seed: int) -> list[tuple[float, int]]:
    """Randomized (scale, seed) parameters for a grow-only sequence."""
    rng = random.Random(seed)
    return [
        (rng.choice([0.02, 0.03, 0.04]), rng.randrange(1, 10_000))
        for _ in range(3)
    ]


def _documents(parameters: list[tuple[float, int]]):
    """Fresh document objects (documents cannot be shared across DBs)."""
    return [
        generate_xmark(scale=scale, seed=seed, name=f"xmark-{position}")
        for position, (scale, seed) in enumerate(parameters)
    ]


@pytest.mark.parametrize("sequence_seed", [1, 2])
def test_incremental_equals_rebuild_on_randomized_add_sequences(sequence_seed):
    """The differential harness over every strategy including ``auto``."""
    parameters = _document_sequence(sequence_seed)
    workload = _workload()

    incremental_docs = _documents(parameters)
    rebuilt_docs = _documents(parameters)

    incremental = TwigIndexDatabase.from_documents([incremental_docs[0]])
    for name in ALL_INDEXES:
        incremental.build_index(name)

    for step in range(1, len(parameters) + 1):
        if step > 1:
            incremental.add_document(incremental_docs[step - 1])

        rebuilt = TwigIndexDatabase.from_documents(rebuilt_docs[:step])
        for name in ALL_INDEXES:
            rebuilt.build_index(name)

        for xpath in workload:
            expected = rebuilt.oracle(xpath)
            for strategy in DEFAULT_STRATEGIES + (AUTO_STRATEGY,):
                incremental_ids = incremental.query(xpath, strategy=strategy).ids
                rebuilt_ids = rebuilt.query(xpath, strategy=strategy).ids
                assert incremental_ids == rebuilt_ids == expected, (
                    f"step {step}, {strategy}, {xpath}: "
                    f"incremental={incremental_ids} rebuilt={rebuilt_ids} "
                    f"oracle={expected}"
                )


def test_add_document_after_build_index_is_not_stale():
    """Regression: built indexes used to answer from the pre-add snapshot.

    Before the maintenance extension this failed for every strategy —
    ``add_document`` went straight to the raw database and no built
    index saw the new document's nodes.
    """
    db = TwigIndexDatabase.from_documents([book_document()])
    for name in ALL_INDEXES:
        db.build_index(name)
    first_ids = db.query("/book/title", strategy="rootpaths").ids
    assert len(first_ids) == 1

    added = db.add_document(book_document(name="second-book"))
    new_title_id = next(
        node.node_id
        for node in added.iter_structural()
        if node.label == "title"
    )
    expected = db.oracle("/book/title")
    assert new_title_id in expected and len(expected) == 2
    for strategy in DEFAULT_STRATEGIES + (AUTO_STRATEGY,):
        ids = db.query(xpath := "/book/title", strategy=strategy).ids
        assert ids == expected, f"{strategy} still stale on {xpath}: {ids}"


def test_incremental_flags_match_the_documented_family():
    """RP/DP/Edge/DataGuide maintain in place; the rest rebuild."""
    db = TwigIndexDatabase.from_documents([book_document()])
    maintained = {}
    for name in ALL_INDEXES:
        db.build_index(name)
    report = db.engine.maintain_indexes(db.db.add_document(book_document(name="b2")))
    maintained.update(report)
    assert maintained == {
        "rootpaths": True,
        "datapaths": True,
        "edge": True,
        "dataguide": True,
        "index_fabric": False,
        "asr": False,
        "join_index": False,
    }


def test_incremental_update_preserves_catalog_statistics():
    """``value_counts`` after updates equals a from-scratch build's."""
    docs_a = [generate_dblp(scale=0.03, seed=5, name="d0"),
              generate_dblp(scale=0.02, seed=9, name="d1")]
    docs_b = [generate_dblp(scale=0.03, seed=5, name="d0"),
              generate_dblp(scale=0.02, seed=9, name="d1")]

    incremental = TwigIndexDatabase.from_documents([docs_a[0]])
    incremental.build_index("rootpaths")
    incremental.build_index("datapaths")
    incremental.add_document(docs_a[1])

    rebuilt = TwigIndexDatabase.from_documents(docs_b)
    rebuilt.build_index("rootpaths")
    rebuilt.build_index("datapaths")

    for name in ("rootpaths", "datapaths"):
        left, right = incremental.indexes[name], rebuilt.indexes[name]
        assert left.entry_count == right.entry_count, name
        assert left.value_counts == right.value_counts, name


def test_incremental_add_is_cheaper_than_rebuild_in_maintenance_currency():
    """Grow-by-one: update() charges less than building from scratch."""
    base = generate_xmark(scale=0.05, seed=7, name="base")
    delta = generate_xmark(scale=0.01, seed=42, name="delta")

    db = TwigIndexDatabase.from_documents([base])
    for name in ("rootpaths", "datapaths", "edge", "dataguide"):
        db.build_index(name)
    build_cost = maintenance_cost(db.stats.snapshot())
    assert build_cost > 0  # builds charge page writes now

    before = db.stats.snapshot()
    db.add_document(delta)
    update_cost = maintenance_cost(db.stats.diff(before))
    assert 0 < update_cost < build_cost, (update_cost, build_cost)


def test_update_on_unbuilt_index_raises():
    from repro.errors import IndexNotBuiltError
    from repro.indexes import RootPathsIndex

    db = TwigIndexDatabase.from_documents([book_document()])
    index = RootPathsIndex()
    with pytest.raises(IndexNotBuiltError):
        index.update(db.db, db.db.documents[0])
