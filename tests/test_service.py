"""Service layer: LRU caches, strategy reuse, auto plans, batch execution."""

from __future__ import annotations

import pytest

from repro import TwigIndexDatabase
from repro.datasets import book_document
from repro.errors import PlanningError
from repro.planner import DEFAULT_STRATEGIES
from repro.service import LRUCache, QueryService
from repro.service.service import AUTO_STRATEGY


# ----------------------------------------------------------------------
# LRUCache
# ----------------------------------------------------------------------
def test_lru_cache_hit_miss_and_eviction():
    cache = LRUCache(2)
    assert cache.get("a") is None and cache.misses == 1
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1  # refreshes 'a'
    cache.put("c", 3)  # evicts 'b' (least recently used)
    assert "b" not in cache and "a" in cache and "c" in cache
    assert cache.evictions == 1
    assert cache.hits == 1 and cache.misses == 1
    assert 0.0 < cache.hit_rate < 1.0
    cache.clear()
    assert len(cache) == 0


def test_lru_cache_size_zero_disables_caching():
    cache = LRUCache(0)
    cache.put("a", 1)
    assert cache.get("a") is None
    assert len(cache) == 0


def test_lru_cache_rejects_negative_size():
    with pytest.raises(ValueError):
        LRUCache(-1)


# ----------------------------------------------------------------------
# QueryService
# ----------------------------------------------------------------------
@pytest.fixture()
def service_db() -> TwigIndexDatabase:
    return TwigIndexDatabase.from_documents([book_document()])


def test_plan_cache_shares_parsed_twigs(service_db):
    service = service_db.service
    first = service.plan("/book/title")
    again = service.plan("  /book/title ")  # normalised to the same key
    assert again is first
    assert service.plan_cache.hits == 1 and service.plan_cache.misses == 1


def test_execute_results_match_engine_and_oracle(service_db):
    expected = service_db.oracle("/book//author[fn='jane']")
    for strategy in ("rootpaths", "datapaths", AUTO_STRATEGY):
        result = service_db.service.execute(
            "/book//author[fn='jane']", strategy=strategy
        )
        assert result.ids == expected, strategy


def test_result_cache_serves_repeats_without_new_work(service_db):
    service = service_db.service
    first = service.execute("/book/title", strategy="rootpaths")
    assert not first.cached
    before = service_db.stats.snapshot()
    repeat = service.execute("/book/title", strategy="rootpaths")
    assert repeat.cached
    assert repeat.ids == first.ids
    # The cached answer charged no logical work at all.
    assert all(value == 0 for value in service_db.stats.diff(before).values())
    # Mutating a cached answer must not poison the cache.
    repeat.ids.append(999)
    assert service.execute("/book/title", strategy="rootpaths").ids == first.ids


def test_result_cache_is_immune_to_caller_mutation(service_db):
    # Regression: the miss path used to cache the very object it
    # returned, so mutating a fresh result poisoned every later hit.
    service = service_db.service
    first = service.execute("/book/title")
    expected = list(first.ids)
    first.ids.append(999)  # the miss-path result is caller-owned
    hit = service.execute("/book/title")
    assert hit.cached and hit.ids == expected
    hit.ids.append(777)  # the hit-path result too
    assert service.execute("/book/title").ids == expected


def test_options_key_handles_unhashable_values():
    # Regression: the guard built the tuple without hashing it, so
    # unhashable option values crashed later at the cache lookup.
    assert QueryService._options_key("s", {"opt": [1, 2]}) is None
    assert QueryService._options_key("s", {"opt": "x"}) == ("s", (("opt", "x"),))


def test_auto_executes_the_costed_datapaths_plan(service_db):
    # The estimate prices a specific DATAPATHS plan; execution must run
    # that plan, not re-choose with the flat paper probe charge.
    service_db.build_index("datapaths")  # restricts auto to datapaths
    service = service_db.service
    xpath = "/book[title='XML']//author[fn='jane']"
    result = service.execute(xpath, strategy=AUTO_STRATEGY)
    choice = service.last_choice
    assert choice is not None and choice.strategy == "datapaths"
    assert choice.datapaths_plan is not None
    runner = service.strategy_instance(
        "datapaths", force_plan=choice.datapaths_plan.plan
    )
    assert runner.last_plan is not None
    assert runner.last_plan.plan == choice.datapaths_plan.plan
    assert result.ids == service_db.oracle(xpath)


def test_result_cache_can_be_bypassed(service_db):
    service = service_db.service
    service.execute("/book/title")
    result = service.execute("/book/title", use_result_cache=False)
    assert not result.cached


def test_add_document_invalidates_cached_results(service_db):
    service = service_db.service
    service.execute("/book/title")
    assert len(service.result_cache) == 1
    service_db.add_document(book_document())
    assert len(service.result_cache) == 0
    service_db.build_index("rootpaths")  # rebuild over both documents
    result = service.execute("/book/title")
    assert not result.cached
    assert result.ids == service_db.oracle("/book/title")
    assert len(result.ids) == 2


def test_out_of_band_document_add_is_detected(service_db):
    # Mutations that bypass the facade (and its explicit invalidate())
    # are caught by the generation fingerprint on the next execute.
    service = service_db.service
    service.execute("/book/title")
    service_db.db.add_document(book_document())
    service_db.engine.build_index("rootpaths")
    result = service.execute("/book/title")
    assert not result.cached
    assert len(result.ids) == 2


def test_strategy_instances_are_reused(service_db):
    service = service_db.service
    runner = service.strategy_instance("rootpaths")
    assert service.strategy_instance("rootpaths") is runner
    forced = service.strategy_instance("datapaths", force_plan="merge")
    assert service.strategy_instance("datapaths", force_plan="merge") is forced
    assert service.strategy_instance("datapaths", force_plan="inl") is not forced


def test_auto_uses_first_candidate_when_nothing_is_built(service_db):
    service = service_db.service
    result = service.execute("/book/title", strategy=AUTO_STRATEGY)
    assert result.strategy == "rootpaths"
    assert "rootpaths" in service_db.indexes
    assert "datapaths" not in service_db.indexes  # auto never force-builds


def test_auto_restricted_to_built_indexes(service_db):
    service_db.build_index("datapaths")
    choice = service_db.service.choose("/book/title")
    assert choice.strategy == "datapaths"
    assert set(choice.costs) == {"datapaths"}


def test_auto_choice_counts_are_recorded(service_db):
    service = service_db.service
    service.execute("/book/title", strategy=AUTO_STRATEGY, use_result_cache=False)
    service.execute("/book/title", strategy=AUTO_STRATEGY, use_result_cache=False)
    assert service.auto_choice_counts == {"rootpaths": 2}
    assert service.last_choice is not None
    assert service.last_choice.strategy == "rootpaths"


def test_unknown_auto_candidate_is_rejected(service_db):
    with pytest.raises(ValueError):
        QueryService(service_db.engine, auto_candidates=("nope",))


def test_auto_without_catalog_never_builds_one(service_db):
    # A lone candidate without estimate_matches statistics wins outright;
    # ROOTPATHS must not be built behind the caller's back just for stats.
    service = QueryService(service_db.engine, auto_candidates=("edge",))
    result = service.execute("/book/title", strategy=AUTO_STRATEGY)
    assert result.strategy == "edge"
    assert result.ids == service_db.oracle("/book/title")
    assert "rootpaths" not in service_db.indexes


def test_auto_ranking_without_catalog_raises(service_db):
    service = QueryService(service_db.engine, auto_candidates=("edge", "asr"))
    service_db.build_index("edge")
    service_db.build_index("asr")
    with pytest.raises(PlanningError, match="catalog statistics"):
        service.execute("/book/title", strategy=AUTO_STRATEGY)


def test_auto_choices_are_memoised_per_generation(service_db):
    service = service_db.service
    service.execute("/book/title", strategy=AUTO_STRATEGY, use_result_cache=False)
    assert service.choice_cache.misses == 1
    service.execute("/book/title", strategy=AUTO_STRATEGY, use_result_cache=False)
    assert service.choice_cache.hits == 1 and len(service.choice_cache) == 1
    service_db.add_document(book_document())
    assert len(service.choice_cache) == 0  # flushed with the generation


def test_incremental_add_keeps_plans_and_strategies_drops_results(service_db):
    # Generation semantics: an add maintained incrementally invalidates
    # answers (result + choice caches) but not plans or strategy
    # instances — an add changes answers, not query plans.
    service = service_db.service
    service_db.build_index("rootpaths")
    service.execute("/book/title")
    plan = service.plan("/book/title")
    runner = service.strategy_instance("rootpaths")
    assert len(service.result_cache) == 1

    service_db.add_document(book_document(name="b2"))
    assert len(service.result_cache) == 0
    assert service.plan("/book/title") is plan  # plan cache survived
    assert service.strategy_instance("rootpaths") is runner
    assert service.result_invalidations == 1
    assert service.full_invalidations >= 1  # the explicit build above


def test_rebuild_invalidates_everything(service_db):
    service = service_db.service
    service_db.build_index("rootpaths")
    service.execute("/book/title")
    plan = service.plan("/book/title")
    runner = service.strategy_instance("rootpaths")
    full_before = service.full_invalidations

    service_db.build_index("rootpaths")
    assert len(service.result_cache) == 0
    assert len(service.plan_cache) == 0
    assert service.plan("/book/title") is not plan
    assert service.strategy_instance("rootpaths") is not runner
    assert service.full_invalidations == full_before + 1


def test_out_of_band_incremental_add_detected_as_result_invalidation(service_db):
    # engine.add_document bypasses the facade's invalidate(); the
    # generation fingerprint must classify it as incremental (plans
    # kept) rather than flushing everything.
    service = service_db.service
    service_db.build_index("rootpaths")
    service.execute("/book/title")
    plan = service.plan("/book/title")
    result_before = service.result_invalidations

    service_db.engine.add_document(book_document(name="b2"))
    result = service.execute("/book/title")
    assert not result.cached
    assert result.ids == service_db.oracle("/book/title")
    assert len(result.ids) == 2
    assert service.plan("/book/title") is plan
    assert service.result_invalidations == result_before + 1


def test_add_after_out_of_band_rebuild_escalates_to_full_flush(service_db):
    # An index rebuilt behind the service's back must not be absorbed
    # by the weaker add-document invalidation: the unobserved
    # build_count move escalates invalidate(rebuilt=False) to a full
    # flush, honouring the rebuild contract.
    service = service_db.service
    service_db.build_index("rootpaths")
    service.execute("/book/title")
    plan = service.plan("/book/title")
    full_before = service.full_invalidations

    service_db.engine.build_index("rootpaths")  # out-of-band rebuild
    service_db.add_document(book_document(name="b2"))
    assert service.full_invalidations == full_before + 1
    assert len(service.plan_cache) == 0
    assert service.plan("/book/title") is not plan


def test_execute_batch_correct_across_interleaved_adds(service_db):
    queries = ["/book/title", "//author[fn='jane']"]
    service_db.build_index("rootpaths")
    first = service_db.execute_batch(queries + queries)
    assert first.cache_hits == 2 and first.cache_misses == 2

    service_db.add_document(book_document(name="b2"))
    second = service_db.execute_batch(queries + queries)
    # Nothing may be served from the pre-add cache...
    assert second.cache_misses == 2 and second.cache_hits == 2
    # ...and every answer reflects the post-add database.
    for result in second:
        assert result.ids == service_db.oracle(result.xpath), result.xpath
    # Two books: 2 titles, and 2 jane-authors per book.
    assert [len(result.ids) for result in second] == [2, 4, 2, 4]


def test_execute_batch_shares_stats_and_counts_hits(service_db):
    queries = ["/book/title", "//author[fn='jane']", "/book/title", "/book/title"]
    batch = service_db.execute_batch(queries)
    assert [result.ids for result in batch] == [
        service_db.oracle(xpath) for xpath in queries
    ]
    assert batch.cache_misses == 2 and batch.cache_hits == 2
    assert len(batch) == 4
    assert sum(batch.strategy_counts.values()) == 4
    # The shared snapshot prices only the uncached executions.
    uncached_cost = sum(
        result.total_cost for result in batch.results if not result.cached
    )
    assert batch.total_cost == uncached_cost


def test_facade_query_auto_routes_through_service(service_db):
    result = service_db.query("/book/title", strategy=AUTO_STRATEGY)
    assert result.strategy in DEFAULT_STRATEGIES
    assert result.ids == service_db.oracle("/book/title")
    # query() never serves cached results, so benchmarks stay honest.
    assert not service_db.query("/book/title", strategy=AUTO_STRATEGY).cached


def test_describe_reports_cache_counters(service_db):
    service_db.execute_batch(["/book/title", "/book/title"])
    report = service_db.service.describe()
    assert report["result_cache"]["hits"] == 1
    assert report["plan_cache"]["misses"] == 1
    assert report["auto_choice_counts"] == {"rootpaths": 1}


# ----------------------------------------------------------------------
# TTL admission policy
# ----------------------------------------------------------------------
class FakeClock:
    """A manually advanced monotonic clock for TTL tests."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def test_lru_cache_ttl_expires_entries_lazily():
    clock = FakeClock()
    cache = LRUCache(4, ttl_seconds=10.0, clock=clock)
    cache.put("a", 1)
    clock.advance(9.999)
    assert cache.get("a") == 1 and "a" in cache
    clock.advance(0.001)  # exactly at the deadline: expired
    assert "a" not in cache
    assert cache.get("a") is None
    assert cache.expiries == 1 and cache.evictions == 0
    assert cache.misses == 1 and cache.hits == 1
    assert len(cache) == 0  # the expired entry was dropped, not kept


def test_lru_cache_ttl_restarts_on_refresh_and_reports_in_describe():
    clock = FakeClock()
    cache = LRUCache(4, ttl_seconds=10.0, clock=clock)
    cache.put("a", 1)
    clock.advance(8.0)
    cache.put("a", 2)  # refresh restarts the deadline
    clock.advance(8.0)
    assert cache.get("a") == 2
    report = cache.describe()
    assert report["ttl_seconds"] == 10.0
    assert report["expiries"] == 0 and report["evictions"] == 0
    clock.advance(10.0)
    assert cache.get("a") is None
    assert cache.describe()["expiries"] == 1


def test_lru_cache_rejects_non_positive_ttl():
    with pytest.raises(ValueError):
        LRUCache(4, ttl_seconds=0)
    with pytest.raises(ValueError):
        LRUCache(4, ttl_seconds=-1.5)


def test_service_result_cache_ttl_expires_cached_answers(service_db):
    clock = FakeClock()
    service = service_db.service
    service.result_cache = LRUCache(1024, ttl_seconds=30.0, clock=clock)
    service_db.build_index("rootpaths")

    assert not service.execute("/book/title").cached
    assert service.execute("/book/title").cached  # within TTL
    clock.advance(31.0)
    expired = service.execute("/book/title")  # past TTL: re-executed
    assert not expired.cached
    assert expired.ids == service_db.oracle("/book/title")
    report = service.describe()
    assert report["result_cache"]["expiries"] == 1
    assert report["result_cache"]["ttl_seconds"] == 30.0


def test_query_service_accepts_result_cache_ttl_parameter(service_db):
    service = QueryService(service_db.engine, result_cache_ttl=60.0)
    assert service.result_cache.ttl_seconds == 60.0
    # The no-TTL default keeps entries indefinitely.
    assert service_db.service.result_cache.ttl_seconds is None
