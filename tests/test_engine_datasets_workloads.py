"""Tests for the TwigIndexDatabase facade, the dataset generators,
the workload catalog and the benchmark harness."""

import pytest

from repro import DEFAULT_STRATEGIES, TwigIndexDatabase, parse_xpath
from repro.bench import compare_strategies, format_table, get_context, measurement_table, size_table, speedup
from repro.datasets import (
    BOOK_XML,
    REGIONS,
    book_document,
    generate_dblp,
    generate_xmark,
)
from repro.errors import PlanningError
from repro.query import NaiveMatcher
from repro.workloads import (
    ALL_QUERIES,
    branch_count_sweep,
    generate_twig,
    make_recursive,
    queries_for_dataset,
    queries_for_figure,
    query,
)


# ----------------------------------------------------------------------
# Engine facade
# ----------------------------------------------------------------------
def test_from_xml_and_query(book_db):
    db = TwigIndexDatabase.from_xml(BOOK_XML, name="book")
    result = db.query("/book/title", strategy="rootpaths")
    assert result.cardinality == 1
    assert db.node(result.ids[0]).label == "title"
    assert result.elapsed_seconds >= 0
    assert result.logical_io > 0
    assert result.total_cost >= result.logical_io


def test_engine_builds_indexes_on_demand(book_db):
    assert book_db.indexes == {}
    book_db.query("/book/title", strategy="datapaths")
    assert "datapaths" in book_db.indexes
    book_db.query("/book/title", strategy="dataguide_edge")
    assert {"dataguide", "edge"} <= set(book_db.indexes)


def test_on_demand_rebuilds_reuse_recorded_index_options(book_db):
    # Regression: ensure_indexes_for used to rebuild evicted indexes with
    # default options, silently dropping earlier build_index(**options).
    book_db.build_index("rootpaths", store_full_idlist=False)
    del book_db.engine.indexes["rootpaths"]
    book_db.engine.ensure_indexes_for("rootpaths")
    assert book_db.indexes["rootpaths"].store_full_idlist is False

    book_db.build_index("datapaths", schema_path_dictionary=True)
    del book_db.engine.indexes["datapaths"]
    book_db.engine.ensure_indexes_for("datapaths")
    assert book_db.indexes["datapaths"].schema_path_dictionary is True

    # An explicit rebuild with new options replaces the recorded ones.
    book_db.build_index("rootpaths", store_full_idlist=True)
    del book_db.engine.indexes["rootpaths"]
    book_db.engine.ensure_indexes_for("rootpaths")
    assert book_db.indexes["rootpaths"].store_full_idlist is True


def test_engine_unknown_strategy_and_index(book_db):
    with pytest.raises(PlanningError):
        book_db.query("/book", strategy="btree-of-dreams")
    with pytest.raises(PlanningError):
        book_db.build_index("nope")


def test_query_all_strategies_consistent(book_db):
    results = book_db.query_all_strategies("/book//author[ln='doe']")
    ids = {tuple(r.ids) for r in results.values()}
    assert len(ids) == 1
    assert set(results) == set(DEFAULT_STRATEGIES)


def test_describe_and_sizes(book_db):
    info = book_db.describe()
    assert info["documents"] == 1
    assert info["structural_nodes"] == 17
    assert info["distinct_schema_paths"] == 11
    book_db.build_index("rootpaths")
    sizes = book_db.index_sizes_mb()
    assert sizes["rootpaths"] > 0


def test_parse_and_matcher_helpers(book_db):
    twig = book_db.parse("/book/title")
    assert twig.output.label == "title"
    assert isinstance(book_db.matcher(), NaiveMatcher)
    assert book_db.oracle(twig) == book_db.query(twig, strategy="rootpaths").ids


# ----------------------------------------------------------------------
# Dataset generators
# ----------------------------------------------------------------------
def test_xmark_generator_is_deterministic():
    a = generate_xmark(scale=0.05, seed=11)
    b = generate_xmark(scale=0.05, seed=11)
    assert [n.label for n in a.root.iter_subtree()] == [n.label for n in b.root.iter_subtree()]
    c = generate_xmark(scale=0.05, seed=12)
    assert [n.label for n in a.root.iter_subtree()] != [n.label for n in c.root.iter_subtree()]


def test_xmark_has_expected_shape_and_planted_values():
    document = generate_xmark(scale=0.08, seed=5)
    db = TwigIndexDatabase.from_documents([document])
    matcher = db.matcher()
    assert [c.label for c in document.root.structural_children()] == [
        "regions",
        "people",
        "open_auctions",
    ]
    regions = document.root.structural_children()[0]
    assert [r.label for r in regions.structural_children()] == [name for name, _ in REGIONS]
    # Planted selective values exist exactly once (or thrice for person22082).
    assert matcher.count_matches(parse_xpath("//quantity[.='5']")) == 1
    assert matcher.count_matches(parse_xpath("//person[profile/@income='46814.17']")) == 1
    assert matcher.count_matches(parse_xpath("//person[name='Hagen Artosi']")) == 1
    assert matcher.count_matches(parse_xpath("//open_auction[annotation/author/@person='person22082']")) == 3
    # Selectivity ordering of the quantity classes (Q1x < Q2x < Q3x).
    q1 = matcher.count_matches(parse_xpath("/site/regions/namerica/item/quantity[.='5']"))
    q2 = matcher.count_matches(parse_xpath("/site/regions/namerica/item/quantity[.='2']"))
    q3 = matcher.count_matches(parse_xpath("/site/regions/namerica/item/quantity[.='1']"))
    assert q1 < q2 < q3
    # '//item' reaches six region paths.
    from repro.paths import PathPattern, distinct_schema_paths, matching_schema_paths

    item_paths = matching_schema_paths(
        PathPattern((("site",), ("item",)), anchored=True), distinct_schema_paths(db.db)
    )
    assert len(item_paths) == 6


def test_dblp_generator_shape_and_selectivities():
    document = generate_dblp(scale=0.08, seed=5)
    db = TwigIndexDatabase.from_documents([document])
    matcher = db.matcher()
    assert document.root.label == "dblp"
    q1 = matcher.count_matches(parse_xpath("/dblp/inproceedings/year[.='1950']"))
    q2 = matcher.count_matches(parse_xpath("/dblp/inproceedings/year[.='1979']"))
    q3 = matcher.count_matches(parse_xpath("/dblp/inproceedings/year[.='1998']"))
    assert q1 == 1 and q1 < q2 < q3
    # DBLP is shallow, XMark is deep.
    assert db.db.max_depth <= 3
    xmark_db = TwigIndexDatabase.from_documents([generate_xmark(scale=0.05, seed=5)])
    assert xmark_db.db.max_depth > db.db.max_depth


def test_book_document_matches_figure_1():
    document = book_document()
    labels = [n.label for n in document.root.iter_subtree() if n.is_structural]
    assert labels.count("author") == 3
    assert labels.count("title") == 2


# ----------------------------------------------------------------------
# Workload catalog and generator
# ----------------------------------------------------------------------
def test_workload_catalog_covers_paper_figures():
    assert len(queries_for_dataset("dblp")) == 3
    assert {q.qid for q in queries_for_figure("fig12d")} == {"Q10x", "Q11x"}
    assert {q.qid for q in queries_for_figure("fig13a")} == {"Q12x", "Q13x"}
    q5 = query("Q5x")
    assert q5.branches == 3 and q5.branch_depth == "high"
    assert all(q.recursions == 1 for q in queries_for_figure("fig13a") + queries_for_figure("fig13b"))
    assert len({q.qid for q in ALL_QUERIES}) == len(ALL_QUERIES)


def test_workload_queries_parse_and_classify():
    for workload_query in ALL_QUERIES:
        twig = parse_xpath(workload_query.xpath)
        assert twig.branch_count == workload_query.branches, workload_query.qid
        assert twig.has_recursion == (workload_query.recursions > 0), workload_query.qid


def test_recursive_variant_adds_leading_descendant_axis():
    q4 = query("Q4x")
    variant = q4.recursive_variant()
    assert variant.startswith("//site")
    assert make_recursive("/site/a") == "//site/a"
    assert make_recursive("//site/a") == "//site/a"


def test_generate_twig_and_sweep():
    generated = generate_twig(2, ["selective", "unselective"], branch_depth="high")
    twig = parse_xpath(generated.xpath)
    assert twig.branch_count == 2
    sweep = branch_count_sweep("unselective", max_branches=3)
    assert [g.branches for g in sweep] == [1, 2, 3]
    with pytest.raises(Exception):
        generate_twig(2, ["selective"])


# ----------------------------------------------------------------------
# Benchmark harness
# ----------------------------------------------------------------------
def test_bench_context_and_measurements():
    context = get_context("xmark", scale=0.05, seed=3)
    assert get_context("xmark", scale=0.05, seed=3) is context  # cached
    measurements = compare_strategies(context, query("Q1x"), strategies=("rootpaths", "datapaths"))
    assert set(measurements) == {"rootpaths", "datapaths"}
    for measurement in measurements.values():
        assert measurement.correct
        assert measurement.total_cost > 0
    table = measurement_table({"Q1x": measurements}, metric="total_cost", title="t")
    assert "Q1x" in table and "RP" in table
    assert speedup(measurements["rootpaths"], measurements["datapaths"]) > 0
    sizes = size_table({"xmark": {"RP": 1.0, "DP": 2.0}})
    assert "xmark" in sizes
    assert "a  b" in format_table(("a", "b"), [("1", "2")])
