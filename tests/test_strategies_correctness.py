"""Integration tests: every evaluation strategy must agree with the oracle.

This is the core correctness property of the reproduction — Section 2.1
defines what a twig match is; the naive matcher implements it directly;
and each of the seven index-based strategies must return exactly the
same output-node ids on every query it supports.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import TwigIndexDatabase
from repro.datasets import FIGURE_1_QUERY, book_document
from repro.planner import DEFAULT_STRATEGIES
from repro.workloads import (
    branch_count_sweep,
    clone_document,
    generate_twig,
    max_fanout_star,
    queries_for_dataset,
    random_corpus,
    random_twig_xpath,
    self_nested_chain,
)
from repro.xmltree import Document, Node, NodeKind

BOOK_QUERIES = [
    FIGURE_1_QUERY,
    "/book/title",
    "/book//title",
    "//author[fn='jane']",
    "//author[fn='jane' and ln='doe']",
    "/book/allauthors/author[ln='doe']",
    "/book[title='XML']/year",
    "/book[allauthors/author/fn='john']//section/head",
    "//chapter/section/head",
    "//ln",
    "/book",
    "/book[year='1999']",          # empty result
    "//author[fn='jane']/ln",
    "/book[title='XML'][chapter/title='XML']//author[ln='poe']",
]


@pytest.fixture(scope="module")
def book_engine():
    database = TwigIndexDatabase.from_documents([book_document()])
    database.build_all_indexes()
    return database


@pytest.mark.parametrize("xpath", BOOK_QUERIES)
@pytest.mark.parametrize("strategy", DEFAULT_STRATEGIES)
def test_book_queries_match_oracle(book_engine, strategy, xpath):
    expected = book_engine.oracle(xpath)
    result = book_engine.query(xpath, strategy=strategy)
    assert result.ids == expected, f"{strategy} disagrees on {xpath}"


@pytest.fixture(scope="module")
def xmark_engine():
    from repro.datasets import generate_xmark

    database = TwigIndexDatabase.from_documents([generate_xmark(scale=0.05, seed=3)])
    database.build_all_indexes()
    return database


@pytest.fixture(scope="module")
def dblp_engine():
    from repro.datasets import generate_dblp

    database = TwigIndexDatabase.from_documents([generate_dblp(scale=0.05, seed=3)])
    database.build_all_indexes()
    return database


@pytest.mark.parametrize("workload_query", queries_for_dataset("xmark"), ids=lambda q: q.qid)
@pytest.mark.parametrize("strategy", ("rootpaths", "datapaths", "asr", "join_index"))
def test_xmark_workload_matches_oracle(xmark_engine, strategy, workload_query):
    expected = xmark_engine.oracle(workload_query.xpath)
    result = xmark_engine.query(workload_query.xpath, strategy=strategy)
    assert result.ids == expected, f"{strategy} disagrees on {workload_query.qid}"


@pytest.mark.parametrize(
    "workload_query",
    [q for q in queries_for_dataset("xmark") if q.recursions == 0],
    ids=lambda q: q.qid,
)
@pytest.mark.parametrize("strategy", ("edge", "dataguide_edge", "index_fabric_edge"))
def test_xmark_nonrecursive_workload_edge_strategies(xmark_engine, strategy, workload_query):
    expected = xmark_engine.oracle(workload_query.xpath)
    result = xmark_engine.query(workload_query.xpath, strategy=strategy)
    assert result.ids == expected, f"{strategy} disagrees on {workload_query.qid}"


@pytest.mark.parametrize("workload_query", queries_for_dataset("dblp"), ids=lambda q: q.qid)
@pytest.mark.parametrize("strategy", DEFAULT_STRATEGIES)
def test_dblp_workload_matches_oracle(dblp_engine, strategy, workload_query):
    expected = dblp_engine.oracle(workload_query.xpath)
    result = dblp_engine.query(workload_query.xpath, strategy=strategy)
    assert result.ids == expected, f"{strategy} disagrees on {workload_query.qid}"


def _generated_workload() -> list[str]:
    """A sweep of the randomized workload generator's parameter space."""
    xpaths: list[str] = []
    for selectivity in ("selective", "moderate", "unselective"):
        xpaths.extend(
            generated.xpath for generated in branch_count_sweep(selectivity, max_branches=2)
        )
    xpaths.append(generate_twig(2, ["selective", "unselective"]).xpath)
    xpaths.append(generate_twig(3, ["selective", "moderate", "unselective"]).xpath)
    xpaths.extend(
        generated.xpath
        for generated in branch_count_sweep("unselective", max_branches=2, branch_depth="low")
    )
    xpaths.append(
        generate_twig(
            2,
            ["selective", "unselective"],
            branch_depth="low",
            output_suffix="/time",
        ).xpath
    )
    return xpaths


@pytest.mark.parametrize("xpath", _generated_workload())
def test_generated_workload_every_strategy_and_auto_match_oracle(xmark_engine, xpath):
    # Differential test: the generator's whole parameter space, run
    # through every fixed strategy and the optimizer-driven auto mode.
    expected = xmark_engine.oracle(xpath)
    for strategy in DEFAULT_STRATEGIES + ("auto",):
        result = xmark_engine.query(xpath, strategy=strategy)
        assert result.ids == expected, f"{strategy} disagrees on {xpath}"
    service_result = xmark_engine.service.execute(xpath, strategy="auto")
    assert service_result.ids == expected
    assert service_result.strategy in DEFAULT_STRATEGIES


def test_datapaths_forced_plans_agree(xmark_engine):
    for workload_query in queries_for_dataset("xmark"):
        expected = xmark_engine.oracle(workload_query.xpath)
        merge = xmark_engine.query(workload_query.xpath, strategy="datapaths", force_plan="merge")
        inl = xmark_engine.query(workload_query.xpath, strategy="datapaths", force_plan="inl")
        assert merge.ids == expected
        assert inl.ids == expected


# ----------------------------------------------------------------------
# Deterministic edge cases over the fuzzer's corpus generators.
#
# Each case is a (corpus, queries) pair; queries are (xpath, empty)
# where ``empty`` pins whether the oracle answer must be empty — so the
# edge the case exists for (a query that matches nothing, a bare
# single-node document, a deep same-tag chain) is provably exercised,
# not silently optimized away by a generator change.
# ----------------------------------------------------------------------
def _single_node_corpus():
    return (
        [Document(Node(NodeKind.ELEMENT, "s"), name="solo")],
        [("/s", False), ("//s", False), ("/s[a]", True), ("//a", True)],
    )


def _deep_chain_corpus():
    return (
        [self_nested_chain(12, tag="a", name="chain")],
        [
            ("//a", False),
            ("//a//a//a", False),
            ("/a/a/a", False),
            ("//a[a='v0']", False),
            ("//a[a='v3']", True),
            ("//b", True),
        ],
    )


def _fanout_star_corpus():
    return (
        [max_fanout_star(16, name="star")],
        [
            ("//b", False),
            ("/r/b", False),
            ("/r[b='v1']", False),
            ("//b[c]", True),
            ("/r/b/b", True),
        ],
    )


def _random_fuzz_corpus(seed):
    def build():
        rng = random.Random(seed)
        corpus = random_corpus(rng, documents=3)
        queries = [
            (random_twig_xpath(rng, corpus), None) for _ in range(8)
        ]
        return corpus, queries

    return build


FUZZ_EDGE_CORPORA = {
    "single-node": _single_node_corpus,
    "deep-chain": _deep_chain_corpus,
    "fanout-star": _fanout_star_corpus,
    "fuzz-seed-1": _random_fuzz_corpus(1),
    "fuzz-seed-2": _random_fuzz_corpus(2),
}


@pytest.mark.parametrize("case", sorted(FUZZ_EDGE_CORPORA))
def test_fuzz_corpus_edge_cases_every_strategy_and_auto(case):
    documents, queries = FUZZ_EDGE_CORPORA[case]()
    database = TwigIndexDatabase.from_documents(
        [clone_document(document) for document in documents]
    )
    database.build_all_indexes()
    for xpath, empty in queries:
        expected = database.oracle(xpath)
        if empty is True:
            assert expected == [], f"{case}: {xpath} should be empty"
        elif empty is False:
            assert expected, f"{case}: {xpath} should be non-empty"
        for strategy in DEFAULT_STRATEGIES + ("auto",):
            result = database.query(xpath, strategy=strategy)
            assert result.ids == expected, (
                f"{strategy} disagrees on {xpath} ({case})"
            )


# ----------------------------------------------------------------------
# Property test: random small trees, random twigs, all strategies agree.
# ----------------------------------------------------------------------
LABELS = ("a", "b", "c")
VALUES = ("x", "y")


def _random_tree(draw) -> Document:
    node_budget = draw(st.integers(min_value=3, max_value=18))
    rng_choices = st.integers(min_value=0, max_value=10**6)

    root = Node(NodeKind.ELEMENT, "r")
    frontier = [root]
    for _ in range(node_budget):
        parent = frontier[draw(rng_choices) % len(frontier)]
        if parent.depth >= 4:
            parent = root
        label = LABELS[draw(rng_choices) % len(LABELS)]
        child = parent.add_child(Node(NodeKind.ELEMENT, label))
        if draw(st.booleans()):
            child.add_child(Node(NodeKind.VALUE, VALUES[draw(rng_choices) % len(VALUES)]))
        frontier.append(child)
    return Document(root, name="random")


def _random_query(draw) -> str:
    rng_choices = st.integers(min_value=0, max_value=10**6)
    start = "/r" if draw(st.booleans()) else "//" + LABELS[draw(rng_choices) % 3]
    steps = []
    for _ in range(draw(st.integers(min_value=0, max_value=2))):
        axis = "//" if draw(st.booleans()) else "/"
        steps.append(axis + LABELS[draw(rng_choices) % 3])
    predicates = []
    for _ in range(draw(st.integers(min_value=0, max_value=2))):
        label = LABELS[draw(rng_choices) % 3]
        if draw(st.booleans()):
            predicates.append(f"[{label}='{VALUES[draw(rng_choices) % 2]}']")
        else:
            predicates.append(f"[{label}]")
    return start + "".join(steps) + "".join(predicates)


@settings(max_examples=30, deadline=None)
@given(st.data())
def test_property_all_strategies_agree_on_random_trees(data):
    document = _random_tree(data.draw)
    query = _random_query(data.draw)
    database = TwigIndexDatabase.from_documents([document])
    expected = database.oracle(query)
    for strategy in DEFAULT_STRATEGIES:
        result = database.query(query, strategy=strategy)
        assert result.ids == expected, f"{strategy} disagrees on {query}"
