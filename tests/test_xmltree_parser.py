"""Unit tests for XML parsing and serialization."""

import pytest

from repro.errors import XmlParseError
from repro.xmltree import parse_string, serialize
from repro.xmltree.nodes import NodeKind


def test_parse_simple_document():
    document = parse_string("<a><b>hi</b><c x='1'/></a>", name="t")
    root = document.root
    assert root.label == "a"
    b, c = root.structural_children()
    assert b.first_value() == "hi"
    attribute = c.structural_children()[0]
    assert attribute.kind is NodeKind.ATTRIBUTE
    assert attribute.label == "x"
    assert attribute.first_value() == "1"


def test_parse_strips_namespace_prefixes():
    document = parse_string('<a xmlns="urn:x"><b>v</b></a>')
    assert document.root.label == "a"
    assert document.root.structural_children()[0].label == "b"


def test_parse_ignores_whitespace_only_text():
    document = parse_string("<a>\n  <b>x</b>\n</a>")
    kinds = [n.kind for n in document.root.iter_subtree()]
    assert kinds.count(NodeKind.VALUE) == 1


def test_parse_keeps_mixed_tail_text():
    document = parse_string("<a><b>x</b>tail</a>")
    values = [n.label for n in document.root.iter_subtree() if n.is_value]
    assert values == ["x", "tail"]


def test_parse_error_raises_library_exception():
    with pytest.raises(XmlParseError):
        parse_string("<a><b></a>")
    with pytest.raises(XmlParseError):
        parse_string("")


def test_serialize_round_trip_structure():
    text = "<book><title>XML</title><author><fn>jane</fn></author></book>"
    document = parse_string(text)
    serialized = serialize(document)
    reparsed = parse_string(serialized)
    original = [(n.kind, n.label) for n in document.root.iter_subtree()]
    round_tripped = [(n.kind, n.label) for n in reparsed.root.iter_subtree()]
    assert original == round_tripped


def test_serialize_escapes_special_characters():
    document = parse_string("<a><b>x &amp; y &lt; z</b></a>")
    serialized = serialize(document)
    assert "&amp;" in serialized and "&lt;" in serialized
    assert parse_string(serialized).root.structural_children()[0].first_value() == "x & y < z"


def test_serialize_renders_attributes():
    document = parse_string('<a id="1"><b/></a>')
    serialized = serialize(document)
    assert 'id="1"' in serialized
