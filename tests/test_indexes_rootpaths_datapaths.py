"""Tests for the ROOTPATHS and DATAPATHS indices (the paper's contribution)."""

import pytest

from repro.errors import IndexNotBuiltError, UnsupportedLookupError
from repro.indexes import DataPathsIndex, RootPathsIndex
from repro.paths import HeadIdPruner, prune_idlist
from repro.query import parse_xpath
from repro.storage import StatsCollector
from repro.storage.btree import BPlusTree


# ----------------------------------------------------------------------
# ROOTPATHS
# ----------------------------------------------------------------------
def test_rootpaths_requires_build():
    index = RootPathsIndex(stats=StatsCollector())
    with pytest.raises(IndexNotBuiltError):
        list(index.lookup(("book",), None))
    with pytest.raises(IndexNotBuiltError):
        index.estimated_size_bytes()


def test_rootpaths_single_lookup_full_idlist(book_xmldb):
    index = RootPathsIndex(stats=StatsCollector()).build(book_xmldb)
    matches = list(index.lookup(("author", "fn"), "jane"))
    assert len(matches) == 2
    for match in matches:
        assert match.labels == ("book", "allauthors", "author", "fn")
        # Full root-to-node IdList, one id per label (Figure 4).
        assert len(match.ids) == len(match.labels)
        assert match.ids[0] == book_xmldb.documents[0].root.node_id


def test_rootpaths_anchored_vs_suffix_lookup(book_xmldb):
    index = RootPathsIndex(stats=StatsCollector()).build(book_xmldb)
    # '/book/title' is anchored: exactly one path (the chapter title does
    # not start at the root).
    anchored = list(index.lookup(("book", "title"), None, anchored=True))
    assert len(anchored) == 1
    # '//title' (suffix match) also reaches the chapter title.
    suffix = list(index.lookup(("title",), None, anchored=False))
    assert len(suffix) == 2


def test_rootpaths_structural_and_value_rows_are_distinct(book_xmldb):
    index = RootPathsIndex(stats=StatsCollector()).build(book_xmldb)
    structural = index.count(("author", "fn"), None)
    valued = index.count(("author", "fn"), "jane")
    assert structural == 3
    assert valued == 2


def test_rootpaths_unknown_label_or_value_is_empty(book_xmldb):
    index = RootPathsIndex(stats=StatsCollector()).build(book_xmldb)
    assert index.count(("nonexistent",), None) == 0
    assert index.count(("author", "fn"), "zzz") == 0


def test_rootpaths_estimate_matches_statistics(book_xmldb):
    index = RootPathsIndex(stats=StatsCollector()).build(book_xmldb)
    assert index.estimate_matches("fn", "jane") == 2
    assert index.estimate_matches("fn", None) == 3
    assert index.estimate_matches("fn", "none") == 0


def test_rootpaths_idlist_ablation_store_last_only(book_xmldb):
    index = RootPathsIndex(stats=StatsCollector(), store_full_idlist=False).build(book_xmldb)
    match = next(iter(index.lookup(("author", "fn"), "jane")))
    assert len(match.ids) == 1


def test_rootpaths_forward_schema_path_cannot_serve_recursion(book_xmldb):
    index = RootPathsIndex(stats=StatsCollector(), reverse_schema_path=False).build(book_xmldb)
    # Anchored lookups still work.
    assert index.count(("book", "title"), "XML", anchored=True) == 1
    with pytest.raises(UnsupportedLookupError):
        list(index.lookup(("title",), None, anchored=False))


def test_rootpaths_schema_path_dictionary_loses_recursion(book_xmldb):
    index = RootPathsIndex(stats=StatsCollector(), schema_path_dictionary=True).build(book_xmldb)
    assert index.count(("book", "title"), "XML", anchored=True) == 1
    with pytest.raises(UnsupportedLookupError):
        list(index.lookup(("title",), None, anchored=False))


def test_rootpaths_size_smaller_without_full_idlists(book_xmldb):
    full = RootPathsIndex(stats=StatsCollector()).build(book_xmldb)
    last_only = RootPathsIndex(stats=StatsCollector(), store_full_idlist=False).build(book_xmldb)
    assert last_only.estimated_size_bytes() < full.estimated_size_bytes()


def test_rootpaths_differential_encoding_reduces_size(book_xmldb):
    compressed = RootPathsIndex(stats=StatsCollector(), differential_idlists=True).build(book_xmldb)
    raw = RootPathsIndex(stats=StatsCollector(), differential_idlists=False).build(book_xmldb)
    assert compressed.estimated_size_bytes() < raw.estimated_size_bytes()


# ----------------------------------------------------------------------
# DATAPATHS
# ----------------------------------------------------------------------
def test_datapaths_free_lookup_equals_rootpaths(book_xmldb):
    rootpaths = RootPathsIndex(stats=StatsCollector()).build(book_xmldb)
    datapaths = DataPathsIndex(stats=StatsCollector()).build(book_xmldb)
    rp_ids = sorted(m.tail_id for m in rootpaths.lookup(("author", "fn"), "jane"))
    dp_ids = sorted(m.tail_id for m in datapaths.free_lookup(("author", "fn"), "jane"))
    assert rp_ids == dp_ids


def test_datapaths_bound_lookup_below_concrete_head(book_xmldb):
    datapaths = DataPathsIndex(stats=StatsCollector()).build(book_xmldb)
    book_id = book_xmldb.documents[0].root.node_id
    matches = list(datapaths.bound_lookup(book_id, ("author", "fn"), "jane"))
    assert len(matches) == 2
    for match in matches:
        assert match.head_id == book_id
        # The head's own id is not part of the IdList (Figure 5).
        assert len(match.ids) == len(match.labels) - 1
        author_id = match.id_at(len(match.labels) - 2)
        assert book_xmldb.node(author_id).label == "author"
    # Bound to a single author, only that author's subtree matches.
    author = next(iter(book_xmldb.iter_by_label("author")))
    bound = list(datapaths.bound_lookup(author.node_id, ("fn",), "jane"))
    assert len(bound) == 1


def test_datapaths_bound_lookup_anchored_requires_direct_chain(book_xmldb):
    datapaths = DataPathsIndex(stats=StatsCollector()).build(book_xmldb)
    book_id = book_xmldb.documents[0].root.node_id
    # 'author' is not a direct child of book, so an anchored probe fails...
    assert datapaths.count_bound(book_id, ("author",), None, anchored=True) == 0
    # ... while the '//' probe succeeds.
    assert datapaths.count_bound(book_id, ("author",), None, anchored=False) == 3
    # A genuinely direct chain works anchored.
    assert datapaths.count_bound(book_id, ("allauthors", "author"), None, anchored=True) == 3


def test_datapaths_is_larger_than_rootpaths(book_xmldb):
    rootpaths = RootPathsIndex(stats=StatsCollector()).build(book_xmldb)
    datapaths = DataPathsIndex(stats=StatsCollector()).build(book_xmldb)
    assert datapaths.entry_count > rootpaths.entry_count
    assert datapaths.estimated_size_bytes() > rootpaths.estimated_size_bytes()


def _prune_stored_idlists(index, idlist_position: int) -> None:
    """Replace every stored IdList with a last-id-only pruned version.

    Simulates Section 4.1's workload-based pruning at the storage level
    so the space accounting can be exercised against NULL-bearing lists.
    """
    entries = []
    for key, payload in index._tree.scan_all():
        mutable = list(payload)
        ids = mutable[idlist_position]
        if ids:
            mutable[idlist_position] = prune_idlist(ids, keep_positions=(len(ids) - 1,))
        entries.append((key, tuple(mutable)))
    rebuilt = BPlusTree(order=index.order, stats=index.stats, name=index.name)
    rebuilt.bulk_load(entries)
    index._tree = rebuilt


def test_space_accounting_handles_pruned_idlists_consistently(book_xmldb):
    # Regression: DATAPATHS sized IdLists without filtering NULLs while
    # ROOTPATHS filtered them, so Figure 9 numbers diverged (and pruned
    # DATAPATHS lists crashed the varint coder).  Both must size only the
    # present ids.
    for index_class, options in (
        (RootPathsIndex, {}),
        (RootPathsIndex, {"differential_idlists": False}),
        (DataPathsIndex, {}),
        (DataPathsIndex, {"differential_idlists": False}),
    ):
        index = index_class(stats=StatsCollector(), **options).build(book_xmldb)
        full_size = index.estimated_size_bytes()
        _prune_stored_idlists(index, idlist_position=1)
        pruned_size = index.estimated_size_bytes()
        assert pruned_size < full_size, (index_class.__name__, options)


def test_datapaths_headid_pruning(book_xmldb):
    pruner = HeadIdPruner.from_workload([parse_xpath("/book//author[fn='jane']")])
    pruned = DataPathsIndex(stats=StatsCollector(), head_pruner=pruner).build(book_xmldb)
    full = DataPathsIndex(stats=StatsCollector()).build(book_xmldb)
    assert pruned.entry_count < full.entry_count
    assert pruned.pruned_count > 0
    assert pruned.estimated_size_bytes() < full.estimated_size_bytes()
    # Probes at retained heads still work; pruned heads raise.
    book_id = book_xmldb.documents[0].root.node_id
    assert pruned.count_bound(book_id, ("author", "fn"), "jane") == 2
    author = next(iter(book_xmldb.iter_by_label("allauthors")))
    with pytest.raises(UnsupportedLookupError):
        list(pruned.bound_lookup(author.node_id, ("author",), None))
    # FreeIndex probes (virtual root) always survive pruning.
    assert pruned.count_bound(0, ("book", "title"), "XML", anchored=True) == 1


def test_datapaths_schema_path_dictionary(book_xmldb):
    compressed = DataPathsIndex(stats=StatsCollector(), schema_path_dictionary=True).build(book_xmldb)
    book_id = book_xmldb.documents[0].root.node_id
    assert compressed.count_bound(book_id, ("allauthors", "author"), None, anchored=True) == 3
    with pytest.raises(UnsupportedLookupError):
        list(compressed.bound_lookup(book_id, ("author",), None, anchored=False))


def test_family_descriptors_match_figure_3():
    assert "reverse SchemaPath" in RootPathsIndex.descriptor.indexed_columns
    assert RootPathsIndex.descriptor.id_list_sublist == "full IdList"
    assert DataPathsIndex.descriptor.schema_path_subset == "all paths"
    assert "HeadId" in DataPathsIndex.descriptor.indexed_columns
