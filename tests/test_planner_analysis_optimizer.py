"""Tests for twig analysis, the branch joiner and the DATAPATHS plan choice."""

import pytest

from repro.errors import PlanningError
from repro.indexes import DataPathsIndex
from repro.planner import (
    BranchRelation,
    TwigAnalysis,
    choose_datapaths_plan,
    estimate_branch_cardinalities,
    join_branches,
    split_segments,
    subpath_below,
)
from repro.query import parse_xpath
from repro.storage import StatsCollector


def test_analysis_join_points_and_needed_nodes():
    twig = parse_xpath(
        "/site[people/person/profile/@income='1']/open_auctions/open_auction[@increase='2']"
    )
    analysis = TwigAnalysis(twig)
    assert [n.label for n in analysis.trunk] == ["site", "open_auctions", "open_auction"]
    by_leaf = {p.leaf.label: p for p in analysis.paths}
    assert by_leaf["income"].join_point.label == "site"
    assert by_leaf["increase"].join_point.label == "open_auction"
    assert [n.label for n in by_leaf["income"].needed_nodes] == ["site"]
    assert [n.label for n in by_leaf["increase"].needed_nodes] == ["site", "open_auction"]
    assert by_leaf["increase"].contains_output
    assert not by_leaf["income"].contains_output
    assert not analysis.is_single_path


def test_analysis_trunk_helpers():
    twig = parse_xpath("/site/open_auctions/open_auction[bidder/@increase='3']/time")
    analysis = TwigAnalysis(twig)
    site, open_auctions, open_auction, time_node = analysis.trunk
    assert analysis.trunk_depth(time_node) == 3
    assert analysis.trunk_common_node(site, open_auction) is site
    between = analysis.trunk_nodes_between(site, time_node)
    assert [n.label for n in between] == ["open_auctions", "open_auction", "time"]


def test_split_segments_and_subpath_below():
    twig = parse_xpath("/site//item/mailbox/mail/to")
    (path,) = twig.path_queries()
    segments, anchored = split_segments(path.nodes)
    assert segments == (("site",), ("item", "mailbox", "mail", "to"))
    assert anchored
    item_node = path.nodes[1]
    below = subpath_below(path.nodes, item_node)
    assert [n.label for n in below] == ["mailbox", "mail", "to"]
    with pytest.raises(ValueError):
        subpath_below(path.nodes, parse_xpath("/x").root)


def test_join_branches_small_example():
    twig = parse_xpath("/r[a='1']/b")
    analysis = TwigAnalysis(twig)
    stats = StatsCollector()
    path_a, path_b = analysis.paths if analysis.paths[0].leaf.label == "a" else analysis.paths[::-1]
    rel_a = BranchRelation(analysis, path_a.needed_nodes, [(100,)], label="a")
    rel_b = BranchRelation(analysis, path_b.needed_nodes, [(100, 200), (999, 201)], label="b")
    assert join_branches(analysis, [rel_a, rel_b], stats=stats) == [200]


def test_join_branches_requires_output_column():
    twig = parse_xpath("/r[a='1']/b")
    analysis = TwigAnalysis(twig)
    path_a = next(p for p in analysis.paths if p.leaf.label == "a")
    lonely = BranchRelation(analysis, path_a.needed_nodes, [(1,)], label="a")
    with pytest.raises(PlanningError):
        join_branches(analysis, [lonely, lonely])


class _StubStatistics:
    """Catalog statistics stub with paper-scale branch cardinalities."""

    def __init__(self, by_label):
        self.by_label = by_label

    def estimate_matches(self, leaf_label, value=None):
        return self.by_label.get(leaf_label, 0)


def test_optimizer_prefers_inl_for_selective_outer():
    # Q10x shape: one 3-row branch, one 59k-row trunk leaf (Figure 12(d)).
    selective = parse_xpath(
        "/site/open_auctions/open_auction[annotation/author/@person='person22082']/time"
    )
    stats = _StubStatistics({"person": 3, "time": 59486})
    choice = choose_datapaths_plan(TwigAnalysis(selective), stats)
    assert choice.plan == "inl"
    assert choice.inl_cost < choice.merge_cost

    # Q8x shape: two unselective branches (2038 and 5172 rows) — merge wins.
    unselective = parse_xpath(
        "/site[people/person/profile/@income='9876.00']"
        "/open_auctions/open_auction[@increase='3.00']"
    )
    stats2 = _StubStatistics({"income": 2038, "increase": 5172})
    choice2 = choose_datapaths_plan(TwigAnalysis(unselective), stats2)
    assert choice2.plan == "merge"


def test_optimizer_force_overrides(xmark_small):
    index = DataPathsIndex(stats=StatsCollector()).build(xmark_small.db)
    twig = parse_xpath("/site[people/person/name='Hagen Artosi']/open_auctions/open_auction")
    analysis = TwigAnalysis(twig)
    assert choose_datapaths_plan(analysis, index, force="merge").plan == "merge"
    assert choose_datapaths_plan(analysis, index, force="inl").plan == "inl"
    estimates = estimate_branch_cardinalities(analysis, index)
    assert len(estimates) == analysis.twig.branch_count


def test_single_path_never_uses_inl(xmark_small):
    index = DataPathsIndex(stats=StatsCollector()).build(xmark_small.db)
    twig = parse_xpath("/site/people/person/name[.='Hagen Artosi']")
    assert choose_datapaths_plan(TwigAnalysis(twig), index).plan == "merge"
