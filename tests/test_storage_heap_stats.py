"""Unit tests for heap files and the stats collector."""

from repro.planner import QueryResult
from repro.storage import GLOBAL_STATS, HeapFile, StatsCollector
from repro.storage.stats import (
    PAGE_READ_WEIGHT,
    PAGE_WRITE_WEIGHT,
    maintenance_cost,
    weighted_cost,
)


def test_heap_append_and_scan_counts_pages():
    stats = StatsCollector()
    heap = HeapFile(rows_per_page=4, stats=stats, name="t")
    for i in range(10):
        heap.append((i, f"row{i}"))
    assert len(heap) == 10
    assert heap.page_count == 3
    stats.reset()
    rows = list(heap.scan())
    assert rows[0] == (0, "row0") and len(rows) == 10
    assert stats.heap_page_reads == 3


def test_heap_fetch_by_row_id():
    stats = StatsCollector()
    heap = HeapFile(rows_per_page=2, stats=stats)
    row_ids = [heap.append((i,)) for i in range(5)]
    assert heap.fetch(row_ids[3]) == (3,)
    assert stats.heap_page_reads == 1


def test_heap_extend_and_size_estimate():
    heap = HeapFile(rows_per_page=8, stats=StatsCollector())
    heap.extend([(i, "x" * i, None) for i in range(20)])
    assert len(heap) == 20
    assert heap.estimated_size_bytes() > 20


def test_stats_snapshot_diff_and_measure():
    stats = StatsCollector()
    stats.btree_node_reads = 5
    snap = stats.snapshot()
    stats.btree_node_reads += 3
    stats.heap_page_reads += 2
    diff = stats.diff(snap)
    assert diff["btree_node_reads"] == 3
    assert diff["heap_page_reads"] == 2
    with stats.measure() as window:
        stats.join_probes += 7
    assert window["join_probes"] == 7


def test_stats_totals_and_addition():
    a = StatsCollector(btree_node_reads=2, heap_page_reads=3, join_probes=1)
    b = StatsCollector(btree_entries_scanned=4)
    combined = a + b
    assert combined.btree_node_reads == 2
    assert combined.btree_entries_scanned == 4
    assert a.total_logical_io() == 5
    assert a.total_cost() == 10 * 5 + 1
    a.reset()
    assert a.total_logical_io() == 0


def test_total_cost_weights_are_pinned():
    # The cost formula is the currency of every figure; pin its weights.
    stats = StatsCollector(
        btree_node_reads=2,
        heap_page_reads=3,
        btree_entries_scanned=5,
        join_comparisons=7,
        join_probes=11,
        index_lookups=13,     # must not contribute
        tuples_produced=17,   # must not contribute
        btree_writes=19,      # must not contribute
        btree_page_writes=21,  # must not contribute
        heap_page_writes=23,  # must not contribute
    )
    assert PAGE_READ_WEIGHT == 10
    assert stats.total_cost() == 10 * (2 + 3) + 5 + 7 + 11 == 73
    assert weighted_cost(stats.snapshot()) == stats.total_cost()


def test_maintenance_cost_weights_are_pinned():
    # The write-side currency: page-granular writes dominate per-entry
    # insert work; reads and query CPU counters must not contribute.
    stats = StatsCollector(
        btree_page_writes=2,
        heap_page_writes=3,
        btree_writes=5,
        btree_node_reads=7,       # must not contribute
        heap_page_reads=11,       # must not contribute
        btree_entries_scanned=13,  # must not contribute
        join_probes=17,           # must not contribute
    )
    assert PAGE_WRITE_WEIGHT == 10
    assert stats.total_maintenance_cost() == 10 * (2 + 3) + 5 == 55
    assert maintenance_cost(stats.snapshot()) == stats.total_maintenance_cost()


def test_query_result_cost_delegates_to_shared_formula():
    # Regression: QueryResult once duplicated the weighting inline; the
    # two implementations could drift.  It must defer to weighted_cost.
    cost = {
        "btree_node_reads": 1,
        "heap_page_reads": 2,
        "btree_entries_scanned": 3,
        "join_comparisons": 4,
        "join_probes": 5,
        "index_lookups": 99,
    }
    result = QueryResult(
        strategy="rootpaths", xpath="/x", ids=[], elapsed_seconds=0.0, cost=cost
    )
    assert result.total_cost == weighted_cost(cost) == 10 * 3 + 3 + 4 + 5


def test_global_stats_exists():
    assert isinstance(GLOBAL_STATS, StatsCollector)
