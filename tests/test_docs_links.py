"""The documentation suite exists and every local reference resolves.

Runs the same checker CI uses (``tools/check_doc_links.py``) inside the
tier-1 suite, so a README/docs path that rots fails close to the change
that broke it.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_doc_links", REPO_ROOT / "tools" / "check_doc_links.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("check_doc_links", module)
    spec.loader.exec_module(module)
    return module


def test_documentation_suite_exists():
    assert (REPO_ROOT / "README.md").is_file()
    assert (REPO_ROOT / "docs" / "ARCHITECTURE.md").is_file()
    assert (REPO_ROOT / "docs" / "BENCHMARKS.md").is_file()


def test_all_documentation_references_resolve():
    checker = _load_checker()
    problems = [
        problem
        for doc in checker._documents()
        for problem in checker.check_document(doc)
    ]
    assert not problems, "\n".join(problems)


def test_checker_flags_broken_references(tmp_path):
    """The checker itself detects a dangling link (it is not a no-op)."""
    checker = _load_checker()
    rotten = tmp_path / "rotten.md"
    rotten.write_text(
        "A [dead link](missing/file.md) and a span `src/absent/module.py`.\n"
    )
    problems = checker.check_document(rotten)
    assert len(problems) == 2
    assert any("missing/file.md" in problem for problem in problems)
    assert any("src/absent/module.py" in problem for problem in problems)


def test_module_docstrings_cross_link_the_architecture_doc():
    """The satellite contract: docs are linked from the code, both ways."""
    linked = [
        "src/repro/engine.py",
        "src/repro/storage/stats.py",
        "src/repro/indexes/base.py",
        "src/repro/service/service.py",
        "src/repro/shard/collection.py",
        "src/repro/xmltree/document.py",
    ]
    for path in linked:
        text = (REPO_ROOT / path).read_text(encoding="utf-8")
        assert "ARCHITECTURE.md" in text, f"{path} lost its docs cross-link"


def test_analysis_doc_exists_and_is_cross_linked():
    assert (REPO_ROOT / "docs" / "ANALYSIS.md").is_file()
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    architecture = (REPO_ROOT / "docs" / "ARCHITECTURE.md").read_text(
        encoding="utf-8"
    )
    assert "docs/ANALYSIS.md" in readme
    assert "ANALYSIS.md" in architecture


def test_suppression_codes_resolve_against_the_lint_registry():
    checker = _load_checker()
    problems = checker.check_suppression_codes()
    assert problems == [], "\n".join(problems)
    # The exemption matters: this fixture deliberately names RPR999.
    fixture = REPO_ROOT / "tests" / "lint_fixtures" / "suppressed_bad.py"
    assert "RPR999" in fixture.read_text(encoding="utf-8")
