"""Unit and property tests for key encoding (repro.storage.keys)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import KeyEncodingError
from repro.storage.keys import (
    decode_key,
    encode_component,
    encode_key,
    is_prefix,
    key_byte_size,
)

component = st.one_of(
    st.none(),
    st.integers(min_value=-(2**31), max_value=2**31),
    st.text(max_size=12),
)


def test_encode_orders_none_before_numbers_before_strings():
    assert encode_component(None) < encode_component(0) < encode_component("a")
    assert encode_component(-5) < encode_component(3)
    assert encode_component("a") < encode_component("b")


def test_booleans_are_rejected():
    with pytest.raises(KeyEncodingError):
        encode_component(True)
    with pytest.raises(KeyEncodingError):
        encode_key(["x", False])


def test_unsupported_types_are_rejected():
    with pytest.raises(KeyEncodingError):
        encode_component(object())


@given(st.lists(component, max_size=6))
def test_encode_decode_round_trip(components):
    assert decode_key(encode_key(components)) == tuple(components)


@given(st.lists(component, max_size=5), st.lists(component, max_size=3))
def test_prefix_detection(components, suffix):
    prefix = encode_key(components)
    full = encode_key(list(components) + list(suffix))
    assert is_prefix(prefix, full)
    if suffix:
        assert not is_prefix(full, prefix)


@given(st.lists(component, min_size=1, max_size=6), st.lists(component, min_size=1, max_size=6))
def test_encoding_preserves_prefix_grouping(a, b):
    """Keys sharing a prefix sort contiguously: anything between two keys
    with prefix P also has prefix P (the property prefix scans rely on)."""
    pa = encode_key(a)
    pb = encode_key(b)
    low, high = sorted((pa + ((1, 0),), pa + ((1, 10),)))
    if low <= pb <= high:
        assert is_prefix(pa, pb) or pb == pa


def test_key_byte_size_model():
    assert key_byte_size([None]) == 1
    assert key_byte_size([7]) == 4
    assert key_byte_size([1.5]) == 8
    assert key_byte_size(["abc"]) == 4
    assert key_byte_size(["abc", 7, None]) == 9
