"""Tests for IdList encoding, the 4-ary relation enumeration and compression."""

from hypothesis import given, strategies as st

from repro.paths import (
    HeadIdPruner,
    SchemaPathDictionary,
    compression_ratio,
    count_datapaths_rows,
    count_rootpaths_rows,
    decode_deltas,
    distinct_schema_paths,
    encode_deltas,
    encoded_size_bytes,
    iter_datapaths_rows,
    iter_rootpaths_rows,
    present_ids,
    prune_idlist,
    raw_size_bytes,
    varint_size,
)
from repro.query import parse_xpath
from repro.xmltree.document import VIRTUAL_ROOT_ID


# ----------------------------------------------------------------------
# IdList differential encoding (Section 4.1)
# ----------------------------------------------------------------------
def test_delta_encoding_round_trip_simple():
    ids = (1, 5, 6, 7)
    assert decode_deltas(encode_deltas(ids)) == ids
    assert encode_deltas(ids) == [1, 4, 1, 1]
    assert encode_deltas([]) == []
    assert decode_deltas([]) == ()


@given(st.lists(st.integers(min_value=0, max_value=10**7), max_size=30))
def test_delta_encoding_round_trip_property(ids):
    assert list(decode_deltas(encode_deltas(ids))) == ids


def test_varint_sizes():
    assert varint_size(0) == 1
    assert varint_size(63) == 1
    assert varint_size(64) == 2
    assert varint_size(-5) == 1
    assert varint_size(10**6) >= 3


def test_differential_encoding_saves_space_on_correlated_ids():
    id_lists = [tuple(range(start, start + 8)) for start in range(1000, 2000, 8)]
    ratio = compression_ratio(id_lists)
    assert ratio < 0.75  # the paper reports roughly 30% savings
    assert raw_size_bytes(id_lists[0]) > encoded_size_bytes(id_lists[0])


def test_prune_idlist_replaces_with_none():
    assert prune_idlist((1, 5, 6, 7), keep_positions=[2]) == (None, None, 6, None)


def test_present_ids_filters_pruned_nulls_for_sizing():
    pruned = prune_idlist((1, 5, 9), keep_positions=(0, 2))
    assert pruned == (1, None, 9)
    assert present_ids(pruned) == [1, 9]
    # Sizing a pruned list must go through the filter: NULL slots occupy
    # no id storage, and the varint coder cannot encode None at all.
    assert encoded_size_bytes(present_ids(pruned)) == encoded_size_bytes((1, 9))
    assert raw_size_bytes(present_ids(pruned)) == raw_size_bytes((1, 9))
    assert present_ids((4, 2)) == [4, 2]
    assert present_ids(()) == []


# ----------------------------------------------------------------------
# 4-ary relation enumeration (Section 3.1, Figures 2/4/5)
# ----------------------------------------------------------------------
def test_rootpaths_rows_include_prefixes_and_values(book_xmldb):
    rows = list(iter_rootpaths_rows(book_xmldb))
    by_key = {(r.schema_path, r.leaf_value) for r in rows}
    assert (("book",), None) in by_key
    assert (("book", "title"), None) in by_key
    assert (("book", "title"), "XML") in by_key
    assert (("book", "allauthors", "author", "fn"), "jane") in by_key
    # Rooted rows carry the full IdList starting at the document root.
    title_row = next(r for r in rows if r.schema_path == ("book", "title") and r.leaf_value == "XML")
    assert title_row.id_list[0] == book_xmldb.documents[0].root.node_id
    assert len(title_row.id_list) == 2
    assert title_row.head_id == VIRTUAL_ROOT_ID


def test_datapaths_rows_cover_all_subpaths(book_xmldb):
    rows = list(iter_datapaths_rows(book_xmldb))
    author = next(n for n in book_xmldb.iter_by_label("author"))
    fn = author.structural_children()[0]
    # A row headed at the author covering author -> fn must exist.
    matching = [
        r
        for r in rows
        if r.head_id == author.node_id and r.schema_path == ("author", "fn") and r.leaf_value == "jane"
    ]
    assert len(matching) == 1
    assert matching[0].id_list == (fn.node_id,)
    # Virtual-root rows duplicate the rooted rows.
    assert any(r.head_id == VIRTUAL_ROOT_ID and r.schema_path == ("book",) for r in rows)


def test_row_counts_relationship(book_xmldb):
    rootpaths = count_rootpaths_rows(book_xmldb)
    datapaths = count_datapaths_rows(book_xmldb)
    assert rootpaths == len(list(iter_rootpaths_rows(book_xmldb)))
    # DATAPATHS stores all subpaths, strictly more rows than the rooted prefixes.
    assert datapaths > rootpaths


def test_distinct_schema_paths(book_xmldb):
    paths = distinct_schema_paths(book_xmldb)
    assert ("book", "allauthors", "author", "ln") in paths
    assert len(paths) == 11
    assert len(set(paths)) == len(paths)


def test_path_row_tail_id(book_xmldb):
    for row in iter_rootpaths_rows(book_xmldb):
        assert row.tail_id == row.id_list[-1]


# ----------------------------------------------------------------------
# Lossy compression helpers (Sections 4.2 / 4.3)
# ----------------------------------------------------------------------
def test_schema_path_dictionary_interning():
    dictionary = SchemaPathDictionary()
    first = dictionary.intern(("a", "b"))
    assert dictionary.intern(("a", "b")) == first
    assert dictionary.intern(("a", "c")) == first + 1
    assert dictionary.id_of(("a", "b")) == first
    assert dictionary.id_of(("z",)) is None
    assert dictionary.path_of(first) == ("a", "b")
    assert ("a", "b") in dictionary
    assert len(dictionary) == 2
    assert dictionary.estimated_size_bytes() > 0


def test_headid_pruner_from_workload():
    twigs = [
        parse_xpath("/site[people/person/name='x']/open_auctions/open_auction[@increase='1']"),
        parse_xpath("/dblp/inproceedings/year[.='1998']"),
    ]
    pruner = HeadIdPruner.from_workload(twigs)
    assert pruner.keeps_label("site")
    assert pruner.keeps_label("open_auction")
    assert pruner.keeps_label("dblp")
    assert not pruner.keeps_label("mailbox")
