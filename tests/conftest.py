"""Shared fixtures: the Figure 1 book database and small synthetic datasets."""

from __future__ import annotations

import pytest

from repro import TwigIndexDatabase
from repro.datasets import book_document, generate_dblp, generate_xmark
from repro.xmltree import XmlDatabase


@pytest.fixture()
def book_db() -> TwigIndexDatabase:
    """A fresh TwigIndexDatabase loaded with the Figure 1 book."""
    return TwigIndexDatabase.from_documents([book_document()])


@pytest.fixture()
def book_xmldb() -> XmlDatabase:
    """A raw XmlDatabase loaded with the Figure 1 book."""
    db = XmlDatabase()
    db.add_document(book_document())
    return db


@pytest.fixture(scope="session")
def xmark_small() -> TwigIndexDatabase:
    """A small XMark-like database shared across the test session."""
    return TwigIndexDatabase.from_documents([generate_xmark(scale=0.06, seed=7)])


@pytest.fixture(scope="session")
def dblp_small() -> TwigIndexDatabase:
    """A small DBLP-like database shared across the test session."""
    return TwigIndexDatabase.from_documents([generate_dblp(scale=0.06, seed=7)])
