"""Shard-equivalence differential harness.

The tentpole invariant of the sharded tier: a
:class:`~repro.shard.ShardedQueryService` holding a document set — for
any shard count, any placement policy, any strategy (including
``auto``, where every shard prices its own plan) — must return exactly
the match set a single-engine :class:`~repro.service.QueryService`
returns for the same documents in the same arrival order.  The harness
replays randomized document sets through both tiers and diffs every
answer (ids and cardinalities) across a Figure-12-style generated
workload, then adds one more document through the incremental
maintenance path and diffs again.

The dynamic-topology extensions hold the same invariant under churn
the static tier never saw: answers are diffed before, **during**
(after every individual move) and after a ``rebalance()`` of a
hash-skewed corpus — including after span compaction and post-rebalance
adds — and under replica read fan-out, where every replica of every
shard serves a slice of the diffed reads.
"""

from __future__ import annotations

import random
import zlib

import pytest

from repro import ShardedQueryService, TwigIndexDatabase
from repro.datasets import generate_xmark
from repro.planner import DEFAULT_STRATEGIES
from repro.service import AUTO_STRATEGY
from repro.shard import PLACEMENT_POLICIES
from repro.workloads.generator import branch_count_sweep, generate_twig

SHARD_COUNTS = (1, 2, 4)

#: Strategies diffed on every (shard count x placement) cell; the full
#: seven-strategy family is diffed on a dedicated config below to keep
#: the matrix runtime in check without losing family-wide coverage.
MATRIX_STRATEGIES = ("rootpaths", "datapaths", AUTO_STRATEGY)


def _workload() -> list[str]:
    """A Figure-12-style generated query workload (plus recursion)."""
    queries = [
        generated.xpath
        for selectivity in ("selective", "moderate", "unselective")
        for generated in branch_count_sweep(
            selectivity, max_branches=2 if selectivity == "moderate" else 3
        )
    ]
    queries.append(generate_twig(1, ["selective"], branch_depth="low").xpath)
    queries.extend(
        [
            "/site/people/person/name",
            "//person[name='Hagen Artosi']",
            "/site/open_auctions/open_auction/time",
        ]
    )
    return queries


def _document_parameters(seed: int, count: int) -> list[tuple[float, int]]:
    rng = random.Random(seed)
    return [
        (rng.choice([0.015, 0.02, 0.03]), rng.randrange(1, 10_000))
        for _ in range(count)
    ]


def _documents(parameters: list[tuple[float, int]]):
    """Fresh document objects (documents cannot be shared across DBs)."""
    return [
        generate_xmark(scale=scale, seed=seed, name=f"doc-{position}")
        for position, (scale, seed) in enumerate(parameters)
    ]


def _diff_answers(single, sharded, strategies, workload, context: str) -> None:
    for xpath in workload:
        expected = single.oracle(xpath)
        for strategy in strategies:
            single_result = single.service.execute(xpath, strategy=strategy)
            sharded_result = sharded.execute(xpath, strategy=strategy)
            assert single_result.ids == expected, f"{context}: single {strategy} {xpath}"
            assert sharded_result.ids == expected, (
                f"{context}, {strategy}, {xpath}: "
                f"sharded={sharded_result.ids} single={single_result.ids} "
                f"oracle={expected}"
            )
            assert sharded_result.cardinality == single_result.cardinality


@pytest.mark.parametrize("placement", sorted(PLACEMENT_POLICIES))
@pytest.mark.parametrize("num_shards", SHARD_COUNTS)
def test_sharded_equals_single_across_counts_and_policies(num_shards, placement):
    """RP/DP/auto diffed over the full (shard count x policy) matrix."""
    parameters = _document_parameters(seed=num_shards * 31 + len(placement), count=4)
    workload = _workload()

    single = TwigIndexDatabase.from_documents(_documents(parameters))
    single.build_index("rootpaths")
    single.build_index("datapaths")

    sharded = ShardedQueryService.from_documents(
        _documents(parameters), num_shards=num_shards, placement=placement
    )
    sharded.build_index("rootpaths")
    sharded.build_index("datapaths")

    _diff_answers(
        single, sharded, MATRIX_STRATEGIES, workload, f"{placement}/{num_shards}"
    )

    # One more document through the incremental maintenance path: the
    # sharded add touches exactly one shard, the single add the whole
    # database; answers must stay identical.
    delta = (0.015, 4242)
    single.add_document(
        generate_xmark(scale=delta[0], seed=delta[1], name=f"doc-{len(parameters)}")
    )
    sharded.add_document(
        generate_xmark(scale=delta[0], seed=delta[1], name=f"doc-{len(parameters)}")
    )
    _diff_answers(
        single,
        sharded,
        MATRIX_STRATEGIES,
        workload,
        f"{placement}/{num_shards}+delta",
    )
    sharded.close()


def test_sharded_equals_single_for_the_whole_strategy_family():
    """Every strategy of the family (plus auto) on a 4-shard collection."""
    parameters = _document_parameters(seed=77, count=3)
    workload = _workload()

    single = TwigIndexDatabase.from_documents(_documents(parameters))
    sharded = ShardedQueryService.from_documents(
        _documents(parameters), num_shards=4, placement="hash"
    )
    for strategy in DEFAULT_STRATEGIES:
        single.engine.ensure_indexes_for(strategy)
        sharded.ensure_indexes_for(strategy)

    _diff_answers(
        single,
        sharded,
        DEFAULT_STRATEGIES + (AUTO_STRATEGY,),
        workload,
        "family/hash/4",
    )
    sharded.close()


def test_sharded_batch_equals_single_batch():
    """The batch facade returns the same answers and hit accounting."""
    parameters = _document_parameters(seed=5, count=4)
    workload = _workload()
    batch_queries = workload * 2  # every query repeats once

    single = TwigIndexDatabase.from_documents(_documents(parameters))
    single.build_index("rootpaths")
    single.build_index("datapaths")
    sharded = ShardedQueryService.from_documents(
        _documents(parameters), num_shards=4, placement="round_robin"
    )
    sharded.build_index("rootpaths")
    sharded.build_index("datapaths")

    single_batch = single.service.execute_batch(batch_queries)
    sharded_batch = sharded.execute_batch(batch_queries)
    for single_result, sharded_result in zip(single_batch, sharded_batch):
        assert sharded_result.ids == single_result.ids, single_result.xpath
    # Both tiers: first round misses, repeats hit.
    assert single_batch.cache_misses == len(workload)
    assert sharded_batch.cache_misses == len(workload)
    assert single_batch.cache_hits == len(workload)
    assert sharded_batch.cache_hits == len(workload)
    assert sharded_batch.total_cost > 0
    sharded.close()


# ----------------------------------------------------------------------
# Dynamic topology: rebalancing and replication
# ----------------------------------------------------------------------
def _skewed_documents(parameters):
    """The randomized corpus with names that all hash onto shard 0 of 4."""
    documents = _documents(parameters)
    for position, document in enumerate(documents):
        for salt in range(10_000):
            name = f"skew-{position}-{salt}"
            if zlib.crc32(name.encode("utf-8")) % 4 == 0:
                document.name = name
                break
    return documents


def test_rebalance_preserves_answers_before_during_and_after():
    """The acceptance invariant: sharded == single through a rebalance.

    A hash-skewed corpus (every document on shard 0 of 4) is rebalanced
    move by move; the full workload is diffed against the single engine
    at every intermediate topology, after compaction, and after one
    more post-rebalance add.
    """
    parameters = _document_parameters(seed=13, count=4)
    workload = _workload()

    single = TwigIndexDatabase.from_documents(_skewed_documents(parameters))
    single.build_index("rootpaths")
    single.build_index("datapaths")
    sharded = ShardedQueryService.from_documents(
        _skewed_documents(parameters), num_shards=4, placement="hash"
    )
    sharded.build_index("rootpaths")
    sharded.build_index("datapaths")

    # The crafted names really did skew everything onto one shard.
    assert sharded.collection.topology.live_counts() == [4, 0, 0, 0]
    _diff_answers(single, sharded, MATRIX_STRATEGIES, workload, "skewed/pre")

    plan = sharded.plan_rebalance("size_balanced")
    assert plan, "a skewed corpus must produce a non-empty plan"
    for index, move in enumerate(plan):
        sharded.move_document(move.placement, move.target_shard)
        # Mid-rebalance topologies answer exactly (subset of strategies
        # per step keeps the matrix runtime in check; the final diff
        # below covers RP/DP/auto on the settled topology).
        _diff_answers(
            single, sharded, (AUTO_STRATEGY,), workload, f"skewed/move-{index}"
        )
    assert all(count > 0 for count in sharded.collection.topology.live_counts())

    pruned = sharded.compact()
    assert pruned == len(plan)
    _diff_answers(single, sharded, MATRIX_STRATEGIES, workload, "skewed/rebalanced")

    # One more document through the incremental path on the rebalanced
    # topology: global ids keep lining up with the single engine.
    delta = (0.015, 1717)
    for tier in (single, sharded):
        tier.add_document(
            generate_xmark(scale=delta[0], seed=delta[1], name="post-rebalance")
        )
    _diff_answers(single, sharded, MATRIX_STRATEGIES, workload, "skewed/+delta")
    sharded.close()


@pytest.mark.parametrize("read_picker", ("round_robin", "least_loaded", "sticky"))
def test_replicated_shards_equal_single_engine(read_picker):
    """Replica read fan-out never changes an answer, for any picker."""
    parameters = _document_parameters(seed=29, count=4)
    workload = _workload()

    single = TwigIndexDatabase.from_documents(_documents(parameters))
    single.build_index("rootpaths")
    single.build_index("datapaths")
    sharded = ShardedQueryService.from_documents(
        _documents(parameters),
        num_shards=2,
        placement="round_robin",
        replicas=3,
        read_picker=read_picker,
    )
    sharded.build_index("rootpaths")
    sharded.build_index("datapaths")

    _diff_answers(
        single, sharded, MATRIX_STRATEGIES, workload, f"replicas/{read_picker}"
    )
    # The diff above issued enough uncached reads that the fan-out
    # demonstrably spread (round-robin cycles; the others may skew but
    # the counters must exist and sum to the reads served).
    report = sharded.describe()
    assert report["replica_reads"]["picker"] == read_picker
    assert report["replica_reads"]["total"] > 0
    if read_picker == "round_robin":
        for reads in report["replica_reads"]["per_shard"]:
            assert all(count > 0 for count in reads)

    # Mutations through the replicated write path keep the tiers equal.
    delta = (0.015, 3131)
    for tier in (single, sharded):
        tier.add_document(
            generate_xmark(scale=delta[0], seed=delta[1], name="replica-delta")
        )
    single.service.remove_document("doc-1")
    sharded.remove_document("doc-1")
    _diff_answers(
        single, sharded, MATRIX_STRATEGIES, workload, f"replicas/{read_picker}+churn"
    )
    sharded.close()


def test_rebalance_under_replicas_preserves_answers():
    """Moves between replicated shards write through to every replica."""
    parameters = _document_parameters(seed=41, count=3)
    workload = _workload()

    single = TwigIndexDatabase.from_documents(_skewed_documents(parameters))
    single.build_index("rootpaths")
    single.build_index("datapaths")
    sharded = ShardedQueryService.from_documents(
        _skewed_documents(parameters),
        num_shards=4,
        placement="hash",
        replicas=2,
        read_picker="round_robin",
    )
    sharded.build_index("rootpaths")
    sharded.build_index("datapaths")

    report = sharded.rebalance("size_balanced", compact=True)
    assert report.documents_moved > 0
    # Every replica of every shard agrees on its shard's watermark.
    for shard in sharded.collection.shards:
        assert len({replica.watermark for replica in shard.replicas}) == 1
    _diff_answers(
        single, sharded, MATRIX_STRATEGIES, workload, "replicas/rebalanced"
    )
    sharded.close()
