"""Tests for the repro-lint framework (tools/lint).

Each checker is exercised against a good/bad fixture pair under
``tests/lint_fixtures/``; the integration test asserts the real tree
stays clean, which is the same gate CI enforces.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.lint import (  # noqa: E402 - path bootstrap above
    CHECKER_CODES,
    META_CODE,
    collect_files,
    run_paths,
)
from tools.lint.findings import (  # noqa: E402
    Finding,
    apply_suppressions,
    scan_suppressions,
)
from tools.lint.reporters import render_json, render_text  # noqa: E402

FIXTURES = REPO_ROOT / "tests" / "lint_fixtures"


def lint(target: Path, select=None):
    return run_paths([str(target)], select=select)


def fired_codes(target: Path, select=None) -> set[str]:
    return {finding.code for finding in lint(target, select=select).findings}


# ---------------------------------------------------------------- checkers

PAIRS = [
    ("RPR001", FIXTURES / "rpr001_good.py", FIXTURES / "rpr001_bad.py", 1),
    ("RPR002", FIXTURES / "rpr002_good.py", FIXTURES / "rpr002_bad.py", 2),
    ("RPR003", FIXTURES / "indexes/good.py", FIXTURES / "indexes/bad.py", 2),
    ("RPR004", FIXTURES / "rpr004_good.py", FIXTURES / "rpr004_bad.py", 4),
    ("RPR005", FIXTURES / "rpr005_good.py", FIXTURES / "rpr005_bad.py", 4),
    ("RPR006", FIXTURES / "rpr006_good.py", FIXTURES / "rpr006_bad.py", 4),
]


@pytest.mark.parametrize(
    "code,good,bad,bad_count", PAIRS, ids=[p[0] for p in PAIRS]
)
def test_checker_fires_on_bad_and_stays_silent_on_good(
    code, good, bad, bad_count
):
    assert fired_codes(good, select=[code]) == set()
    result = lint(bad, select=[code])
    assert {f.code for f in result.findings} == {code}
    assert len(result.findings) == bad_count


def test_registry_sync_good_package_is_clean():
    assert fired_codes(FIXTURES / "registry_good", select=["RPR004"]) == set()


def test_registry_sync_bad_package_flags_both_directions():
    result = lint(FIXTURES / "registry_bad", select=["RPR004"])
    messages = "\n".join(f.message for f in result.findings)
    assert len(result.findings) == 2
    assert "DeltaIndex" in messages  # defined but unregistered
    assert "GhostIndex" in messages  # registered but undefined


def test_lock_discipline_allows_private_helpers():
    findings = lint(FIXTURES / "rpr001_good.py", select=["RPR001"]).findings
    assert findings == []


def test_lock_ordering_accepts_sorted_idiom():
    findings = lint(FIXTURES / "rpr002_good.py", select=["RPR002"]).findings
    assert findings == []


# ------------------------------------------------------------ suppressions


def test_suppression_round_trip_silences_with_justification():
    assert fired_codes(FIXTURES / "suppressed_ok.py") == set()


def test_malformed_suppressions_report_meta_code():
    result = lint(FIXTURES / "suppressed_bad.py")
    by_code = {}
    for finding in result.findings:
        by_code.setdefault(finding.code, []).append(finding)
    # Three hygiene findings: unknown code, missing justification, RPR000.
    assert len(by_code[META_CODE]) == 3
    # The RPR999 suppression does not cover RPR005, so it still fires.
    assert len(by_code["RPR005"]) == 1


def test_scan_suppressions_parses_codes_and_justification():
    source = "x = 1  # repro-lint: ignore[RPR001, RPR003] -- fixture reason\n"
    (suppression,) = scan_suppressions(source)
    assert suppression.codes == ("RPR001", "RPR003")
    assert suppression.justification == "fixture reason"
    assert not suppression.standalone
    assert suppression.covered_lines() == (1,)


def test_standalone_suppression_covers_next_line():
    source = "# repro-lint: ignore[RPR002] -- fixture reason\nx = 1\n"
    (suppression,) = scan_suppressions(source)
    assert suppression.standalone
    assert suppression.covered_lines() == (1, 2)


def test_apply_suppressions_never_drops_meta_findings():
    findings = [
        Finding(META_CODE, "f.py", 1, "hygiene"),
        Finding("RPR001", "f.py", 1, "real"),
    ]
    suppressions = scan_suppressions(
        "# repro-lint: ignore[RPR001] -- fixture reason\n"
    )
    kept = apply_suppressions(findings, suppressions)
    assert [finding.code for finding in kept] == [META_CODE]


# ------------------------------------------------------------- integration


def test_whole_tree_is_clean():
    result = run_paths([str(REPO_ROOT / "src"), str(REPO_ROOT / "tools")])
    assert result.findings == [], render_text(result)
    assert result.files_checked > 50


def test_collect_files_skips_pycache(tmp_path):
    (tmp_path / "__pycache__").mkdir()
    (tmp_path / "__pycache__" / "junk.py").write_text("x = 1\n")
    (tmp_path / "real.py").write_text("x = 1\n")
    files = collect_files([str(tmp_path)])
    assert [f.name for f in files] == ["real.py"]


def test_syntax_error_reports_meta_finding(tmp_path):
    broken = tmp_path / "broken.py"
    broken.write_text("def oops(:\n")
    result = run_paths([str(broken)])
    assert [f.code for f in result.findings] == [META_CODE]
    assert "could not parse" in result.findings[0].message


def test_json_reporter_shape():
    result = lint(FIXTURES / "rpr001_bad.py", select=["RPR001"])
    payload = json.loads(render_json(result))
    assert payload["version"] == 1
    assert payload["finding_count"] == 1
    (finding,) = payload["findings"]
    assert set(finding) == {"code", "path", "line", "message"}
    assert finding["code"] == "RPR001"


# --------------------------------------------------------------------- CLI


def run_cli(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "tools.lint", *args],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )


def test_cli_exit_codes_and_json_output(tmp_path):
    report = tmp_path / "lint-report.json"
    bad = (FIXTURES / "rpr001_bad.py").relative_to(REPO_ROOT)
    proc = run_cli(str(bad), "--select", "RPR001", "--json",
                   "--output", str(report))
    assert proc.returncode == 1
    payload = json.loads(proc.stdout)
    assert payload["finding_count"] == 1
    assert json.loads(report.read_text()) == payload


def test_cli_clean_run_exits_zero():
    proc = run_cli("src", "tools")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "clean" in proc.stdout


def test_cli_rejects_unknown_select_code():
    proc = run_cli("src", "--select", "RPR999")
    assert proc.returncode == 2
    assert "unknown code" in proc.stderr


def test_cli_list_codes_covers_registry():
    proc = run_cli("--list-codes")
    assert proc.returncode == 0
    for code in CHECKER_CODES:
        assert code in proc.stdout
