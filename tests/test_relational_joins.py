"""Unit and property tests for the join operators."""

from hypothesis import given, settings, strategies as st

from repro.relational import (
    HashJoin,
    IndexNestedLoopJoin,
    MergeJoin,
    RowSource,
    SemiJoin,
    intersect_id_lists,
)
from repro.storage import StatsCollector


def src(columns, rows):
    return RowSource(columns, rows, stats=StatsCollector())


def test_merge_join_basic():
    left = src(("id", "l"), [(1, "a"), (2, "b"), (2, "c")])
    right = src(("id", "r"), [(2, "x"), (3, "y")])
    joined = MergeJoin(left, right, "id", "id").rows()
    assert sorted(joined) == [(2, "b", 2, "x"), (2, "c", 2, "x")]


def test_hash_join_matches_merge_join():
    left = src(("id", "l"), [(i % 5, i) for i in range(20)])
    right = src(("id", "r"), [(i % 3, i) for i in range(9)])
    merge = sorted(MergeJoin(left, right, "id", "id").rows())
    left2 = src(("id", "l"), [(i % 5, i) for i in range(20)])
    right2 = src(("id", "r"), [(i % 3, i) for i in range(9)])
    hashed = sorted(HashJoin(left2, right2, "id", "id").rows())
    assert merge == hashed


def test_index_nested_loop_join_probes_per_outer_row():
    stats = StatsCollector()
    outer = RowSource(("id",), [(1,), (2,), (3,)], stats=stats)
    lookup = {1: [("one",)], 3: [("three",), ("III",)]}
    join = IndexNestedLoopJoin(outer, lambda key: lookup.get(key, ()), "id", ("name",))
    rows = join.rows()
    assert rows == [(1, "one"), (3, "three"), (3, "III")]
    assert stats.join_probes == 3


def test_semi_join_and_anti_semi_join():
    left = src(("id", "l"), [(1, "a"), (2, "b"), (3, "c")])
    right = src(("id",), [(2,), (9,)])
    assert SemiJoin(left, right, "id", "id").rows() == [(2, "b")]
    left2 = src(("id", "l"), [(1, "a"), (2, "b"), (3, "c")])
    right2 = src(("id",), [(2,), (9,)])
    assert SemiJoin(left2, right2, "id", "id", anti=True).rows() == [(1, "a"), (3, "c")]


def test_intersect_id_lists():
    stats = StatsCollector()
    assert intersect_id_lists([[1, 2, 3], [3, 2, 9], [2, 3, 4]], stats) == [2, 3]
    assert intersect_id_lists([], stats) == []
    assert intersect_id_lists([[1], []]) == []
    assert stats.join_comparisons > 0


def test_joins_handle_heterogeneous_and_null_keys():
    left = src(("id", "l"), [(None, "n"), ("x", "s"), (1, "i")])
    right = src(("id",), [(None,), ("x",), (2,)])
    joined = sorted(MergeJoin(left, right, "id", "id").rows(), key=str)
    assert (None, "n", None) in joined and ("x", "s", "x") in joined


rows_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=6), st.integers(min_value=0, max_value=50)),
    max_size=60,
)


@settings(max_examples=50, deadline=None)
@given(rows_strategy, rows_strategy)
def test_property_merge_equals_hash_equals_nested_loop(left_rows, right_rows):
    expected = sorted(
        lhs + rhs
        for lhs in left_rows
        for rhs in right_rows
        if lhs[0] == rhs[0]
    )
    merge = sorted(
        MergeJoin(src(("k", "l"), left_rows), src(("k", "r"), right_rows), "k", "k").rows()
    )
    hashed = sorted(
        HashJoin(src(("k", "l"), left_rows), src(("k", "r"), right_rows), "k", "k").rows()
    )
    assert merge == expected
    assert hashed == expected
