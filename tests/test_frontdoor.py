"""The concurrent front door: coalescing, admission, HTTP, lifecycles.

The contracts pinned here, roughly in pipeline order:

* **models** — typed validation rejects malformed bodies with a 400
  before any engine work; requests round-trip through their dict shape;
* **coalescing** — N concurrent identical queries produce exactly one
  engine execution and bit-identical answers; a generation bump (any
  write) splits the flight so a post-write arrival never rides a
  pre-write execution; a leader's failure fans out to its followers;
* **admission** — token buckets refill on an injected clock; quota and
  queue-full rejections are typed and *fast* (the queue never grows
  past its bound); drain stops new work and waits for admitted work;
* **scatter** — the pipelined and pooled pools return identical
  answers, and a failing shard leg propagates its error from either;
* **HTTP** — the stdlib server round-trips queries, serves the
  observability surface, and maps every rejection to its status code;
* **lifecycle** — services and the front door are context managers,
  and close is idempotent.

Event-loop tests run under ``asyncio.run`` directly (the container has
no pytest-asyncio); blocking points are gated on ``threading.Event`` so
every race in here is deterministic, never timing-based.
"""

from __future__ import annotations

import asyncio
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro import (
    FrontDoor,
    FrontDoorServer,
    QueryRequest,
    ShardedQueryService,
    TwigIndexDatabase,
)
from repro.datasets import generate_xmark
from repro.frontdoor import (
    AdmissionController,
    BadRequestError,
    DrainingError,
    QueueFullError,
    QuotaExceededError,
    SingleFlight,
    TokenBucket,
    error_body,
)
from repro.shard.scatter import SCATTER_MODES

XPATH = "/site/people/person/name"
OTHER_XPATHS = (
    "//person",
    "/site/open_auctions/open_auction",
    "//item/name",
    "/site/regions",
)


def _documents(count: int = 3, scale: float = 0.01):
    return [
        generate_xmark(scale=scale, seed=700 + i, name=f"fd-{i}")
        for i in range(count)
    ]


def _service(**kwargs) -> ShardedQueryService:
    service = ShardedQueryService.from_documents(
        _documents(), num_shards=2, placement="round_robin", **kwargs
    )
    service.build_index("rootpaths")
    return service


@pytest.fixture()
def service():
    with _service() as svc:
        yield svc


class _Gate:
    """Counts engine executions and holds them at a deterministic gate."""

    def __init__(self, service, blocking: bool = True):
        self.calls = 0
        self.release = threading.Event()
        if not blocking:
            self.release.set()
        self._lock = threading.Lock()
        self._real = service.execute
        service.execute = self._wrapped  # instance attr shadows the method

    def _wrapped(self, *args, **kwargs):
        with self._lock:
            self.calls += 1
        assert self.release.wait(timeout=30), "gate never released"
        return self._real(*args, **kwargs)


async def _until(condition, timeout: float = 10.0) -> None:
    for _ in range(int(timeout / 0.005)):
        if condition():
            return
        await asyncio.sleep(0.005)
    raise AssertionError(f"condition never held: {condition}")


# ----------------------------------------------------------------------
# Request/response models
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "body",
    [
        "not an object",
        {},
        {"xpath": ""},
        {"xpath": 7},
        {"xpath": XPATH, "bogus": 1},
        {"xpath": XPATH, "strategy": ""},
        {"xpath": XPATH, "tenant": 5},
        {"xpath": XPATH, "use_result_cache": "yes"},
        {"xpath": XPATH, "documents": "doc-1"},
        {"xpath": XPATH, "documents": [1, 2]},
        {"xpath": XPATH, "query_id": 9},
        {"xpath": XPATH, "options": [1]},
        {"xpath": XPATH, "options": {1: "x"}},
    ],
)
def test_request_validation_rejects(body):
    with pytest.raises(BadRequestError) as excinfo:
        QueryRequest.from_dict(body)
    assert excinfo.value.status == 400
    assert error_body(excinfo.value)["error"] == "bad-request"


def test_request_round_trips_through_dict():
    request = QueryRequest.from_dict(
        {
            "xpath": XPATH,
            "strategy": "rootpaths",
            "tenant": "acme",
            "use_result_cache": False,
            "documents": ["fd-0", "fd-2"],
            "query_id": "q-1",
            "options": {"limit": 5},
        }
    )
    assert request.documents == ("fd-0", "fd-2")
    assert QueryRequest.from_dict(request.to_dict()) == request


def test_rejection_bodies_carry_retry_after():
    body = error_body(QuotaExceededError("slow down", retry_after=1.25))
    assert body == {
        "error": "quota-exceeded",
        "status": 429,
        "message": "slow down",
        "retry_after": 1.25,
    }


# ----------------------------------------------------------------------
# Single-flight coalescing
# ----------------------------------------------------------------------
def test_concurrent_identical_queries_execute_once(service):
    """N identical concurrent queries: one engine run, identical bits."""
    clients = 12
    gate = _Gate(service)
    expected = None

    async def main():
        with FrontDoor(service, max_concurrency=8) as door:
            tasks = [
                asyncio.ensure_future(
                    door.handle(QueryRequest(xpath=XPATH, use_result_cache=False))
                )
                for _ in range(clients)
            ]
            # Every follower must have joined the leader's flight before
            # the engine is allowed to answer.
            await _until(lambda: door.flights.coalesced_hits == clients - 1)
            gate.release.set()
            responses = await asyncio.gather(*tasks)
            return responses

    responses = asyncio.run(main())
    assert gate.calls == 1
    assert service.queries_executed == 1
    answers = {response.ids for response in responses}
    assert len(answers) == 1
    assert sum(1 for r in responses if not r.coalesced) == 1
    assert sum(1 for r in responses if r.coalesced) == clients - 1
    expected = service.oracle(XPATH)
    assert answers == {tuple(expected)}


def test_coalescing_disabled_executes_every_request(service):
    gate = _Gate(service, blocking=False)

    async def main():
        with FrontDoor(service, coalesce=False, max_concurrency=8) as door:
            await asyncio.gather(
                *(
                    door.handle(QueryRequest(xpath=XPATH, use_result_cache=False))
                    for _ in range(5)
                )
            )
            return door.flights.uncoalesced

    uncoalesced = asyncio.run(main())
    assert gate.calls == 5
    assert uncoalesced == 5


def test_generation_bump_splits_the_flight(service):
    """A write between two arrivals must start a fresh flight."""
    gate = _Gate(service)

    async def main():
        with FrontDoor(service, max_concurrency=8) as door:
            generation_before = service.generation()
            first = asyncio.ensure_future(
                door.handle(QueryRequest(xpath=XPATH, use_result_cache=False))
            )
            await _until(lambda: gate.calls == 1)
            # The write lands while the first flight is still executing
            # (the gate holds it), bumping the generation fingerprint.
            service.add_document(
                generate_xmark(scale=0.01, seed=999, name="fd-delta")
            )
            assert service.generation() != generation_before
            second = asyncio.ensure_future(
                door.handle(QueryRequest(xpath=XPATH, use_result_cache=False))
            )
            await _until(lambda: gate.calls == 2)
            gate.release.set()
            responses = await asyncio.gather(first, second)
            return responses, door.flights.describe()

    (first, second), flights = asyncio.run(main())
    assert flights["flights_started"] == 2
    assert flights["coalesced_hits"] == 0
    assert not first.coalesced and not second.coalesced
    # Both executions ran after the write committed, so both answers
    # must be the post-write oracle (the second by contract; the first
    # because the sharded tier reads each shard's current snapshot).
    assert second.ids == tuple(service.oracle(XPATH))


def test_generation_stable_across_reads(service):
    before = service.generation()
    service.execute(XPATH)
    assert service.generation() == before
    service.add_document(generate_xmark(scale=0.01, seed=998, name="fd-gen"))
    assert service.generation() != before


def test_leader_failure_fans_out_to_followers():
    """Followers asked the same question; they get the same error."""

    async def main():
        flights = SingleFlight()
        started = asyncio.Event()
        release = asyncio.Event()

        async def boom():
            started.set()
            await release.wait()
            raise RuntimeError("leader failed")

        async def fly():
            return await flights.run("key", boom)

        leader = asyncio.ensure_future(fly())
        await started.wait()
        followers = [asyncio.ensure_future(fly()) for _ in range(3)]
        await _until(lambda: flights.coalesced_hits == 3)
        release.set()
        outcomes = await asyncio.gather(
            leader, *followers, return_exceptions=True
        )
        assert flights.flights_started == 1
        return outcomes

    outcomes = asyncio.run(main())
    assert len(outcomes) == 4
    assert all(
        isinstance(outcome, RuntimeError) and str(outcome) == "leader failed"
        for outcome in outcomes
    )


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------
def test_token_bucket_refills_on_injected_clock():
    clock = {"now": 0.0}
    bucket = TokenBucket(rate=2.0, burst=2.0, clock=lambda: clock["now"])
    assert bucket.try_acquire()
    assert bucket.try_acquire()
    assert not bucket.try_acquire()
    assert bucket.retry_after() == pytest.approx(0.5)
    clock["now"] = 0.5  # one token refilled
    assert bucket.try_acquire()
    assert not bucket.try_acquire()
    assert bucket.admitted == 3 and bucket.rejected == 2


def test_quota_rejects_with_retry_after(service):
    clock = {"now": 0.0}
    bucket = TokenBucket(rate=1.0, burst=1.0, clock=lambda: clock["now"])

    async def main():
        with FrontDoor(service, quotas={"acme": bucket}) as door:
            await door.handle(QueryRequest(xpath=XPATH, tenant="acme"))
            with pytest.raises(QuotaExceededError) as excinfo:
                await door.handle(QueryRequest(xpath=XPATH, tenant="acme"))
            assert excinfo.value.status == 429
            assert excinfo.value.retry_after == pytest.approx(1.0)
            # Another tenant is not throttled by acme's bucket.
            await door.handle(QueryRequest(xpath=XPATH, tenant="other"))
            clock["now"] = 1.0
            await door.handle(QueryRequest(xpath=XPATH, tenant="acme"))
            return door.describe()

    report = asyncio.run(main())
    assert report["admission"]["rejected_quota"] == 1
    assert report["requests_rejected"] == 1
    assert report["requests_served"] == 3


def test_queue_full_is_a_fast_typed_reject(service):
    """Beyond max_concurrency + max_queue the door sheds, never buffers."""
    gate = _Gate(service)

    async def main():
        with FrontDoor(
            service, coalesce=False, max_concurrency=1, max_queue=1
        ) as door:
            tasks = []
            for index in range(4):
                tasks.append(
                    asyncio.ensure_future(
                        door.handle(
                            QueryRequest(
                                xpath=OTHER_XPATHS[index],
                                use_result_cache=False,
                            )
                        )
                    )
                )
                # Deterministic arrival order: each request reaches its
                # admission decision before the next one is created.
                await _until(
                    lambda want=index + 1: (
                        door.admission.admitted
                        + door.admission.queue_depth
                        + door.admission.rejected_queue
                    )
                    >= want
                )
            assert door.admission.in_flight == 1
            assert door.admission.queue_depth == 1
            gate.release.set()
            outcomes = await asyncio.gather(*tasks, return_exceptions=True)
            return outcomes, door.admission.describe()

    outcomes, admission = asyncio.run(main())
    rejected = [o for o in outcomes if isinstance(o, QueueFullError)]
    served = [o for o in outcomes if not isinstance(o, BaseException)]
    assert len(rejected) == 2 and len(served) == 2
    assert all(error.status == 503 for error in rejected)
    assert admission["rejected_queue"] == 2
    assert admission["queue_peak"] == 1  # never grew past max_queue
    assert admission["in_flight"] == 0 and admission["queue_depth"] == 0


def test_drain_stops_new_work_and_waits_for_admitted(service):
    gate = _Gate(service)

    async def main():
        with FrontDoor(service, coalesce=False, max_concurrency=2) as door:
            running = asyncio.ensure_future(
                door.handle(QueryRequest(xpath=XPATH, use_result_cache=False))
            )
            await _until(lambda: gate.calls == 1)
            drainer = asyncio.ensure_future(door.drain())
            await _until(lambda: door.admission.draining)
            with pytest.raises(DrainingError) as excinfo:
                await door.handle(QueryRequest(xpath="//person"))
            assert excinfo.value.status == 503
            assert not drainer.done()  # still waiting on admitted work
            gate.release.set()
            response = await running
            await drainer
            assert door.admission.in_flight == 0
            return response

    response = asyncio.run(main())
    assert response.ids == tuple(service.oracle(XPATH))


def test_admission_controller_validates_bounds():
    with pytest.raises(ValueError):
        AdmissionController(max_concurrency=0)
    with pytest.raises(ValueError):
        AdmissionController(max_queue=-1)
    with pytest.raises(ValueError):
        TokenBucket(rate=0.0)


# ----------------------------------------------------------------------
# Scatter pools
# ----------------------------------------------------------------------
@pytest.mark.parametrize("mode", SCATTER_MODES)
def test_scatter_failure_propagates_and_service_survives(mode):
    with ShardedQueryService.from_documents(
        _documents(4), num_shards=4, placement="round_robin", scatter=mode
    ) as svc:
        svc.build_index("rootpaths")
        expected = svc.execute(XPATH, use_result_cache=False).ids
        real = svc.collection.shards[1].execute

        def boom(*args, **kwargs):
            raise RuntimeError("shard 1 exploded")

        svc.collection.shards[1].execute = boom
        with pytest.raises(RuntimeError, match="shard 1 exploded"):
            svc.execute(XPATH, use_result_cache=False)
        # The pool survives a failed scatter and keeps serving.
        svc.collection.shards[1].execute = real
        assert svc.execute(XPATH, use_result_cache=False).ids == expected


def test_scatter_modes_answer_identically():
    results = {}
    for mode in SCATTER_MODES:
        with ShardedQueryService.from_documents(
            _documents(4), num_shards=4, placement="round_robin", scatter=mode
        ) as svc:
            svc.build_index("rootpaths")
            results[mode] = {
                xpath: svc.execute(xpath, use_result_cache=False).ids
                for xpath in (XPATH,) + OTHER_XPATHS
            }
            assert svc.describe()["scatter"] == mode
    assert results["pipelined"] == results["pooled"]


# ----------------------------------------------------------------------
# The HTTP layer
# ----------------------------------------------------------------------
def _http(method: str, url: str, body=None, timeout: float = 10.0):
    """One blocking HTTP call; returns (status, decoded-or-text body)."""
    data = json.dumps(body).encode("utf-8") if body is not None else None
    request = urllib.request.Request(url, data=data, method=method)
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            raw = response.read().decode("utf-8")
            status = response.status
    except urllib.error.HTTPError as error:
        raw = error.read().decode("utf-8")
        status = error.code
    try:
        return status, json.loads(raw)
    except json.JSONDecodeError:
        return status, raw


def test_http_server_end_to_end(service):
    async def main():
        door = FrontDoor(service, max_concurrency=4)
        server = FrontDoorServer(door)
        host, port = await server.start()
        base = f"http://{host}:{port}"
        loop = asyncio.get_running_loop()

        def client():
            checks = {}
            checks["query"] = _http("POST", f"{base}/query", {"xpath": XPATH})
            checks["scoped"] = _http(
                "POST",
                f"{base}/query",
                {"xpath": XPATH, "documents": ["fd-0"], "use_result_cache": False},
            )
            checks["bad_json"] = _http("POST", f"{base}/query", "not json")
            checks["unknown_field"] = _http(
                "POST", f"{base}/query", {"xpath": XPATH, "wat": 1}
            )
            checks["parse_error"] = _http(
                "POST", f"{base}/query", {"xpath": "///"}
            )
            checks["get_query"] = _http("GET", f"{base}/query")
            checks["not_found"] = _http("GET", f"{base}/nope")
            checks["healthz"] = _http("GET", f"{base}/healthz")
            checks["describe"] = _http("GET", f"{base}/describe")
            checks["metrics"] = _http("GET", f"{base}/metrics")
            return checks

        checks = await loop.run_in_executor(None, client)
        # Drain through the API, then observe the draining responses.
        await door.drain()

        def drained_client():
            return {
                "healthz": _http("GET", f"{base}/healthz"),
                "query": _http("POST", f"{base}/query", {"xpath": XPATH}),
            }

        checks["drained"] = await loop.run_in_executor(None, drained_client)
        await server.stop(drain=False)
        return checks

    checks = asyncio.run(main())
    status, body = checks["query"]
    assert status == 200
    assert tuple(body["ids"]) == tuple(service.oracle(XPATH))
    assert body["cardinality"] == len(body["ids"])

    status, scoped = checks["scoped"]
    assert status == 200
    assert 0 < scoped["cardinality"] < len(body["ids"])

    assert checks["bad_json"][0] == 400
    assert checks["bad_json"][1]["error"] == "bad-request"
    assert checks["unknown_field"][0] == 400
    assert checks["parse_error"] == (
        400,
        checks["parse_error"][1],
    ) and checks["parse_error"][1]["error"] == "query-error"
    assert checks["get_query"][0] == 405
    assert checks["not_found"][0] == 404
    assert checks["healthz"] == (200, checks["healthz"][1])
    assert checks["healthz"][1]["status"] == "ok"
    assert checks["describe"][1]["coalesce"] is True
    assert "repro_frontdoor_latency_seconds" in checks["metrics"][1]
    assert "repro_frontdoor_requests_total" in checks["metrics"][1]

    drained = checks["drained"]
    assert drained["healthz"][0] == 503
    assert drained["query"] == (503, drained["query"][1])
    assert drained["query"][1]["error"] == "draining"


def test_http_documents_scope_rejected_on_single_engine():
    database = TwigIndexDatabase.from_documents(_documents(1))
    database.build_index("rootpaths")

    async def main():
        with database.service as svc, FrontDoor(svc) as door:
            response = await door.handle(QueryRequest(xpath=XPATH))
            with pytest.raises(BadRequestError, match="documents"):
                await door.handle(
                    QueryRequest(xpath=XPATH, documents=("fd-0",))
                )
            return response

    response = asyncio.run(main())
    assert response.ids == tuple(
        database.service.execute(XPATH).ids
    )


# ----------------------------------------------------------------------
# Lifecycle
# ----------------------------------------------------------------------
def test_services_are_context_managers():
    with ShardedQueryService.from_documents(_documents(2), num_shards=2) as svc:
        svc.build_index("rootpaths")
        assert svc.execute(XPATH).cardinality >= 0
    svc.close()  # idempotent after the block already closed it

    database = TwigIndexDatabase.from_documents(_documents(1))
    with database.service as single:
        assert single.execute(XPATH).cardinality >= 0
    single.close()


def test_frontdoor_telemetry_counts_requests(service):
    async def main():
        with FrontDoor(service) as door:
            for _ in range(3):
                await door.handle(QueryRequest(xpath=XPATH))
            return door.describe(), service.metrics_text()

    report, exposition = asyncio.run(main())
    assert report["requests_served"] == 3
    assert "repro_frontdoor_latency_seconds" in exposition
    served = [
        line
        for line in exposition.splitlines()
        if line.startswith("repro_frontdoor_requests_total")
    ]
    assert served, exposition
