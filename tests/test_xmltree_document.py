"""Unit tests for documents, databases and the TreeBuilder."""

import pytest

from repro.datasets import book_document, build_book_with_builder
from repro.errors import DocumentError
from repro.xmltree import (
    Document,
    Node,
    NodeKind,
    TreeBuilder,
    VIRTUAL_ROOT_ID,
    build_database,
)


def test_document_rejects_value_root():
    with pytest.raises(DocumentError):
        Document(Node(NodeKind.VALUE, "x"))


def test_database_assigns_document_order_ids(book_xmldb):
    ids = [n.node_id for n in book_xmldb.iter_nodes()]
    assert ids == sorted(ids)
    assert ids[0] == 1
    # Ids are unique and dense.
    assert len(set(ids)) == len(ids)


def test_database_node_lookup(book_xmldb):
    root = book_xmldb.documents[0].root
    assert book_xmldb.node(root.node_id) is root
    assert root.node_id in book_xmldb
    with pytest.raises(DocumentError):
        book_xmldb.node(10_000)


def test_virtual_root_parents_documents(book_xmldb):
    root = book_xmldb.documents[0].root
    assert root.parent is book_xmldb.virtual_root
    assert book_xmldb.virtual_root.node_id == VIRTUAL_ROOT_ID


def test_counts_and_depth(book_xmldb):
    assert book_xmldb.node_count == 17
    assert book_xmldb.value_count == 10
    assert book_xmldb.max_depth == 4
    counts = book_xmldb.label_counts()
    assert counts["author"] == 3
    assert counts["title"] == 2
    assert book_xmldb.distinct_schema_path_count() == 11


def test_multiple_documents_share_id_space():
    db = build_database([book_document("a"), book_document("b")])
    ids = [n.node_id for n in db.iter_structural()]
    assert len(ids) == len(set(ids)) == 34
    assert len(db.documents) == 2


def test_iter_by_label(book_xmldb):
    authors = list(book_xmldb.iter_by_label("author"))
    assert len(authors) == 3
    assert all(a.label == "author" for a in authors)


def test_tree_builder_matches_parsed_document():
    parsed = book_document()
    built = build_book_with_builder()
    parsed_labels = [
        (n.kind, n.label) for n in parsed.root.iter_subtree()
    ]
    built_labels = [(n.kind, n.label) for n in built.root.iter_subtree()]
    assert parsed_labels == built_labels


def test_tree_builder_attributes_and_text():
    builder = TreeBuilder("person")
    builder.attribute("id", "p1")
    builder.child("name", text="Ada")
    with builder.element("profile"):
        builder.text("freeform")
    document = builder.build("person-doc")
    labels = [(n.kind.value, n.label) for n in document.root.iter_subtree()]
    assert ("attribute", "id") in labels
    assert ("value", "p1") in labels
    assert ("value", "freeform") in labels
    assert document.name == "person-doc"


def test_estimated_data_size_positive(book_xmldb):
    assert book_xmldb.estimated_data_size_bytes() > 100
