"""Unit tests for relational plan operators."""

import pytest

from repro.errors import PlanningError
from repro.relational import (
    Distinct,
    Filter,
    HeapScan,
    Limit,
    Materialize,
    Project,
    RowSchema,
    RowSource,
    Sort,
    column_equals,
)
from repro.storage import HeapFile, StatsCollector


def source(rows, columns=("a", "b")):
    return RowSource(columns, rows, stats=StatsCollector())


def test_schema_position_and_project():
    schema = RowSchema(("x", "y", "z"))
    assert schema.position("y") == 1
    assert schema.positions(["z", "x"]) == [2, 0]
    assert tuple(schema.project(("z",))) == ("z",)
    with pytest.raises(PlanningError):
        schema.position("missing")
    with pytest.raises(PlanningError):
        RowSchema(("a", "a"))


def test_schema_concat_renames_duplicates():
    left = RowSchema(("id", "v"))
    right = RowSchema(("id", "w"))
    combined = left.concat(right)
    assert combined.columns == ("id", "v", "id_r", "w")


def test_row_source_and_project():
    rows = [(1, "x"), (2, "y")]
    plan = Project(source(rows), ["b"])
    assert plan.rows() == [("x",), ("y",)]


def test_filter_and_column_equals():
    rows = [(1, "x"), (2, "y"), (2, "z")]
    base = source(rows)
    plan = Filter(base, column_equals(base.schema, "a", 2))
    assert plan.rows() == [(2, "y"), (2, "z")]


def test_distinct_preserves_first_seen_order():
    plan = Distinct(source([(1, "x"), (1, "x"), (2, "y"), (1, "x")]))
    assert plan.rows() == [(1, "x"), (2, "y")]


def test_sort_and_limit():
    rows = [(3, "c"), (1, "a"), (2, "b")]
    plan = Limit(Sort(source(rows), ["a"]), 2)
    assert plan.rows() == [(1, "a"), (2, "b")]


def test_materialize_evaluates_child_once():
    heap = HeapFile(stats=StatsCollector())
    heap.extend([(i,) for i in range(5)])
    stats = StatsCollector()
    scan = HeapScan(heap, ("v",), stats=stats)
    plan = Materialize(scan)
    first = plan.rows()
    pages_after_first = heap.stats.heap_page_reads
    second = plan.rows()
    assert first == second == [(i,) for i in range(5)]
    assert heap.stats.heap_page_reads == pages_after_first


def test_explain_mentions_every_operator():
    plan = Distinct(Project(source([(1, "x")]), ["a"]))
    text = plan.explain()
    assert "Distinct" in text and "Project" in text and "RowSource" in text


def test_tuples_produced_counter():
    stats = StatsCollector()
    plan = RowSource(("a",), [(1,), (2,)], stats=stats)
    list(plan)
    assert stats.tuples_produced == 2
