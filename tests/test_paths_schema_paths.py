"""Unit and property tests for schema paths and pattern placement matching."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.paths import (
    PathPattern,
    iter_rooted_label_paths,
    match_positions,
    matches,
    matching_schema_paths,
    reverse_path,
)


def test_reverse_path():
    assert reverse_path(("book", "allauthors", "author", "fn")) == (
        "fn",
        "author",
        "allauthors",
        "book",
    )
    assert reverse_path(()) == ()


def test_pattern_requires_segments():
    with pytest.raises(ValueError):
        PathPattern(())
    with pytest.raises(ValueError):
        PathPattern(((),))


def test_pattern_properties():
    pattern = PathPattern((("site",), ("item", "quantity")), anchored=True)
    assert pattern.labels == ("site", "item", "quantity")
    assert pattern.length == 3
    assert not pattern.is_single_segment
    assert pattern.trailing_segment == ("item", "quantity")


def test_anchored_single_segment_requires_exact_path():
    pattern = PathPattern((("book", "title"),), anchored=True)
    assert matches(pattern, ("book", "title"))
    assert not matches(pattern, ("site", "book", "title"))
    assert not matches(pattern, ("book", "title", "extra"))


def test_unanchored_single_segment_is_suffix_match():
    pattern = PathPattern((("author", "fn"),), anchored=False)
    assert matches(pattern, ("book", "allauthors", "author", "fn"))
    assert matches(pattern, ("author", "fn"))
    assert not matches(pattern, ("author", "fn", "x"))
    assert not matches(pattern, ("book", "author", "ln"))


def test_descendant_gap_allows_direct_child():
    pattern = PathPattern((("book",), ("author",)), anchored=True)
    # '//' includes direct children...
    assert matches(pattern, ("book", "author"))
    # ... and deeper descendants.
    assert matches(pattern, ("book", "allauthors", "author"))
    assert not matches(pattern, ("book", "allauthors", "editor"))


def test_match_positions_reports_all_placements():
    pattern = PathPattern((("a",), ("a", "b")), anchored=True)
    placements = match_positions(pattern, ("a", "a", "a", "b"))
    # The leading 'a' is fixed at 0, the trailing 'a b' is fixed at the end.
    assert placements == [(0, 2, 3)]
    ambiguous = PathPattern((("a",), ("b",)), anchored=False)
    assert len(match_positions(ambiguous, ("a", "a", "b"))) == 2


def test_match_positions_alignment_with_ids():
    pattern = PathPattern((("book",), ("author", "fn")), anchored=True)
    path = ("book", "allauthors", "author", "fn")
    (placement,) = match_positions(pattern, path)
    assert [path[i] for i in placement] == ["book", "author", "fn"]


def test_matching_schema_paths_counts_recursive_fanout():
    paths = [
        ("site", "regions", region, "item", "location")
        for region in ("namerica", "europe", "asia", "africa", "australia", "samerica")
    ] + [("site", "people", "person", "name")]
    pattern = PathPattern((("site",), ("item", "location")), anchored=True)
    assert len(matching_schema_paths(pattern, paths)) == 6


def test_iter_rooted_label_paths(book_xmldb):
    pairs = list(iter_rooted_label_paths(book_xmldb))
    assert (("book",), (1,)) in pairs
    labels = {p for p, _ids in pairs}
    assert ("book", "allauthors", "author", "fn") in labels
    # One pair per structural node.
    assert len(pairs) == book_xmldb.node_count


label = st.sampled_from(["a", "b", "c", "d"])


@settings(max_examples=60, deadline=None)
@given(
    st.lists(label, min_size=1, max_size=7),
    st.lists(st.lists(label, min_size=1, max_size=2), min_size=1, max_size=3),
    st.booleans(),
)
def test_property_placements_are_valid(path, segments, anchored):
    pattern = PathPattern(tuple(tuple(s) for s in segments), anchored=anchored)
    for placement in match_positions(pattern, tuple(path)):
        # Labels under the placement match the pattern labels.
        assert tuple(path[i] for i in placement) == pattern.labels
        # Positions strictly increase and the last one hits the path end.
        assert list(placement) == sorted(set(placement))
        assert placement[-1] == len(path) - 1
        if anchored:
            assert placement[0] == 0
