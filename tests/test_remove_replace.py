"""Document removal & replacement: differential harness and regressions.

The tentpole invariant of the removal extension: for **any interleaving
of add, remove and replace**, a database whose indexes are maintained
incrementally (one :meth:`~repro.indexes.base.PathIndex.update` or
:meth:`~repro.indexes.base.PathIndex.remove` per mutation) must answer
every query identically to a database that replayed the same mutation
sequence raw and built every index **from scratch** at the end.  The
harness replays randomized mutation sequences against both databases
and diffs the answers of every strategy (and ``auto``) across a
Figure-12-style generated workload.

The sharded tier invariant rides along: a
:class:`~repro.shard.ShardedQueryService` that performs the same
add/remove/replace sequence stays answer-identical to the single
engine, across shard counts and placement policies.

Also pinned here:

* the stale-index regression for removals — every strategy must stop
  returning the removed document's nodes,
* exact catalog statistics (``entry_count``, ``value_counts``, the
  DataGuide skeleton, ``edge_count``) after removals,
* which indexes remove in place vs fall back to a rebuild,
* service generations treating removals as incremental updates
  (results dropped, plans and strategy instances kept),
* tag-dictionary refcount reclamation,
* error handling for unknown / ambiguous document names.
"""

from __future__ import annotations

import random

import pytest

from repro import ShardedQueryService, TwigIndexDatabase
from repro.datasets import book_document, generate_xmark
from repro.errors import DocumentError
from repro.planner import DEFAULT_STRATEGIES
from repro.service.service import AUTO_STRATEGY
from repro.storage.stats import maintenance_cost

#: Every index of the family, by registry name.
ALL_INDEXES = (
    "rootpaths",
    "datapaths",
    "edge",
    "dataguide",
    "index_fabric",
    "asr",
    "join_index",
)

#: The indexes with true incremental deletion.
INCREMENTAL_REMOVAL = ("rootpaths", "datapaths", "edge", "dataguide")


def _workload() -> list[str]:
    """A compact Figure-12-style workload (paths, twigs, recursion)."""
    from repro.workloads.generator import branch_count_sweep, generate_twig

    queries = [
        generated.xpath
        for selectivity in ("selective", "unselective")
        for generated in branch_count_sweep(selectivity, max_branches=2)
    ]
    queries.append(generate_twig(1, ["selective"], branch_depth="low").xpath)
    queries.extend(
        [
            "/site/people/person/name",
            "//person[name='Hagen Artosi']",
            "/site/open_auctions/open_auction/time",
        ]
    )
    return queries


def _make_document(spec: tuple[float, int, str]):
    scale, seed, name = spec
    return generate_xmark(scale=scale, seed=seed, name=name)


def _mutation_script(sequence_seed: int) -> list[tuple]:
    """A randomized add/remove/replace script over named documents.

    Each op is ``("add", spec)``, ``("remove", name)`` or
    ``("replace", name, spec)`` where ``spec`` regenerates the same
    document deterministically — the two databases under diff replay
    the identical script on fresh document objects.
    """
    rng = random.Random(sequence_seed)
    ordinal = 3
    live = ["d0", "d1", "d2"]
    script: list[tuple] = []
    for _ in range(4):
        roll = rng.random()
        if roll < 0.4 and len(live) > 1:
            victim = live.pop(rng.randrange(len(live)))
            script.append(("remove", victim))
        elif roll < 0.75 and live:
            victim = live[rng.randrange(len(live))]
            spec = (rng.choice([0.015, 0.02]), rng.randrange(1, 10_000), victim)
            script.append(("replace", victim, spec))
        else:
            name = f"d{ordinal}"
            ordinal += 1
            live.append(name)
            spec = (rng.choice([0.015, 0.02]), rng.randrange(1, 10_000), name)
            script.append(("add", spec))
    return script


def _initial_specs(sequence_seed: int) -> list[tuple[float, int, str]]:
    rng = random.Random(sequence_seed + 77_000)
    return [
        (rng.choice([0.02, 0.03]), rng.randrange(1, 10_000), f"d{i}")
        for i in range(3)
    ]


def _apply(database: TwigIndexDatabase, op: tuple) -> None:
    if op[0] == "add":
        database.add_document(_make_document(op[1]))
    elif op[0] == "remove":
        database.remove_document(op[1])
    else:
        database.replace_document(op[1], _make_document(op[2]))


def _apply_raw(database: TwigIndexDatabase, op: tuple) -> None:
    """Replay one op on the raw database, bypassing index maintenance."""
    if op[0] == "add":
        database.db.add_document(_make_document(op[1]))
    elif op[0] == "remove":
        database.db.remove_document(op[1])
    else:
        database.db.replace_document(op[1], _make_document(op[2]))


# ----------------------------------------------------------------------
# The differential harness
# ----------------------------------------------------------------------
@pytest.mark.parametrize("sequence_seed", [11, 23])
def test_incremental_remove_replace_equals_rebuild(sequence_seed):
    """Any add/remove/replace interleaving == rebuilt-from-scratch."""
    initial = _initial_specs(sequence_seed)
    script = _mutation_script(sequence_seed)
    workload = _workload()

    incremental = TwigIndexDatabase.from_documents(
        [_make_document(spec) for spec in initial]
    )
    for name in ALL_INDEXES:
        incremental.build_index(name)

    applied: list[tuple] = []
    for op in script:
        _apply(incremental, op)
        applied.append(op)

        # The rebuilt replica replays the same history raw (ids must
        # match, including the holes removals leave), then builds every
        # index from scratch over the post-mutation state.
        rebuilt = TwigIndexDatabase.from_documents(
            [_make_document(spec) for spec in initial]
        )
        for replay_op in applied:
            _apply_raw(rebuilt, replay_op)
        for name in ALL_INDEXES:
            rebuilt.build_index(name)

        assert incremental.db.document_spans() == rebuilt.db.document_spans()
        for xpath in workload:
            expected = rebuilt.oracle(xpath)
            assert incremental.oracle(xpath) == expected, (op, xpath)
            for strategy in DEFAULT_STRATEGIES + (AUTO_STRATEGY,):
                incremental_ids = incremental.query(xpath, strategy=strategy).ids
                rebuilt_ids = rebuilt.query(xpath, strategy=strategy).ids
                assert incremental_ids == rebuilt_ids == expected, (
                    f"after {op}, {strategy}, {xpath}: "
                    f"incremental={incremental_ids} rebuilt={rebuilt_ids} "
                    f"oracle={expected}"
                )


@pytest.mark.parametrize(
    "num_shards,placement", [(2, "hash"), (4, "round_robin"), (3, "size_balanced")]
)
def test_sharded_remove_replace_equals_single_engine(num_shards, placement):
    """Sharded removals/replacements stay answer-identical to one engine."""
    initial = _initial_specs(5)
    script = _mutation_script(5)
    workload = _workload()

    single = TwigIndexDatabase.from_documents(
        [_make_document(spec) for spec in initial]
    )
    sharded = ShardedQueryService(num_shards=num_shards, placement=placement)
    for spec in initial:
        sharded.add_document(_make_document(spec))
    single.build_index("rootpaths")
    single.build_index("datapaths")
    sharded.build_index("rootpaths")
    sharded.build_index("datapaths")

    def apply_sharded(op: tuple) -> None:
        if op[0] == "add":
            sharded.add_document(_make_document(op[1]))
        elif op[0] == "remove":
            sharded.remove_document(op[1])
        else:
            sharded.replace_document(op[1], _make_document(op[2]))

    try:
        for op in script:
            _apply(single, op)
            apply_sharded(op)
            for xpath in workload:
                expected = single.oracle(xpath)
                assert sharded.oracle(xpath) == expected, (op, xpath)
                for strategy in ("rootpaths", "datapaths", AUTO_STRATEGY):
                    sharded_ids = sharded.execute(xpath, strategy=strategy).ids
                    single_ids = single.query(xpath, strategy=strategy).ids
                    assert sharded_ids == single_ids == expected, (
                        f"after {op}, {strategy}, {xpath}: "
                        f"sharded={sharded_ids} single={single_ids}"
                    )
    finally:
        sharded.close()


# ----------------------------------------------------------------------
# Regressions and exactness
# ----------------------------------------------------------------------
def test_remove_document_after_build_index_is_not_stale():
    """Every strategy must stop returning the removed document's nodes."""
    db = TwigIndexDatabase.from_documents(
        [book_document(name="keep"), book_document(name="drop")]
    )
    for name in ALL_INDEXES:
        db.build_index(name)
    assert len(db.query("/book/title", strategy="rootpaths").ids) == 2

    removed = db.remove_document("drop")
    assert removed.name == "drop"
    expected = db.oracle("/book/title")
    assert len(expected) == 1
    for strategy in DEFAULT_STRATEGIES + (AUTO_STRATEGY,):
        ids = db.query("/book/title", strategy=strategy).ids
        assert ids == expected, f"{strategy} still stale: {ids}"


def test_replace_document_swaps_content_and_keeps_name():
    db = TwigIndexDatabase.from_xml(
        "<book><title>Old Title</title></book>", name="b"
    )
    for name in ("rootpaths", "datapaths", "edge", "dataguide"):
        db.build_index(name)
    replacement = "<book><title>New Title</title><year>2005</year></book>"
    added = db.replace_document("b", replacement)
    assert added.name == "b"
    assert len(db.db.documents) == 1
    for strategy in ("rootpaths", "datapaths", "edge", AUTO_STRATEGY):
        assert db.query("/book[title='Old Title']", strategy=strategy).ids == []
        assert len(db.query("/book[title='New Title']", strategy=strategy).ids) == 1
        assert len(db.query("/book/year", strategy=strategy).ids) == 1


def test_incremental_removal_flags_match_the_documented_family():
    """RP/DP/Edge/DataGuide remove in place; the rest rebuild."""
    db = TwigIndexDatabase.from_documents(
        [book_document(name="a"), book_document(name="b")]
    )
    for name in ALL_INDEXES:
        db.build_index(name)
    detached = db.db.remove_document("b")
    report = db.engine.maintain_indexes(detached, removal=True)
    assert report == {
        name: (name in INCREMENTAL_REMOVAL) for name in ALL_INDEXES
    }


def test_removal_preserves_catalog_statistics_exactly():
    """Counts and skeletons equal a from-scratch build after removal."""
    specs = [(0.03, 5, "d0"), (0.02, 9, "d1"), (0.02, 31, "d2")]

    incremental = TwigIndexDatabase.from_documents(
        [_make_document(spec) for spec in specs]
    )
    for name in ("rootpaths", "datapaths", "edge", "dataguide"):
        incremental.build_index(name)
    incremental.remove_document("d1")

    rebuilt = TwigIndexDatabase.from_documents(
        [_make_document(spec) for spec in specs]
    )
    rebuilt.db.remove_document("d1")
    for name in ("rootpaths", "datapaths", "edge", "dataguide"):
        rebuilt.build_index(name)

    for name in ("rootpaths", "datapaths"):
        left, right = incremental.indexes[name], rebuilt.indexes[name]
        assert left.entry_count == right.entry_count, name
        assert left.value_counts == right.value_counts, name
    assert (
        incremental.indexes["edge"].edge_count == rebuilt.indexes["edge"].edge_count
    )
    assert sorted(incremental.indexes["dataguide"].distinct_paths()) == sorted(
        rebuilt.indexes["dataguide"].distinct_paths()
    )
    assert (
        incremental.indexes["dataguide"].entry_count
        == rebuilt.indexes["dataguide"].entry_count
    )


def test_incremental_remove_is_cheaper_than_rebuild_in_maintenance_currency():
    base = generate_xmark(scale=0.05, seed=7, name="base")
    doomed = generate_xmark(scale=0.01, seed=42, name="doomed")
    db = TwigIndexDatabase.from_documents([base, doomed])
    for name in INCREMENTAL_REMOVAL:
        db.build_index(name)
    build_cost = maintenance_cost(db.stats.snapshot())

    before = db.stats.snapshot()
    db.remove_document("doomed")
    removal_diff = db.stats.diff(before)
    removal_cost = maintenance_cost(removal_diff)
    assert removal_diff["btree_deletes"] > 0
    assert 0 < removal_cost < build_cost, (removal_cost, build_cost)


def test_service_generation_treats_removal_as_incremental():
    """Removal drops results/choices but keeps plans and instances."""
    db = TwigIndexDatabase.from_documents(
        [book_document(name="a"), book_document(name="b")]
    )
    db.build_index("rootpaths")
    service = db.service
    service.execute("/book/title", strategy=AUTO_STRATEGY)
    assert len(service.plan_cache) == 1
    result_before = service.result_invalidations
    full_before = service.full_invalidations

    service.remove_document("b")
    assert service.result_invalidations == result_before + 1
    assert service.full_invalidations == full_before
    assert len(service.plan_cache) == 1  # parsed plans survive
    assert len(service.result_cache) == 0
    report = service.describe()
    assert report["maintenance"]["documents_removed"] == 1


def test_tag_dictionary_refcounts_are_reclaimed():
    """A tag whose last document leaves becomes unknown again."""
    db = TwigIndexDatabase.from_xml("<book><title>X</title></book>", name="a")
    db.load_xml("<zine><headline>Y</headline></zine>", name="z")
    for name in ("rootpaths", "datapaths"):
        db.build_index(name)
    assert db.db.tags.id_of("headline") is not None
    size_with = db.db.tags.estimated_size_bytes()

    db.remove_document("z")
    assert db.db.tags.id_of("headline") is None
    assert db.db.tags.estimated_size_bytes() < size_with
    for strategy in ("rootpaths", "datapaths"):
        assert db.query("/zine/headline", strategy=strategy).ids == []
    # Re-adding revives the tag under its original id.
    db.load_xml("<zine><headline>Z</headline></zine>", name="z2")
    assert db.db.tags.id_of("headline") is not None
    assert len(db.query("/zine/headline", strategy="rootpaths").ids) == 1


def test_remove_unknown_and_ambiguous_names_raise():
    db = TwigIndexDatabase.from_documents(
        [book_document(name="dup"), book_document(name="dup")]
    )
    with pytest.raises(DocumentError):
        db.remove_document("missing")
    with pytest.raises(DocumentError):
        db.remove_document("dup")
    # Passing the Document object disambiguates.
    victim = db.db.documents[0]
    removed = db.remove_document(victim)
    assert removed is victim
    assert len(db.db.documents) == 1


def test_sharded_remove_unknown_and_ambiguous_raise():
    sharded = ShardedQueryService(num_shards=2, placement="round_robin")
    try:
        sharded.add_document(book_document(name="dup"))
        sharded.add_document(book_document(name="dup"))
        with pytest.raises(DocumentError):
            sharded.remove_document("missing")
        with pytest.raises(DocumentError):
            sharded.remove_document("dup")
    finally:
        sharded.close()


def test_sharded_removal_invalidates_owning_shard_only():
    sharded = ShardedQueryService(num_shards=2, placement="round_robin")
    try:
        sharded.add_document(book_document(name="a"))  # shard 0
        sharded.add_document(book_document(name="b"))  # shard 1
        sharded.build_index("rootpaths")
        sharded.execute("/book/title", strategy="rootpaths")
        shard0, shard1 = sharded.collection.shards
        before = (
            shard0.service.result_invalidations,
            shard1.service.result_invalidations,
        )
        placement = sharded.remove_document("b")
        assert placement.shard_index == 1
        assert shard1.service.result_invalidations == before[1] + 1
        assert shard0.service.result_invalidations == before[0]
        report = sharded.describe()
        assert report["maintenance"]["documents_removed"] == 1
        assert report["documents"] == 1
        # A replace is counted as itself at the collection level, even
        # though the shard services see it as a remove + an add.
        sharded.replace_document("a", book_document(name="a"))
        report = sharded.describe()
        assert report["maintenance"]["documents_replaced"] == 1
        assert report["documents"] == 1
    finally:
        sharded.close()
