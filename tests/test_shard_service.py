"""Sharded collection unit tests: placement, id translation, pruning,
per-shard cache invalidation and cross-shard stats aggregation."""

from __future__ import annotations

import pytest

from repro import ShardedCollection, ShardedQueryService, TwigIndexDatabase
from repro.datasets import book_document, generate_xmark
from repro.errors import DocumentError
from repro.shard import (
    HashPlacement,
    PLACEMENT_POLICIES,
    RoundRobinPlacement,
    SizeBalancedPlacement,
    make_placement,
)
from repro.storage.stats import StatsCollector, sum_snapshots


def _named_docs(count: int, scale: float = 0.02):
    return [
        generate_xmark(scale=scale, seed=100 + i, name=f"doc-{i}")
        for i in range(count)
    ]


# ----------------------------------------------------------------------
# Placement policies
# ----------------------------------------------------------------------
def test_round_robin_spreads_by_ordinal():
    collection = ShardedCollection(num_shards=3, placement="round_robin")
    placements = collection.add_documents(_named_docs(5))
    assert [p.shard_index for p in placements] == [0, 1, 2, 0, 1]


def test_hash_placement_is_deterministic_by_name():
    first = ShardedCollection(num_shards=4, placement="hash")
    second = ShardedCollection(num_shards=4, placement="hash")
    for doc_a, doc_b in zip(_named_docs(4), _named_docs(4)):
        assert (
            first.add_document(doc_a).shard_index
            == second.add_document(doc_b).shard_index
        )


def test_size_balanced_placement_fills_least_loaded_shard():
    collection = ShardedCollection(num_shards=2, placement="size_balanced")
    big = generate_xmark(scale=0.05, seed=1, name="big")
    small = book_document()
    small.name = "small"
    first = collection.add_document(big)
    second = collection.add_document(small)
    third_doc = book_document()
    third_doc.name = "third"
    third = collection.add_document(third_doc)
    assert first.shard_index == 0
    assert second.shard_index == 1
    # The big document still outweighs two books: shard 1 stays lighter.
    assert third.shard_index == 1


def test_make_placement_accepts_instances_and_rejects_unknown_names():
    assert isinstance(make_placement("hash"), HashPlacement)
    assert isinstance(make_placement("round_robin"), RoundRobinPlacement)
    policy = SizeBalancedPlacement()
    assert make_placement(policy) is policy
    assert set(PLACEMENT_POLICIES) == {"hash", "round_robin", "size_balanced"}
    with pytest.raises(DocumentError):
        make_placement("range")


def test_collection_rejects_zero_shards_and_out_of_range_placement():
    with pytest.raises(ValueError):
        ShardedCollection(num_shards=0)

    class Broken(HashPlacement):
        def choose(self, document, ordinal, shard_weights):
            return len(shard_weights)

    collection = ShardedCollection(num_shards=2, placement=Broken())
    with pytest.raises(DocumentError):
        collection.add_document(book_document())


# ----------------------------------------------------------------------
# Id translation and document spans
# ----------------------------------------------------------------------
def test_to_global_matches_single_database_spans():
    docs = _named_docs(4)
    single = TwigIndexDatabase.from_documents(_named_docs(4))
    collection = ShardedCollection(num_shards=3, placement="round_robin")
    collection.add_documents(docs)

    single_spans = {name: (start, end) for name, start, end in single.document_spans()}
    for placement in collection.placements():
        assert (placement.global_start, placement.global_end) == single_spans[
            placement.name
        ]
        # Linear translation holds across the whole interval's endpoints.
        assert (
            collection.to_global(placement.shard_index, placement.local_start)
            == placement.global_start
        )
        assert (
            collection.to_global(placement.shard_index, placement.local_end - 1)
            == placement.global_end - 1
        )


def test_to_global_virtual_root_and_unknown_ids():
    collection = ShardedCollection(num_shards=2, placement="round_robin")
    collection.add_document(book_document())
    assert collection.to_global(0, 0) == 0
    with pytest.raises(DocumentError):
        collection.to_global(1, 5)  # shard 1 holds nothing
    with pytest.raises(DocumentError):
        collection.placements_for("missing")


# ----------------------------------------------------------------------
# Shard pruning for document-scoped queries
# ----------------------------------------------------------------------
def test_document_scoped_query_prunes_to_owning_shard():
    service = ShardedQueryService.from_documents(
        _named_docs(4), num_shards=4, placement="round_robin"
    )
    service.build_index("rootpaths")
    service.build_index("datapaths")

    before = [shard.stats.snapshot() for shard in service.collection.shards]
    result = service.execute(
        "/site/people/person/name", documents=["doc-2"], use_result_cache=False
    )
    charged = [
        sum(shard.stats.diff(snapshot).values())
        for shard, snapshot in zip(service.collection.shards, before)
    ]
    # Only shard 2 (round-robin owner of doc-2) did any work.
    assert charged[2] > 0
    assert charged[0] == charged[1] == charged[3] == 0

    # The scoped answer is exactly the owning document's slice.
    assert result.ids == service.oracle("/site/people/person/name", documents=["doc-2"])
    full = service.execute("/site/people/person/name")
    scope = next(p for p in service.collection.placements() if p.name == "doc-2")
    assert result.ids == [
        i for i in full.ids if scope.global_start <= i < scope.global_end
    ]
    service.close()


def test_scoped_query_filters_other_documents_on_shared_shard():
    # Two documents on ONE shard: scoping to one must filter the other
    # even though both live in the scanned shard.
    service = ShardedQueryService.from_documents(
        _named_docs(2), num_shards=1, placement="round_robin"
    )
    service.build_index("rootpaths")
    scoped = service.execute("/site/people/person/name", documents=["doc-1"])
    assert scoped.ids == service.oracle("/site/people/person/name", documents=["doc-1"])
    full = service.execute("/site/people/person/name")
    assert set(scoped.ids) < set(full.ids)
    service.close()


# ----------------------------------------------------------------------
# Per-shard generations: an add invalidates only its shard's results
# ----------------------------------------------------------------------
def test_add_document_invalidates_only_the_owning_shards_result_cache():
    service = ShardedQueryService.from_documents(
        _named_docs(2), num_shards=2, placement="round_robin"
    )
    service.build_index("rootpaths")
    service.build_index("datapaths")
    xpath = "/site/people/person/name"
    service.execute(xpath)  # warm both shards' result caches
    assert service.execute(xpath).cached

    shard0, shard1 = service.collection.shards
    invalidations_before = (
        shard0.service.result_invalidations,
        shard1.service.result_invalidations,
    )
    # Ordinal 2 -> shard 0 under round-robin.
    placed = service.collection.add_document(
        generate_xmark(scale=0.01, seed=999, name="doc-2")
    )
    assert placed.shard_index == 0
    assert shard0.service.result_invalidations == invalidations_before[0] + 1
    assert shard1.service.result_invalidations == invalidations_before[1]
    # Shard 1 still holds its cached partial; shard 0 must re-execute.
    assert len(shard1.service.result_cache) > 0
    assert len(shard0.service.result_cache) == 0

    merged = service.execute(xpath)
    assert not merged.cached  # one partial was fresh
    assert merged.ids == service.oracle(xpath)
    assert service.execute(xpath).cached  # now both partials cached again
    service.close()


# ----------------------------------------------------------------------
# Gather: merged costs and describe aggregation
# ----------------------------------------------------------------------
def test_merged_cost_is_the_sum_of_per_shard_costs():
    service = ShardedQueryService.from_documents(
        _named_docs(3), num_shards=3, placement="round_robin"
    )
    service.build_index("rootpaths")
    before = [shard.stats.snapshot() for shard in service.collection.shards]
    result = service.execute(
        "/site/people/person/name", strategy="rootpaths", use_result_cache=False
    )
    expected = sum_snapshots(
        *(
            shard.stats.diff(snapshot)
            for shard, snapshot in zip(service.collection.shards, before)
        )
    )
    assert result.cost == expected
    assert result.total_cost > 0
    service.close()


def test_describe_aggregates_shard_counters():
    service = ShardedQueryService.from_documents(
        _named_docs(2), num_shards=2, placement="round_robin"
    )
    service.build_index("rootpaths")
    service.build_index("datapaths")
    xpath = "/site/people/person/name"
    service.execute(xpath)
    service.execute(xpath)
    report = service.describe()
    assert report["num_shards"] == 2
    assert report["placement"] == "round_robin"
    assert report["documents"] == 2
    assert len(report["shards"]) == 2
    # Both shards missed once then hit once.
    assert report["caches"]["result_cache"]["hits"] == 2
    assert report["caches"]["result_cache"]["misses"] == 2
    assert report["queries_executed"] == 2
    service.close()


def test_empty_scatter_returns_empty_result():
    service = ShardedQueryService(num_shards=2)
    result = service.execute("/site/people", strategy="rootpaths")
    assert result.ids == [] and result.cost == {}
    assert result.strategy == "rootpaths"
    service.close()


# ----------------------------------------------------------------------
# StatsCollector.merge / sum_snapshots share one aggregation path
# ----------------------------------------------------------------------
def test_stats_merge_and_sum_snapshots_agree_with_add():
    a = StatsCollector(btree_node_reads=3, join_probes=2)
    b = StatsCollector(btree_node_reads=4, heap_page_reads=1)
    c = StatsCollector(join_comparisons=7)

    added = a + b
    merged = StatsCollector().merge(a, b)
    assert added.snapshot() == merged.snapshot()

    merged.merge(c)
    assert merged.snapshot() == sum_snapshots(a.snapshot(), b.snapshot(), c.snapshot())
    # merge mutates in place and returns self for chaining.
    target = StatsCollector()
    assert target.merge(a) is target
    assert target.btree_node_reads == 3


def test_sum_snapshots_carries_partial_cost_dicts():
    assert sum_snapshots({"join_probes": 2}, {"join_probes": 1, "extra": 5}) == {
        "join_probes": 3,
        "extra": 5,
    }
    assert sum_snapshots() == {}
