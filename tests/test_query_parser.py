"""Unit tests for the XPath-subset parser."""

import pytest

from repro.errors import QueryParseError
from repro.query import Axis, parse_xpath


def test_simple_absolute_path():
    twig = parse_xpath("/book/title")
    assert twig.root.label == "book"
    assert twig.root.axis is Axis.CHILD
    assert twig.output.label == "title"
    assert twig.is_absolute and twig.is_single_path and not twig.has_recursion


def test_leading_descendant_axis():
    twig = parse_xpath("//author/fn")
    assert not twig.is_absolute
    assert twig.root.axis is Axis.DESCENDANT
    assert twig.output.label == "fn"


def test_value_predicate_on_current_step():
    twig = parse_xpath("/site/regions/namerica/item/quantity[. = '5']")
    assert twig.output.label == "quantity"
    assert twig.output.value == "5"
    assert twig.branch_count == 1


def test_paper_figure_1_query_structure():
    twig = parse_xpath("/book[title='XML']//author[fn='jane' and ln='doe']")
    assert twig.root.label == "book"
    author = twig.output
    assert author.label == "author"
    assert author.axis is Axis.DESCENDANT
    assert {child.label for child in author.children} == {"fn", "ln"}
    assert {child.value for child in author.children} == {"jane", "doe"}
    title = twig.root.children[0]
    assert title.label == "title" and title.value == "XML"
    assert twig.branch_count == 3
    assert twig.has_recursion


def test_attribute_steps_and_predicates():
    twig = parse_xpath("/site[people/person/profile/@income = 46814.17]"
                       "/open_auctions/open_auction[@increase = 75.00]")
    income = twig.root.children[0].children[0].children[0].children[0]
    assert income.label == "income" and income.is_attribute
    assert income.value == "46814.17"
    auction = twig.output
    assert auction.label == "open_auction"
    increase = auction.children[0]
    assert increase.is_attribute and increase.value == "75.00"


def test_curly_quotes_are_normalised():
    twig = parse_xpath("/inproceedings/year[. = ’1950’ ]")
    assert twig.output.value == "1950"


def test_values_with_spaces_and_case():
    twig = parse_xpath("//item[location = 'United States']")
    assert twig.root.children[0].value == "United States"


def test_predicate_with_descendant_step():
    twig = parse_xpath("/site//item[incategory/category = 'category440']/mailbox/mail/date")
    item = twig.root.children[0]
    assert item.label == "item" and item.axis is Axis.DESCENDANT
    assert twig.output.label == "date"
    assert twig.branch_count == 2


def test_existence_predicate_without_value():
    twig = parse_xpath("//item[mailbox/mail/date]")
    date = twig.root.children[0].children[0].children[0]
    assert date.label == "date" and date.value is None


def test_multiple_predicates_on_one_step():
    twig = parse_xpath("//item[quantity = '2'][location = 'x']")
    assert [c.label for c in twig.root.children] == ["quantity", "location"]


@pytest.mark.parametrize(
    "bad",
    [
        "",
        "book/title",           # must start with / or //
        "/book[",
        "/book[title=]",
        "/book]",
        "/book[title='x' or ln='y']",  # 'or' not in the fragment: parses 'or' as junk
        "/bo ok",
    ],
)
def test_parse_errors(bad):
    with pytest.raises(QueryParseError):
        parse_xpath(bad)


@pytest.mark.parametrize(
    "bad",
    [
        "/book/123",       # regression: used to parse as a tag named '123'
        "/123",
        "//123/title",
        "/book[123/x]",    # numeric step inside a predicate path
        "/book[x/123]",
        "/book/@5",
    ],
)
def test_numeric_step_names_are_rejected(bad):
    with pytest.raises(QueryParseError, match="cannot be numbers"):
        parse_xpath(bad)


def test_numbers_remain_valid_as_literals():
    twig = parse_xpath("/item/quantity[. = 5]")
    assert twig.output.value == "5"
    twig = parse_xpath("/site[people/person/profile/@income = 46814.17]")
    income = twig.root.children[0].children[0].children[0].children[0]
    assert income.value == "46814.17"


def test_element_named_and_is_not_swallowed_by_conjunction():
    # Regression: the conjunction check used to consume 'and' whenever it
    # followed a condition, even when no condition could follow it.
    twig = parse_xpath("/book[and/x]")
    and_node = twig.root.children[0]
    assert and_node.label == "and"
    assert [child.label for child in and_node.children] == ["x"]

    twig = parse_xpath("/book[x and and/y]")
    assert [child.label for child in twig.root.children] == ["x", "and"]
    assert twig.root.children[1].children[0].label == "y"

    twig = parse_xpath("/book[and = 'v']")
    assert twig.root.children[0].label == "and"
    assert twig.root.children[0].value == "v"


def test_conjunction_with_descendant_condition_still_parses():
    # '//' after 'and' is unambiguous (an element named 'and' with a
    # descendant child is written [and//y]), so it stays a conjunction.
    twig = parse_xpath("/book[x and //y]")
    x, y = twig.root.children
    assert (x.label, y.label) == ("x", "y")
    assert y.axis is Axis.DESCENDANT


@pytest.mark.parametrize(
    "bad",
    [
        "/book[x and]",     # nothing conjoinable after 'and'
        "/book[x and/y]",   # regression: silently dropped the 'and' element
        "/book[x and = 'v']",
    ],
)
def test_and_must_be_followed_by_a_condition(bad):
    with pytest.raises(QueryParseError, match="'and' must be followed"):
        parse_xpath(bad)
