"""Unit tests for the node model (repro.xmltree.nodes)."""

from repro.xmltree.nodes import Node, NodeKind


def _small_tree() -> Node:
    root = Node(NodeKind.ELEMENT, "book")
    title = root.add_child(Node(NodeKind.ELEMENT, "title"))
    title.add_child(Node(NodeKind.VALUE, "XML"))
    author = root.add_child(Node(NodeKind.ELEMENT, "author"))
    fn = author.add_child(Node(NodeKind.ELEMENT, "fn"))
    fn.add_child(Node(NodeKind.VALUE, "jane"))
    return root


def test_kind_predicates():
    element = Node(NodeKind.ELEMENT, "a")
    attribute = Node(NodeKind.ATTRIBUTE, "id")
    value = Node(NodeKind.VALUE, "x")
    assert element.is_element and element.is_structural and not element.is_value
    assert attribute.is_attribute and attribute.is_structural
    assert value.is_value and not value.is_structural


def test_add_child_sets_parent_and_depth():
    root = Node(NodeKind.ELEMENT, "a")
    child = root.add_child(Node(NodeKind.ELEMENT, "b"))
    grandchild = child.add_child(Node(NodeKind.ELEMENT, "c"))
    assert child.parent is root
    assert grandchild.depth == root.depth + 2


def test_structural_and_value_children():
    root = _small_tree()
    title = root.children[0]
    assert [c.label for c in root.structural_children()] == ["title", "author"]
    assert title.value_children()[0].label == "XML"
    assert title.first_value() == "XML"
    assert root.first_value() is None


def test_iter_subtree_is_document_order():
    root = _small_tree()
    labels = [n.label for n in root.iter_subtree()]
    assert labels == ["book", "title", "XML", "author", "fn", "jane"]


def test_ancestors_and_root_path():
    root = _small_tree()
    fn = root.children[1].children[0]
    assert [a.label for a in fn.ancestors()] == ["author", "book"]
    assert fn.root_path_labels() == ["book", "author", "fn"]


def test_is_descendant_of():
    root = _small_tree()
    author = root.children[1]
    fn = author.children[0]
    assert fn.is_descendant_of(root)
    assert fn.is_descendant_of(author)
    assert not author.is_descendant_of(fn)
    assert not root.is_descendant_of(root)


def test_nodes_hash_by_identity():
    a = Node(NodeKind.ELEMENT, "x")
    b = Node(NodeKind.ELEMENT, "x")
    assert a != b
    assert len({a, b}) == 2
