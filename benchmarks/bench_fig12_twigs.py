"""Figure 12 — twig queries without recursion.

(a) all branches selective (Q4x, Q5x + single-branch baseline),
(b) selective + unselective branches (Q6x, Q7x),
(c) all branches unselective (Q8x, Q9x),
(d) low branch points (Q10x, Q11x) — the index-nested-loop case.

Shape reproduced: RP and DP stay orders of magnitude cheaper than the
Edge / DG+Edge / IF+Edge combinations because IdLists give the branch
point ids without joins; in (d) DP beats RP because only DATAPATHS
supports the index-nested-loop strategy through BoundIndex probes.
"""

from __future__ import annotations

import pytest

from repro.bench import compare_strategies, measurement_table
from repro.workloads import query

from conftest import PATH_STRATEGIES

GROUPS = {
    "fig12a": ("Q4x-base", "Q4x", "Q5x"),
    "fig12b": ("Q6x", "Q7x"),
    "fig12c": ("Q8x", "Q9x"),
    "fig12d": ("Q10x", "Q11x"),
}


@pytest.fixture(scope="module")
def figure12(xmark_context):
    results = {}
    for qids in GROUPS.values():
        for qid in qids:
            results[qid] = compare_strategies(xmark_context, query(qid), PATH_STRATEGIES)
    print()
    print(measurement_table(results, metric="total_cost", title="Figure 12 — logical cost"))
    print(measurement_table(results, metric="elapsed_ms", title="Figure 12 — wall time (ms)"))
    return results


def test_fig12_all_strategies_correct(figure12):
    for qid, per_strategy in figure12.items():
        for strategy, measurement in per_strategy.items():
            assert measurement.correct, f"{strategy} wrong on {qid}"


def test_fig12a_selective_twigs_scale_gracefully(figure12):
    # Adding branches to a selective twig keeps RP/DP cheap (well under the
    # cost the Edge-style plans pay).
    for qid in ("Q4x", "Q5x"):
        rp = figure12[qid]["rootpaths"].total_cost
        dp = figure12[qid]["datapaths"].total_cost
        edge = figure12[qid]["edge"].total_cost
        assert rp < edge and dp < edge, qid


def test_fig12bc_idlists_beat_edge_by_orders_of_magnitude(figure12):
    for qid in ("Q6x", "Q7x", "Q8x", "Q9x"):
        rp = figure12[qid]["rootpaths"].total_cost
        edge = figure12[qid]["edge"].total_cost
        dataguide = figure12[qid]["dataguide_edge"].total_cost
        fabric = figure12[qid]["index_fabric_edge"].total_cost
        assert edge > 5 * rp, qid
        assert dataguide > 3 * rp, qid
        assert fabric > 3 * rp, qid


def test_fig12d_index_nested_loop_benefit(figure12):
    # With a low branch point and one selective branch, DP's BoundIndex
    # probes beat RP's merge plan (the paper's most surprising result:
    # RP can even lose to IF+Edge here).
    for qid in ("Q10x", "Q11x"):
        rp = figure12[qid]["rootpaths"].total_cost
        dp = figure12[qid]["datapaths"].total_cost
        assert dp < rp, qid


def test_fig12_branch_count_increases_cost_for_edge_not_rp(figure12):
    rp_growth = figure12["Q5x"]["rootpaths"].total_cost / max(
        1, figure12["Q4x-base"]["rootpaths"].total_cost
    )
    edge_growth = figure12["Q5x"]["edge"].total_cost / max(
        1, figure12["Q4x-base"]["edge"].total_cost
    )
    assert edge_growth > rp_growth


@pytest.mark.parametrize("qid", ("Q4x", "Q5x", "Q6x", "Q7x", "Q8x", "Q9x", "Q10x", "Q11x"))
@pytest.mark.parametrize("strategy", ("rootpaths", "datapaths"))
def test_fig12_benchmark_rp_dp(benchmark, qid, strategy, xmark_context):
    workload_query = query(qid)
    benchmark(lambda: xmark_context.database.query(workload_query.xpath, strategy=strategy))


@pytest.mark.parametrize("qid", ("Q4x", "Q8x", "Q10x"))
@pytest.mark.parametrize("strategy", ("edge", "dataguide_edge", "index_fabric_edge"))
def test_fig12_benchmark_edge_baselines(benchmark, qid, strategy, xmark_context):
    workload_query = query(qid)
    benchmark.pedantic(
        lambda: xmark_context.database.query(workload_query.xpath, strategy=strategy),
        rounds=1,
        iterations=1,
    )
