"""Shard scaling — scatter-gather serving vs the single-engine baseline.

A serving tier rarely sees a read-only workload: documents keep
arriving while the same queries repeat.  On a single engine every
``add_document`` invalidates the *whole* result cache, so each write
forces the next round of the workload to re-execute every query over
the full database.  The sharded tier confines a write to one shard —
its indexes absorb the document, its result cache flushes, and the
other shards keep serving their cached partial answers — so a round
after a write re-executes only one shard's slice of the data.

This bench replays the Figure 12 twig workload as such a mixed
read/write serving loop (one small document arrives between rounds)
against the single-engine :class:`~repro.service.QueryService` and
against :class:`~repro.shard.ShardedQueryService` at 1, 2 and 4
shards.

Asserted shape:

* every sharded answer is identical to the single-engine answer (the
  scatter-gather merge is exact),
* at 4 shards the sharded tier serves the mixed workload with at least
  1.5x the single-engine throughput,
* the logical re-execution work after a write shrinks with the shard
  count: the 4-shard tier charges at most half the single engine's
  weighted cost over the loop.
"""

from __future__ import annotations

import statistics

import pytest

from repro import ShardedQueryService, TwigIndexDatabase
from repro.bench import format_table, write_bench_report
from repro.datasets import generate_xmark
from repro.obs.clock import now
from repro.workloads import query

#: The Figure 12 twig workload (high and low branch points).
FIG12_QUERIES = ("Q4x", "Q5x", "Q6x", "Q7x", "Q8x", "Q9x", "Q10x", "Q11x")

#: Base corpus: four XMark-like documents spread across the shards.
BASE_DOCS = 4
BASE_SCALE = 0.08

#: Serving rounds; one small document arrives before every round past
#: the first, so each round past the first starts with a cold slice.
ROUNDS = 8
DELTA_SCALE = 0.01

SHARD_COUNTS = (1, 2, 4)


def _base_documents():
    return [
        generate_xmark(scale=BASE_SCALE, seed=1000 + i, name=f"xmark-{i}")
        for i in range(BASE_DOCS)
    ]


def _delta_document(round_number: int):
    return generate_xmark(
        scale=DELTA_SCALE, seed=9000 + round_number, name=f"delta-{round_number}"
    )


def _serve(execute, add_document, stats_cost):
    """Run the mixed read/write serving loop; return measurements.

    One warm-up pass fills every cache tier before the clock starts, so
    the timed loop measures the steady serving state: each round one
    document arrives, then the whole Figure 12 workload is served.
    """
    workload = [query(qid).xpath for qid in FIG12_QUERIES]
    for xpath in workload:  # warm-up: caches filled, indexes probed
        execute(xpath)
    cost_before = stats_cost()
    round_seconds: list[float] = []
    add_seconds = 0.0
    answers = {}
    for round_number in range(1, ROUNDS + 1):
        started = now()
        add_document(_delta_document(round_number))
        add_seconds += now() - started
        started = now()
        for xpath in workload:
            answers[xpath] = execute(xpath).ids
        round_seconds.append(now() - started)
    return {
        # Query-serving throughput: the maintenance cost of the arriving
        # documents is timed separately — it is identical logical work
        # on either tier and would otherwise drown the serving signal.
        # Throughput is taken from the *median* round, so one scheduler
        # hiccup on a shared CI runner cannot skew the asserted ratio.
        "elapsed": sum(round_seconds),
        "add_seconds": add_seconds,
        "queries": ROUNDS * len(workload),
        "qps": len(workload) / statistics.median(round_seconds),
        "cost": stats_cost() - cost_before,
        "answers": answers,
    }


def _run_single():
    database = TwigIndexDatabase.from_documents(_base_documents())
    database.build_index("rootpaths")
    database.build_index("datapaths")
    service = database.service
    return _serve(
        lambda xpath: service.execute(xpath, strategy="auto"),
        service.add_document,
        database.stats.total_cost,
    )


def _run_sharded(num_shards: int):
    with ShardedQueryService.from_documents(
        _base_documents(), num_shards=num_shards, placement="round_robin"
    ) as service:
        service.build_index("rootpaths")
        service.build_index("datapaths")

        def total_cost() -> int:
            return sum(shard.stats.total_cost() for shard in service.collection.shards)

        measured = _serve(
            lambda xpath: service.execute(xpath, strategy="auto"),
            service.add_document,
            total_cost,
        )
        measured["describe"] = service.describe()
    return measured


@pytest.fixture(scope="module")
def scaling():
    single = _run_single()
    sharded = {count: _run_sharded(count) for count in SHARD_COUNTS}

    rows = [
        [
            "single engine",
            f"{single['elapsed']:.3f}",
            f"{single['add_seconds']:.3f}",
            f"{single['qps']:.0f}",
            f"{single['cost']}",
            "1.00x",
        ]
    ]
    for count in SHARD_COUNTS:
        measured = sharded[count]
        rows.append(
            [
                f"{count} shard{'s' if count > 1 else ''}",
                f"{measured['elapsed']:.3f}",
                f"{measured['add_seconds']:.3f}",
                f"{measured['qps']:.0f}",
                f"{measured['cost']}",
                f"{measured['qps'] / single['qps']:.2f}x",
            ]
        )
    print()
    print(
        format_table(
            ["tier", "serve s", "add s", "queries/s", "logical cost", "throughput"],
            rows,
            title=(
                f"Shard scaling — Figure 12 workload, {ROUNDS} rounds, "
                f"one document add per round"
            ),
        )
    )
    write_bench_report(
        "shard_scaling",
        {
            "rounds": ROUNDS,
            "workload": list(FIG12_QUERIES),
            "single": {"qps": single["qps"], "cost": single["cost"]},
            "sharded": {
                str(count): {
                    "qps": sharded[count]["qps"],
                    "cost": sharded[count]["cost"],
                    "throughput_ratio": sharded[count]["qps"] / single["qps"],
                }
                for count in SHARD_COUNTS
            },
        },
    )
    return {"single": single, "sharded": sharded}


def test_sharded_answers_match_single_engine(scaling):
    for count in SHARD_COUNTS:
        answers = scaling["sharded"][count]["answers"]
        for xpath, expected in scaling["single"]["answers"].items():
            assert answers[xpath] == expected, (count, xpath)


def test_four_shards_serve_at_least_1_5x_single_throughput(scaling):
    single_qps = scaling["single"]["qps"]
    sharded_qps = scaling["sharded"][4]["qps"]
    assert sharded_qps >= 1.5 * single_qps, (
        f"4-shard scatter-gather {sharded_qps:.0f} q/s is not 1.5x the "
        f"single-engine {single_qps:.0f} q/s"
    )


def test_write_isolation_shrinks_logical_reexecution_cost(scaling):
    # Each write invalidates 1/N of the cached results, so the weighted
    # logical cost of the whole loop must shrink with the shard count.
    single_cost = scaling["single"]["cost"]
    assert scaling["sharded"][4]["cost"] <= 0.5 * single_cost
    assert scaling["sharded"][2]["cost"] <= scaling["sharded"][1]["cost"]
    assert scaling["sharded"][4]["cost"] <= scaling["sharded"][2]["cost"]


def test_writes_only_invalidate_their_own_shard(scaling):
    report = scaling["sharded"][4]["describe"]
    # Every add (base corpus + one per round) invalidates exactly one
    # shard's results — never multiplied by the shard count.
    assert report["invalidations"]["result_only"] == BASE_DOCS + ROUNDS
    assert report["invalidations"]["full"] == 2 * 4  # two index builds
    assert report["caches"]["result_cache"]["hits"] > 0


def test_shard_scaling_benchmark_scatter_gather(benchmark):
    with ShardedQueryService.from_documents(
        _base_documents(), num_shards=4, placement="round_robin"
    ) as service:
        service.build_index("rootpaths")
        service.build_index("datapaths")
        xpath = query("Q4x").xpath
        service.execute(xpath)  # warm per-shard caches
        benchmark(lambda: service.execute(xpath, use_result_cache=False))
