"""Incremental index maintenance vs full rebuild — grow-by-one workload.

A serving system absorbs new documents while indexes stay online.  This
bench grows an XMark-like database by one small delta document and
compares, in the shared maintenance-cost currency
(:func:`~repro.storage.stats.maintenance_cost`: page-granular writes at
weight 10 plus per-entry insert work), the cost of

* **incremental add** — one :meth:`~repro.indexes.base.PathIndex.update`
  per built index (B+-tree inserts of just the delta's rows), vs
* **full rebuild** — building every index from scratch over the grown
  database, which is what any query after ``add_document`` used to
  require for a correct answer.

Asserted shape:

* incremental add is cheaper than the rebuild by at least the ratio of
  corpus size to delta size discounted for B+-tree descent overheads
  (we pin a conservative 5x),
* both maintenance paths answer the Figure 12-style workload
  identically (and correctly w.r.t. the oracle).
"""

from __future__ import annotations

import pytest

from repro import TwigIndexDatabase
from repro.bench import format_table, write_bench_report
from repro.datasets import generate_xmark
from repro.storage.stats import maintenance_cost
from repro.workloads.generator import branch_count_sweep

#: Corpus and delta scales: the base is ~8x the delta, so a clear gap
#: between incremental and rebuild cost is structural, not noise.
BASE_SCALE = 0.16
DELTA_SCALE = 0.02

#: Indexes maintained in the bench: the paper's two main structures
#: plus the Edge baseline and the DataGuide summary — the four with
#: true incremental insertion.
MAINTAINED_INDEXES = ("rootpaths", "datapaths", "edge", "dataguide")

#: Conservative floor for the incremental advantage on this corpus.
MIN_SPEEDUP = 5.0


def _documents():
    """Fresh base + delta documents (documents cannot be shared)."""
    return (
        generate_xmark(scale=BASE_SCALE, seed=7, name="base"),
        generate_xmark(scale=DELTA_SCALE, seed=99, name="delta"),
    )


@pytest.fixture(scope="module")
def grow_by_one():
    # Incremental path: indexes built over the base absorb the delta.
    base, delta = _documents()
    incremental = TwigIndexDatabase.from_documents([base])
    for name in MAINTAINED_INDEXES:
        incremental.build_index(name)
    before = incremental.stats.snapshot()
    incremental.add_document(delta)
    incremental_cost = maintenance_cost(incremental.stats.diff(before))

    # Rebuild path: the same grown corpus, indexes built from scratch.
    base, delta = _documents()
    rebuilt = TwigIndexDatabase.from_documents([base, delta])
    before = rebuilt.stats.snapshot()
    for name in MAINTAINED_INDEXES:
        rebuilt.build_index(name)
    rebuild_cost = maintenance_cost(rebuilt.stats.diff(before))

    print()
    print(
        format_table(
            ["maintenance path", "weighted cost", "relative"],
            [
                ["incremental add-one", incremental_cost, "1.0x"],
                [
                    "full rebuild",
                    rebuild_cost,
                    f"{rebuild_cost / max(1, incremental_cost):.1f}x",
                ],
            ],
            title=f"Grow-by-one maintenance cost — indexes: "
            f"{', '.join(MAINTAINED_INDEXES)}",
        )
    )
    write_bench_report(
        "incremental_update",
        {
            "indexes": list(MAINTAINED_INDEXES),
            "incremental_cost": incremental_cost,
            "rebuild_cost": rebuild_cost,
            "cost_ratio": rebuild_cost / max(1, incremental_cost),
        },
    )
    return {
        "incremental": incremental,
        "rebuilt": rebuilt,
        "incremental_cost": incremental_cost,
        "rebuild_cost": rebuild_cost,
    }


def test_incremental_add_beats_rebuild(grow_by_one):
    incremental_cost = grow_by_one["incremental_cost"]
    rebuild_cost = grow_by_one["rebuild_cost"]
    assert incremental_cost > 0, "maintenance must charge write work"
    assert rebuild_cost >= MIN_SPEEDUP * incremental_cost, (
        f"incremental add-one ({incremental_cost}) not at least "
        f"{MIN_SPEEDUP}x cheaper than rebuild ({rebuild_cost})"
    )


def test_both_maintenance_paths_answer_identically(grow_by_one):
    incremental = grow_by_one["incremental"]
    rebuilt = grow_by_one["rebuilt"]
    queries = [
        generated.xpath
        for selectivity in ("selective", "unselective")
        for generated in branch_count_sweep(selectivity, max_branches=2)
    ]
    queries.append("/site/people/person/name")
    for xpath in queries:
        expected = rebuilt.oracle(xpath)
        for strategy in ("rootpaths", "datapaths", "edge", "auto"):
            assert incremental.query(xpath, strategy=strategy).ids == expected, (
                strategy,
                xpath,
            )
            assert rebuilt.query(xpath, strategy=strategy).ids == expected, (
                strategy,
                xpath,
            )


def test_incremental_update_benchmark(benchmark):
    # Wall-clock shape of one incremental add (small corpus so the
    # benchmark loop stays fast; the cost assertion above is the pin).
    base = generate_xmark(scale=0.05, seed=7, name="base")
    database = TwigIndexDatabase.from_documents([base])
    for name in MAINTAINED_INDEXES:
        database.build_index(name)

    counter = iter(range(10_000))

    def add_one():
        database.add_document(
            generate_xmark(scale=0.01, seed=13, name=f"delta-{next(counter)}")
        )

    benchmark.pedantic(add_one, rounds=3, iterations=1)
