"""The concurrent front door under load: coalescing, scatter, backpressure.

A load generator drives the asyncio front door with 100+ simulated
connections (one asyncio task per client, each issuing its requests
back-to-back) and pins the three throughput mechanisms the front door
exists for:

* **single-flight coalescing** on a hot-skewed mix — most clients ask
  the same hot query concurrently.  With coalescing off every arrival
  pays full execution; with it on, concurrent identical arrivals ride
  one execution.  The result cache is off throughout: this phase
  isolates what coalescing does for *in-flight* duplicates, which is
  exactly the window the result cache cannot cover.  Asserted: ≥3x qps.

* **cross-query pipelined scatter** on a uniform mix at 4 shards —
  each shard is dressed as a single-threaded storage node with a
  deterministic, seeded per-read latency (the only honest way to make
  thread arrangement visible under the GIL, where pure-compute legs
  serialize identically no matter how they are pooled).  The pipelined
  per-shard lanes keep every shard busy whenever any query has work
  for it; the legacy shared-FIFO pool ("pooled", the serial-gather-era
  arrangement) loses capacity to head-of-line blocking — a worker that
  dequeues a leg for a busy shard blocks on that shard while other
  shards idle with queued work.  Asserted: ≥1.3x qps.

* **bounded admission** under overload — 150 clients against 2
  execution slots and a tiny queue.  The door must shed (fast, typed
  rejects) rather than buffer: the queue never grows past its bound,
  rejects are orders of magnitude faster than service, and served p99
  stays proportional to the *bounded* queue, not to the offered load.

Fidelity is pinned before any clock starts: a single, never-concurrent
engine answers the whole query mix first, and every response any phase
serves is asserted bit-identical to that oracle.  Latency quantiles
come from the observability histogram layer
(``repro_frontdoor_latency_seconds``), not from ad-hoc timers.

``REPRO_FRONTDOOR_SMOKE=1`` (CI) shrinks per-client request counts and
the simulated storage latency while keeping 100+ concurrent clients.
"""

from __future__ import annotations

import asyncio
import os
import random
import threading
import time

import pytest

from repro import FrontDoor, QueryRequest, ShardedQueryService, TwigIndexDatabase
from repro.bench import format_table, write_bench_report
from repro.datasets import generate_xmark
from repro.frontdoor import RejectedError

#: Reduced-scale CI smoke: fewer requests per client and shorter
#: simulated storage latency; the client count never drops below 100.
SMOKE = os.environ.get("REPRO_FRONTDOOR_SMOKE", "") not in ("", "0")

CLIENTS = 120
OVERLOAD_CLIENTS = 150
REQUESTS_PER_CLIENT = 3 if SMOKE else 6
CORPUS_DOCS = 4
CORPUS_SCALE = 0.02

#: The served mix: one hot query plus a uniform tail.
HOT_XPATH = "/site/people/person/name"
COLD_XPATHS = (
    "//person",
    "/site/open_auctions/open_auction",
    "//item/name",
    "/site/regions",
    "//open_auction/bidder",
    "/site/people/person",
    "//item",
)
ALL_XPATHS = (HOT_XPATH,) + COLD_XPATHS

#: Hot-skew: 8 of 10 requests hit the hot query.
HOT_SHARE = 0.8

#: Simulated per-read storage latency of one shard (seconds); bimodal
#: with a wide spread, so pooled workers desynchronize and head-of-line
#: blocking shows.
STORAGE_DELAYS = (0.0005, 0.006) if SMOKE else (0.001, 0.012)
SCATTER_SHARDS = 4
SCATTER_REQUESTS = 2 if SMOKE else 4

#: The scatter phase serves only the cheap rooted paths: per-leg compute
#: is GIL-serialized identically under either pool, so keeping it small
#: lets the *arrangement* of the latency-bound legs dominate the signal.
SCATTER_XPATHS = (
    HOT_XPATH,
    "/site/open_auctions/open_auction",
    "/site/regions",
    "/site/people/person",
)


def _documents():
    return [
        generate_xmark(scale=CORPUS_SCALE, seed=4200 + i, name=f"front-{i}")
        for i in range(CORPUS_DOCS)
    ]


def _sharded(num_shards: int, scatter: str) -> ShardedQueryService:
    service = ShardedQueryService.from_documents(
        _documents(), num_shards=num_shards, placement="round_robin",
        scatter=scatter,
    )
    service.build_index("rootpaths")
    return service


def _dress_as_storage_nodes(service: ShardedQueryService, seed: int) -> None:
    """Serialize each shard behind a deterministic per-read latency.

    Each shard becomes a single-threaded storage node: one read at a
    time (a lock), each read preceded by a seeded bimodal sleep.  The
    sleep releases the GIL, so the *arrangement* of legs onto threads
    — per-shard lanes vs one shared FIFO — decides how busy the four
    nodes stay, exactly as it would against real storage.
    """
    for shard in service.collection.shards:
        rng = random.Random(seed + shard.index)
        # Bimodal base with an occasional compaction-pause-like stall:
        # the stalls are what convoy a shared FIFO pool (every worker
        # that dequeues a leg for the stalled shard blocks on it while
        # the other shards sit idle), and what per-shard lanes absorb.
        schedule = [
            STORAGE_DELAYS[1] * 10 if rng.random() < 0.06 else rng.choice(STORAGE_DELAYS)
            for _ in range(512)
        ]
        lock = threading.Lock()
        state = {"calls": 0}
        real = shard.execute

        def slow_execute(
            *args, _real=real, _lock=lock, _state=state, _schedule=schedule, **kwargs
        ):
            with _lock:  # one read at a time: a single-threaded node
                delay = _schedule[_state["calls"] % len(_schedule)]
                _state["calls"] += 1
                time.sleep(delay)
                return _real(*args, **kwargs)

        shard.execute = slow_execute


def _client_plan(
    client: int, requests: int, hot_share: float, mix: tuple = COLD_XPATHS
) -> list[str]:
    """Client ``client``'s deterministic request sequence."""
    rng = random.Random(10_000 + client)
    return [
        HOT_XPATH
        if rng.random() < hot_share
        else mix[rng.randrange(len(mix))]
        for _ in range(requests)
    ]


async def _drive(door: FrontDoor, plans: list[list[str]]):
    """All clients concurrently, each issuing its plan back-to-back.

    Returns ``(responses, rejections, elapsed_seconds)``; the clock
    brackets only the concurrent serving window.
    """

    async def client(plan: list[str]):
        served, rejected = [], 0
        for xpath in plan:
            try:
                served.append(
                    await door.handle(
                        QueryRequest(xpath=xpath, use_result_cache=False)
                    )
                )
            except RejectedError:
                rejected += 1
        return served, rejected

    loop = asyncio.get_running_loop()
    started = loop.time()
    outcomes = await asyncio.gather(*(client(plan) for plan in plans))
    elapsed = loop.time() - started
    responses = [response for served, _ in outcomes for response in served]
    rejections = sum(rejected for _, rejected in outcomes)
    return responses, rejections, elapsed


def _quantiles(door: FrontDoor, disposition: str) -> dict[str, float]:
    histogram = door.telemetry.metrics.histogram(
        "repro_frontdoor_latency_seconds",
        "Front-door request wall time, served vs rejected",
    )
    return {
        "p50": histogram.quantile(0.50, disposition=disposition),
        "p99": histogram.quantile(0.99, disposition=disposition),
    }


@pytest.fixture(scope="module")
def oracle():
    """The single never-concurrent engine's answers — the fidelity pin.

    Computed (and the per-query unloaded service times measured) before
    any load-phase clock starts; every phase asserts its served answers
    against these ids.
    """
    database = TwigIndexDatabase.from_documents(_documents())
    database.build_index("rootpaths")
    answers = {}
    for xpath in ALL_XPATHS:
        answers[xpath] = tuple(
            database.service.execute(xpath, use_result_cache=False).ids
        )
    return {"answers": answers}


def _assert_fidelity(responses, oracle) -> None:
    assert responses, "phase served nothing"
    for response in responses:
        assert response.ids == oracle["answers"][response.xpath], response.xpath


# ----------------------------------------------------------------------
# Phase 1: single-flight coalescing on the hot-skewed mix
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def coalescing(oracle):
    plans = [
        _client_plan(client, REQUESTS_PER_CLIENT, HOT_SHARE)
        for client in range(CLIENTS)
    ]
    measured = {}
    for label, coalesce in (("on", True), ("off", False)):
        with _sharded(2, "pipelined") as service:
            # The queue bound exceeds the client count: this phase
            # measures coalescing, not shedding (phase 3 does that).
            with FrontDoor(
                service, coalesce=coalesce, max_concurrency=8, max_queue=2 * CLIENTS
            ) as door:
                responses, rejections, elapsed = asyncio.run(
                    _drive(door, plans)
                )
                _assert_fidelity(responses, oracle)
                assert rejections == 0
                measured[label] = {
                    "clients": CLIENTS,
                    "requests": len(responses),
                    "qps": len(responses) / elapsed,
                    "elapsed": elapsed,
                    "executions": service.queries_executed,
                    "coalesced_hits": door.flights.coalesced_hits,
                    "flights": door.flights.flights_started,
                    **_quantiles(door, "served"),
                }
    measured["qps_ratio"] = measured["on"]["qps"] / measured["off"]["qps"]
    return measured


def test_coalescing_multiplies_hot_skewed_qps(coalescing):
    on, off = coalescing["on"], coalescing["off"]
    # Coalescing-off executed every request; on collapsed the hot
    # duplicates into a handful of flights.
    assert off["executions"] == off["requests"]
    assert on["executions"] == on["flights"]
    assert on["coalesced_hits"] > on["requests"] // 2
    assert on["executions"] < on["requests"] // 3
    assert coalescing["qps_ratio"] >= 3.0, coalescing


# ----------------------------------------------------------------------
# Phase 2: pipelined vs pooled scatter on the uniform mix, 4 shards
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def scatter(oracle):
    plans = [
        _client_plan(client, SCATTER_REQUESTS, hot_share=0.0, mix=SCATTER_XPATHS)
        for client in range(CLIENTS)
    ]
    measured = {}
    for mode in ("pipelined", "pooled"):
        with _sharded(SCATTER_SHARDS, mode) as service:
            _dress_as_storage_nodes(service, seed=77)
            with FrontDoor(
                service, coalesce=False, max_concurrency=12, max_queue=2 * CLIENTS
            ) as door:
                responses, rejections, elapsed = asyncio.run(
                    _drive(door, plans)
                )
                _assert_fidelity(responses, oracle)
                assert rejections == 0
                measured[mode] = {
                    "clients": CLIENTS,
                    "requests": len(responses),
                    "qps": len(responses) / elapsed,
                    "elapsed": elapsed,
                    "scatter": service.describe()["scatter"],
                    **_quantiles(door, "served"),
                }
    measured["qps_ratio"] = (
        measured["pipelined"]["qps"] / measured["pooled"]["qps"]
    )
    return measured


def test_pipelined_scatter_beats_the_shared_pool(scatter):
    assert scatter["pipelined"]["scatter"] == "pipelined"
    assert scatter["pooled"]["scatter"] == "pooled"
    assert scatter["qps_ratio"] >= 1.3, scatter


# ----------------------------------------------------------------------
# Phase 3: bounded admission under overload
# ----------------------------------------------------------------------
MAX_CONCURRENCY = 2
MAX_QUEUE = 6


@pytest.fixture(scope="module")
def backpressure(oracle):
    plans = [
        _client_plan(client, 2, hot_share=0.0)
        for client in range(OVERLOAD_CLIENTS)
    ]
    with _sharded(2, "pipelined") as service:
        with FrontDoor(
            service,
            coalesce=False,
            max_concurrency=MAX_CONCURRENCY,
            max_queue=MAX_QUEUE,
        ) as door:
            # Unloaded baseline: the whole mix served serially through
            # this door, fidelity-checked, worst per-query time kept as
            # the basis of the p99 bound below.
            async def serial_pass():
                worst = 0.0
                for xpath in ALL_XPATHS:
                    started = time.perf_counter()
                    response = await door.handle(
                        QueryRequest(xpath=xpath, use_result_cache=False)
                    )
                    worst = max(worst, time.perf_counter() - started)
                    assert response.ids == oracle["answers"][xpath]
                return worst

            worst_unloaded = asyncio.run(serial_pass())
            responses, rejections, elapsed = asyncio.run(_drive(door, plans))
            _assert_fidelity(responses, oracle)
            admission = door.admission.describe()
            measured = {
                "clients": OVERLOAD_CLIENTS,
                "max_concurrency": MAX_CONCURRENCY,
                "max_queue": MAX_QUEUE,
                "served": len(responses),
                "rejected": rejections,
                "qps": len(responses) / elapsed,
                "queue_peak": admission["queue_peak"],
                "rejected_queue": admission["rejected_queue"],
                "served_latency": _quantiles(door, "served"),
                "rejected_latency": _quantiles(door, "rejected"),
            }
    # Served p99 must be proportional to the *bounded* pipeline depth
    # (slots + queue) times one unloaded service time — not to the
    # 300-request offered load, which is what an unbounded queue would
    # make it track.
    measured["worst_unloaded"] = worst_unloaded
    measured["p99_bound"] = 4.0 * (MAX_CONCURRENCY + MAX_QUEUE) * worst_unloaded
    return measured


def test_overload_sheds_instead_of_buffering(backpressure):
    # The door shed real load, and the queue never outgrew its bound.
    assert backpressure["rejected"] > 0
    assert backpressure["rejected"] == backpressure["rejected_queue"]
    assert backpressure["queue_peak"] <= backpressure["max_queue"]
    assert (
        backpressure["served"] + backpressure["rejected"]
        == OVERLOAD_CLIENTS * 2
    )
    # Fast reject: rejections cost microseconds, far under service p50.
    rejected_p99 = backpressure["rejected_latency"]["p99"]
    assert rejected_p99 <= 0.05, backpressure
    assert rejected_p99 < backpressure["served_latency"]["p50"]
    # Bounded tail: p99 tracks the admission bound, not the client count.
    assert (
        backpressure["served_latency"]["p99"] <= backpressure["p99_bound"]
    ), backpressure


# ----------------------------------------------------------------------
# The artifact
# ----------------------------------------------------------------------
def test_write_report(coalescing, scatter, backpressure):
    summary = {
        "smoke": SMOKE,
        "clients": CLIENTS,
        "requests_per_client": REQUESTS_PER_CLIENT,
        "coalescing": coalescing,
        "scatter": scatter,
        "backpressure": backpressure,
        "coalesce_qps_ratio": coalescing["qps_ratio"],
        "scatter_qps_ratio": scatter["qps_ratio"],
    }
    path = write_bench_report("frontdoor", summary)
    rows = [
        [
            "coalescing (hot-skewed)",
            f"{coalescing['off']['qps']:.0f}",
            f"{coalescing['on']['qps']:.0f}",
            f"{coalescing['qps_ratio']:.2f}x",
        ],
        [
            "scatter (uniform, 4 shards)",
            f"{scatter['pooled']['qps']:.0f}",
            f"{scatter['pipelined']['qps']:.0f}",
            f"{scatter['qps_ratio']:.2f}x",
        ],
    ]
    print()
    print(
        format_table(
            ["phase", "baseline qps", "front door qps", "ratio"],
            rows,
            title=f"front door under {CLIENTS} concurrent clients -> {path}",
        )
    )
    print(
        f"backpressure: served={backpressure['served']} "
        f"rejected={backpressure['rejected']} "
        f"queue_peak={backpressure['queue_peak']}/{backpressure['max_queue']} "
        f"served p99={backpressure['served_latency']['p99'] * 1000:.1f}ms "
        f"(bound {backpressure['p99_bound'] * 1000:.1f}ms) "
        f"rejected p99={backpressure['rejected_latency']['p99'] * 1000:.2f}ms"
    )
