"""Figure 9 — index space (MB) for RP, DP, Edge, DG+Edge, IF+Edge, ASR, JI.

The paper reports (100 MB XMark / 50 MB DBLP, after lossless IdList
compression):

    XMark: RP 119, DP 431, Edge 127, DG+Edge 169, IF+Edge 167, ASR 464, JI 822
    DBLP:  RP  80, DP  83, Edge 106, DG+Edge 133, IF+Edge 151, ASR  93, JI 318

Absolute megabytes depend on the dataset scale; the *shape* asserted
here is the paper's: DP is several times larger than RP on the deep
XMark data but close to RP on shallow DBLP; JI is the largest
structure; ASR is larger than RP; and the combined DataGuide+Edge /
IndexFabric+Edge footprints exceed the bare Edge table.
"""

from __future__ import annotations

import pytest

from repro.bench import size_table

#: Figure 9 columns: strategy -> the indices whose sizes add up to that column.
FIGURE9_COLUMNS = {
    "RP": ("rootpaths",),
    "DP": ("datapaths",),
    "Edge": ("edge",),
    "DG+Edge": ("dataguide", "edge"),
    "IF+Edge": ("index_fabric", "edge"),
    "ASR": ("asr",),
    "JI": ("join_index",),
}


def _figure9_row(context) -> dict[str, float]:
    sizes = context.index_sizes_mb()
    return {
        column: sum(sizes[name] for name in parts)
        for column, parts in FIGURE9_COLUMNS.items()
    }


@pytest.fixture(scope="module")
def figure9(xmark_context, dblp_context):
    rows = {
        "xmark": _figure9_row(xmark_context),
        "dblp": _figure9_row(dblp_context),
    }
    print()
    print(size_table(rows, title="Figure 9 — index space (MB)"))
    return rows


def test_fig09_xmark_shape(figure9):
    xmark = figure9["xmark"]
    # DATAPATHS pays a clear space premium over ROOTPATHS on deep data.
    assert xmark["DP"] > 1.5 * xmark["RP"]
    # Join Indices are the largest structure, ASR is also above RP.
    assert xmark["JI"] == max(xmark.values())
    assert xmark["ASR"] > xmark["RP"]
    # Combined baselines cost more than the bare Edge table.
    assert xmark["DG+Edge"] > xmark["Edge"]
    assert xmark["IF+Edge"] > xmark["Edge"]


def test_fig09_dblp_shape(figure9):
    dblp = figure9["dblp"]
    # DATAPATHS still costs more than ROOTPATHS (our byte model does not
    # reproduce the paper's near-parity on DBLP — see EXPERIMENTS.md),
    # but Join Indices remain the largest structure, as in the paper.
    assert dblp["DP"] > dblp["RP"]
    assert dblp["JI"] == max(dblp.values())


def test_fig09_depth_drives_datapaths_premium(figure9):
    xmark_ratio = figure9["xmark"]["DP"] / figure9["xmark"]["RP"]
    dblp_ratio = figure9["dblp"]["DP"] / figure9["dblp"]["RP"]
    # The deep document pays a clearly larger relative premium than the
    # shallow one (431/119 vs 83/80 in the paper).
    assert dblp_ratio < 0.85 * xmark_ratio


def test_fig09_benchmark_size_computation(benchmark, xmark_context):
    """Wall-clock cost of recomputing the Figure 9 row (size accounting)."""
    row = benchmark(_figure9_row, xmark_context)
    assert row["RP"] > 0
