"""Section 5.2.5 — space optimisations for ROOTPATHS and DATAPATHS.

Reproduced observations:

* lossless differential encoding of IdLists saves roughly 30 %,
* SchemaPathId compression saves a little more space but disables
  ``//`` queries,
* workload-based HeadId pruning shrinks DATAPATHS considerably (the
  paper: from 431 MB to 141 MB on XMark, i.e. roughly 1.4x the data
  size) at the cost of disabling index-nested-loop joins for probes the
  workload never makes.
"""

from __future__ import annotations

import pytest

from repro.bench import format_table
from repro.errors import UnsupportedLookupError
from repro.indexes import DataPathsIndex, RootPathsIndex
from repro.paths import HeadIdPruner, compression_ratio, iter_rootpaths_rows
from repro.query import parse_xpath
from repro.storage import StatsCollector
from repro.workloads import queries_for_dataset


@pytest.fixture(scope="module")
def xmark_db(xmark_context):
    return xmark_context.database.db


@pytest.fixture(scope="module")
def compression_report(xmark_db):
    rows = []
    raw_rp = RootPathsIndex(stats=StatsCollector(), differential_idlists=False).build(xmark_db)
    rp = RootPathsIndex(stats=StatsCollector()).build(xmark_db)
    raw_dp = DataPathsIndex(stats=StatsCollector(), differential_idlists=False).build(xmark_db)
    dp = DataPathsIndex(stats=StatsCollector()).build(xmark_db)
    dictionary_dp = DataPathsIndex(stats=StatsCollector(), schema_path_dictionary=True).build(xmark_db)
    pruner = HeadIdPruner.from_workload(
        [parse_xpath(q.xpath) for q in queries_for_dataset("xmark")]
    )
    pruned_dp = DataPathsIndex(stats=StatsCollector(), head_pruner=pruner).build(xmark_db)
    report = {
        "rp_raw": raw_rp.estimated_size_bytes(),
        "rp": rp.estimated_size_bytes(),
        "dp_raw": raw_dp.estimated_size_bytes(),
        "dp": dp.estimated_size_bytes(),
        "dp_dictionary": dictionary_dp.estimated_size_bytes(),
        "dp_pruned": pruned_dp.estimated_size_bytes(),
        "data": xmark_db.estimated_data_size_bytes(),
        "pruned_index": pruned_dp,
        "dictionary_index": dictionary_dp,
    }
    for key in ("rp_raw", "rp", "dp_raw", "dp", "dp_dictionary", "dp_pruned", "data"):
        rows.append((key, f"{report[key] / 1024.0:.1f} KB"))
    print()
    print(format_table(("structure", "size"), rows, title="Section 5.2.5 — space optimisations"))
    return report


def test_idlist_differential_encoding_saves_roughly_30_percent(xmark_db, compression_report):
    ratio = compression_ratio(row.id_list for row in iter_rootpaths_rows(xmark_db))
    # The paper reports roughly 30% savings; our document-order ids are a
    # little more compressible, so accept anything in the 15-55% ratio band
    # that clearly demonstrates the saving without being degenerate.
    assert 0.20 < ratio < 0.85
    assert compression_report["rp"] < compression_report["rp_raw"]
    assert compression_report["dp"] < compression_report["dp_raw"]
    overall = compression_report["dp"] / compression_report["dp_raw"]
    assert overall < 0.95


def test_schema_path_dictionary_saves_space_but_loses_recursion(compression_report):
    assert compression_report["dp_dictionary"] <= compression_report["dp"]
    with pytest.raises(UnsupportedLookupError):
        list(compression_report["dictionary_index"].free_lookup(("item",), None, anchored=False))


def test_headid_pruning_shrinks_datapaths_substantially(compression_report):
    assert compression_report["dp_pruned"] < 0.8 * compression_report["dp"]
    # The paper lands at roughly 1.4x the data size after pruning; our
    # coarse byte model (and the much smaller documents) land higher, so
    # only a broad multiple of the data size is asserted here — the
    # relative saving above is the reproducible claim.
    assert compression_report["dp_pruned"] < 8 * compression_report["data"]


def test_pruned_index_still_answers_workload_probes(compression_report, xmark_context):
    pruned = compression_report["pruned_index"]
    site_id = xmark_context.database.db.documents[0].root.node_id
    matches = list(pruned.bound_lookup(site_id, ("item", "quantity"), "2", anchored=False))
    assert matches
    # Probing below a head the workload never branches at fails.
    mailbox = next(iter(xmark_context.database.db.iter_by_label("mailbox")))
    with pytest.raises(UnsupportedLookupError):
        list(pruned.bound_lookup(mailbox.node_id, ("mail",), None))


def test_benchmark_build_rootpaths(benchmark, xmark_db):
    benchmark.pedantic(
        lambda: RootPathsIndex(stats=StatsCollector()).build(xmark_db), rounds=1, iterations=1
    )


def test_benchmark_build_datapaths(benchmark, xmark_db):
    benchmark.pedantic(
        lambda: DataPathsIndex(stats=StatsCollector()).build(xmark_db), rounds=1, iterations=1
    )
