"""Shared fixtures for the benchmark suite.

Every benchmark runs against the same pair of cached experiment
contexts (an XMark-like and a DBLP-like database) built at
``BENCH_SCALE``.  The scale keeps pure-Python index construction and
the slow baseline strategies tractable while preserving the workload's
selectivity ratios; EXPERIMENTS.md records the mapping to the paper's
absolute numbers.
"""

from __future__ import annotations

import pytest

from repro.bench import get_context
from repro.planner.evaluator import DEFAULT_STRATEGIES

#: Generator scale used by every benchmark.
BENCH_SCALE = 0.2

#: Strategies measured everywhere (cheap); the Edge-based baselines are
#: measured only where the corresponding figure reports them, because a
#: single unselective query can cost them minutes (which is the paper's
#: point, but not something to repeat dozens of times).
FAST_STRATEGIES = ("rootpaths", "datapaths")
PATH_STRATEGIES = ("rootpaths", "datapaths", "edge", "dataguide_edge", "index_fabric_edge")
RELATIONAL_BASELINES = ("rootpaths", "datapaths", "asr", "join_index")


@pytest.fixture(scope="session")
def xmark_context():
    context = get_context("xmark", scale=BENCH_SCALE)
    context.ensure_strategy_indexes(DEFAULT_STRATEGIES)
    return context


@pytest.fixture(scope="session")
def dblp_context():
    context = get_context("dblp", scale=BENCH_SCALE)
    context.ensure_strategy_indexes(DEFAULT_STRATEGIES)
    return context
