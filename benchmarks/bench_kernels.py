"""Columnar kernels — kernels-on vs the legacy per-node evaluation path.

Per-node Python object traversal caps the single engine's serving
throughput; the columnar kernels re-encode the matching hot path as
flat integer columns (interned path ids, preorder id spans) walked by
batch merge passes, behind the engine's ``use_kernels`` flag.  The
kernels are pinned as a *pure encoding change*: same answers, same
:class:`~repro.storage.stats.StatsCollector` counters, on every
strategy — the randomized differential fuzzer guards that contract;
this bench measures what the re-encoding buys.

Three sections, all on the same seeded corpora:

* the Figure 12 twig workload replayed as a mixed read/write serving
  loop (one small document arrives between rounds, exactly the
  ``bench_shard_scaling`` loop) — the headline number;
* the Figure 11 single-path workload, read-only;
* the degenerate shapes the fuzzer leans on (self-nested same-tag
  chains, max-fanout stars), read-only.

Asserted shape:

* every kernels-on answer is bit-identical to the legacy path's, and
  so is every cost counter (checked per strategy on every section's
  workload before any clock starts);
* the mixed Figure 12 loop serves at least 3x the legacy throughput
  with kernels on;
* the Figure 11 and degenerate sections stay ahead of legacy.
"""

from __future__ import annotations

import statistics

import pytest

from repro import TwigIndexDatabase
from repro.bench import format_table, write_bench_report
from repro.datasets import generate_xmark
from repro.obs.clock import now
from repro.workloads import max_fanout_star, query, self_nested_chain

#: The Figure 12 twig workload (high and low branch points).
FIG12_QUERIES = ("Q4x", "Q5x", "Q6x", "Q7x", "Q8x", "Q9x", "Q10x", "Q11x")
#: The Figure 11 single-path workload (XMark side).
FIG11_QUERIES = ("Q1x", "Q2x", "Q3x")
#: Queries over the fuzzer's degenerate shapes.
DEGENERATE_QUERIES = (
    "//a//a//a",
    "//a[a='v0']",
    "/a/a/a",
    "/r/b",
    "/r[b='v1']",
    "//b[c]",
)

BASE_DOCS = 4
BASE_SCALE = 0.08
ROUNDS = 8
DELTA_SCALE = 0.01

#: The acceptance floor for the mixed Figure 12 loop.
ASSERTED_SPEEDUP = 3.0

#: Strategies pinned for answer/counter identity on every workload.
#: (The Edge family is pinned by the fuzzer; here it would only slow
#: the fidelity pass down on the recursive Figure 12 twigs.)
PINNED_STRATEGIES = ("rootpaths", "datapaths", "asr", "join_index", "auto")


def _base_documents():
    return [
        generate_xmark(scale=BASE_SCALE, seed=1000 + i, name=f"xmark-{i}")
        for i in range(BASE_DOCS)
    ]


def _degenerate_documents():
    return [
        self_nested_chain(64, tag="a", name="chain"),
        max_fanout_star(256, name="star"),
    ]


def _delta_document(round_number: int):
    return generate_xmark(
        scale=DELTA_SCALE, seed=9000 + round_number, name=f"delta-{round_number}"
    )


def _engine(use_kernels: bool, documents) -> TwigIndexDatabase:
    database = TwigIndexDatabase(use_kernels=use_kernels)
    for document in documents:
        database.add_document(document)
    database.build_index("rootpaths")
    database.build_index("datapaths")
    database.build_index("asr")
    database.build_index("join_index")
    return database


def _assert_identical(on: TwigIndexDatabase, off: TwigIndexDatabase, workload):
    """The pin: same ids AND same counters, per strategy, per query."""
    for xpath in workload:
        for strategy in PINNED_STRATEGIES:
            a = on.query(xpath, strategy=strategy)
            b = off.query(xpath, strategy=strategy)
            assert a.ids == b.ids, f"{strategy} ids differ on {xpath}"
            assert a.cost == b.cost, f"{strategy} cost differs on {xpath}"


def _serve_mixed(database: TwigIndexDatabase, workload):
    """The bench_shard_scaling mixed loop: add one document, serve the
    whole workload, per round; throughput from the median round."""
    service = database.service
    for xpath in workload:  # warm-up: caches filled, indexes probed
        service.execute(xpath, strategy="auto")
    round_seconds = []
    answers = {}
    for round_number in range(1, ROUNDS + 1):
        service.add_document(_delta_document(round_number))
        started = now()
        for xpath in workload:
            answers[xpath] = service.execute(xpath, strategy="auto").ids
        round_seconds.append(now() - started)
    return {
        "qps": len(workload) / statistics.median(round_seconds),
        "answers": answers,
    }


def _serve_readonly(database: TwigIndexDatabase, workload, passes: int = 30):
    """Read-only serving: the raw strategy inner loop, no result cache."""
    for xpath in workload:
        database.query(xpath, strategy="auto")
    pass_seconds = []
    answers = {}
    for _ in range(passes):
        started = now()
        for xpath in workload:
            answers[xpath] = database.query(xpath, strategy="auto").ids
        pass_seconds.append(now() - started)
    return {
        "qps": len(workload) / statistics.median(pass_seconds),
        "answers": answers,
    }


def _measure_section(documents_factory, workload, serve):
    """One section: two engines on identical corpora, fidelity pinned
    before the clock starts, then the same loop timed on each."""
    on = _engine(True, documents_factory())
    off = _engine(False, documents_factory())
    _assert_identical(on, off, workload)
    measured_on = serve(on, workload)
    measured_off = serve(off, workload)
    assert measured_on["answers"] == measured_off["answers"]
    return {
        "qps_on": measured_on["qps"],
        "qps_off": measured_off["qps"],
        "speedup": measured_on["qps"] / measured_off["qps"],
        "queries": len(workload),
    }


@pytest.fixture(scope="module")
def kernels_bench():
    fig12 = _measure_section(
        _base_documents,
        [query(qid).xpath for qid in FIG12_QUERIES],
        _serve_mixed,
    )
    fig11 = _measure_section(
        _base_documents,
        [query(qid).xpath for qid in FIG11_QUERIES],
        _serve_readonly,
    )
    degenerate = _measure_section(
        _degenerate_documents,
        list(DEGENERATE_QUERIES),
        _serve_readonly,
    )

    sections = {
        "fig12_mixed": fig12,
        "fig11_single_path": fig11,
        "degenerate_shapes": degenerate,
    }
    rows = [
        [
            name,
            f"{measured['qps_off']:.0f}",
            f"{measured['qps_on']:.0f}",
            f"{measured['speedup']:.2f}x",
        ]
        for name, measured in sections.items()
    ]
    print()
    print(
        format_table(
            ["workload", "legacy q/s", "kernels q/s", "speedup"],
            rows,
            title=(
                "Columnar kernels vs legacy evaluation "
                f"(Fig12 mixed loop asserted >= {ASSERTED_SPEEDUP:.0f}x)"
            ),
        )
    )
    write_bench_report(
        "kernels",
        {
            "rounds": ROUNDS,
            "base_docs": BASE_DOCS,
            "base_scale": BASE_SCALE,
            "asserted_speedup": ASSERTED_SPEEDUP,
            "pinned_strategies": list(PINNED_STRATEGIES),
            "sections": sections,
        },
    )
    return sections


def test_fig12_mixed_loop_speedup_at_least_3x(kernels_bench):
    measured = kernels_bench["fig12_mixed"]
    assert measured["speedup"] >= ASSERTED_SPEEDUP, (
        f"kernels serve the mixed Fig12 loop at {measured['qps_on']:.0f} q/s, "
        f"only {measured['speedup']:.2f}x the legacy "
        f"{measured['qps_off']:.0f} q/s"
    )


def test_fig11_single_path_stays_ahead(kernels_bench):
    # Single-path lookups spend most of their time in the index probe
    # itself, so the kernel win is structurally smaller than on twigs;
    # it must still be a win.
    assert kernels_bench["fig11_single_path"]["speedup"] >= 1.2


def test_degenerate_shapes_stay_ahead(kernels_bench):
    assert kernels_bench["degenerate_shapes"]["speedup"] >= 1.2


def test_kernels_benchmark_single_twig(benchmark):
    database = _engine(True, _base_documents())
    xpath = query("Q4x").xpath
    database.query(xpath, strategy="auto")  # warm plan caches
    benchmark(lambda: database.query(xpath, strategy="auto"))
