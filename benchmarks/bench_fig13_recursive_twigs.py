"""Figure 13 — twig queries with a ``//`` branch point, vs. ASR and Join Indices.

Q12x–Q15x contain ``/site//item[...]`` branches whose recursion matches
six schema paths (one per XMark region).  The paper's findings:

* DATAPATHS beats ASR and Join Indices (up to ~5x) because the unified
  index is probed once, while ASR/JI must access one relation per
  matching subpath;
* the gap narrows when every branch is unselective (join cost dominates);
* ROOTPATHS does poorly here because it cannot use index-nested-loop
  joins;
* Join Indices need more space and more joins than ASR.
"""

from __future__ import annotations

import pytest

from repro.bench import compare_strategies, measurement_table
from repro.workloads import query

from conftest import RELATIONAL_BASELINES

MIXED = ("Q12x", "Q13x")
UNSELECTIVE = ("Q14x", "Q15x")


@pytest.fixture(scope="module")
def figure13(xmark_context):
    results = {}
    for qid in MIXED + UNSELECTIVE:
        results[qid] = compare_strategies(xmark_context, query(qid), RELATIONAL_BASELINES)
    print()
    print(measurement_table(results, metric="total_cost", title="Figure 13 — logical cost"))
    print(measurement_table(results, metric="elapsed_ms", title="Figure 13 — wall time (ms)"))
    return results


def test_fig13_all_strategies_correct(figure13):
    for qid, per_strategy in figure13.items():
        for strategy, measurement in per_strategy.items():
            assert measurement.correct, f"{strategy} wrong on {qid}"


def test_fig13a_datapaths_beats_asr_and_ji_when_selective_branch_exists(figure13):
    for qid in MIXED:
        dp = figure13[qid]["datapaths"].total_cost
        asr = figure13[qid]["asr"].total_cost
        ji = figure13[qid]["join_index"].total_cost
        assert asr > dp, qid
        assert ji > dp, qid


def test_fig13_gap_narrows_for_unselective_branches(figure13):
    mixed_ratio = figure13["Q12x"]["asr"].total_cost / figure13["Q12x"]["datapaths"].total_cost
    unselective_ratio = (
        figure13["Q14x"]["asr"].total_cost / figure13["Q14x"]["datapaths"].total_cost
    )
    assert unselective_ratio < mixed_ratio


def test_fig13_rootpaths_loses_inl_advantage(figure13):
    # RP has no BoundIndex, so on the selective-branch queries it is
    # clearly worse than DP.
    for qid in MIXED:
        assert figure13[qid]["rootpaths"].total_cost > figure13[qid]["datapaths"].total_cost


def test_fig13_ji_needs_more_relation_accesses_than_dp(xmark_context):
    ji = xmark_context.database.indexes["join_index"]
    asr = xmark_context.database.indexes["asr"]
    dp = xmark_context.database.indexes["datapaths"]
    # One unified structure vs hundreds of per-path relations (the
    # manageability argument of Section 5.2.6).
    assert asr.relation_count > 50
    assert ji.relation_count > asr.relation_count
    assert dp.estimated_size_bytes() < ji.estimated_size_bytes()


@pytest.mark.parametrize("qid", MIXED + UNSELECTIVE)
@pytest.mark.parametrize("strategy", RELATIONAL_BASELINES)
def test_fig13_benchmark(benchmark, qid, strategy, xmark_context):
    workload_query = query(qid)
    benchmark.pedantic(
        lambda: xmark_context.database.query(workload_query.xpath, strategy=strategy),
        rounds=2,
        iterations=1,
    )
