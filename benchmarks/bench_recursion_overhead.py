"""Section 5.2.4 — overhead of recursive ("//") queries for RP and DP.

The paper reports that ROOTPATHS and DATAPATHS evaluate the Section
5.2.2 twigs with a leading ``//`` at less than ~5 % extra cost, because
the recursion becomes a B+-tree prefix match on the reversed schema
path.  Here the same queries are run in both forms and the relative
overhead is asserted to stay small (a generous 25 % bound at this
dataset scale, where constant factors weigh more than in the paper).
"""

from __future__ import annotations

import pytest

from repro.bench import format_table
from repro.workloads import query

from conftest import FAST_STRATEGIES

QUERIES = ("Q4x", "Q5x", "Q6x", "Q7x", "Q8x", "Q9x")


@pytest.fixture(scope="module")
def recursion_overhead(xmark_context):
    rows = []
    results = {}
    for qid in QUERIES:
        workload_query = query(qid)
        for strategy in FAST_STRATEGIES:
            plain = xmark_context.measure_xpath(workload_query.xpath, strategy, qid=qid)
            recursive = xmark_context.measure_xpath(
                workload_query.recursive_variant(), strategy, qid=qid + "//"
            )
            overhead = recursive.total_cost / max(1, plain.total_cost) - 1.0
            results[(qid, strategy)] = (plain, recursive, overhead)
            rows.append(
                (qid, strategy, plain.total_cost, recursive.total_cost, f"{overhead * 100:.1f}%")
            )
    print()
    print(
        format_table(
            ("query", "strategy", "plain cost", "// cost", "overhead"),
            rows,
            title="Section 5.2.4 — recursion overhead",
        )
    )
    return results


def test_recursive_variants_return_same_answers(recursion_overhead):
    for (qid, strategy), (plain, recursive, _overhead) in recursion_overhead.items():
        assert plain.correct and recursive.correct, (qid, strategy)
        assert plain.cardinality == recursive.cardinality, (qid, strategy)


def test_recursion_overhead_is_small(recursion_overhead):
    overheads = [overhead for _plain, _recursive, overhead in recursion_overhead.values()]
    assert max(overheads) < 0.25
    # And on average well below the bound, mirroring the paper's "<5%".
    assert sum(overheads) / len(overheads) < 0.10


@pytest.mark.parametrize("qid", ("Q4x", "Q8x"))
@pytest.mark.parametrize("strategy", FAST_STRATEGIES)
@pytest.mark.parametrize("recursive", (False, True), ids=("plain", "recursive"))
def test_benchmark_recursion_overhead(benchmark, qid, strategy, recursive, xmark_context):
    workload_query = query(qid)
    xpath = workload_query.recursive_variant() if recursive else workload_query.xpath
    benchmark(lambda: xmark_context.database.query(xpath, strategy=strategy))
