"""Figures 7, 8 and 10 — the workload itself.

The paper's Figures 7/8 list every query with its per-branch result
size, and Figure 10 groups them by number of branches, selectivity and
recursion.  This bench regenerates the same table against the synthetic
datasets and asserts that the selectivity *classes* (selective /
moderate / unselective, per branch) come out in the intended order.
"""

from __future__ import annotations

import pytest

from repro.bench import format_table
from repro.query import parse_xpath
from repro.workloads import ALL_QUERIES, query


@pytest.fixture(scope="module")
def cardinalities(xmark_context, dblp_context):
    rows = []
    per_query = {}
    for workload_query in ALL_QUERIES:
        context = xmark_context if workload_query.dataset == "xmark" else dblp_context
        matcher = context.database.matcher()
        twig = parse_xpath(workload_query.xpath)
        branch_sizes = matcher.branch_cardinalities(twig)
        result_size = matcher.count_matches(twig)
        per_query[workload_query.qid] = (branch_sizes, result_size)
        rows.append(
            (
                workload_query.qid,
                workload_query.branches,
                workload_query.selectivity,
                workload_query.recursions,
                "/".join(str(s) for s in branch_sizes),
                result_size,
            )
        )
    print()
    print(
        format_table(
            ("query", "branches", "class", "recursions", "per-branch sizes", "result"),
            rows,
            title="Figures 7/8/10 — workload cardinalities",
        )
    )
    return per_query


def test_fig7_single_path_selectivity_ordering(cardinalities):
    assert cardinalities["Q1x"][1] == 1
    assert cardinalities["Q1d"][1] == 1
    assert cardinalities["Q1x"][1] < cardinalities["Q2x"][1] < cardinalities["Q3x"][1]
    assert cardinalities["Q1d"][1] < cardinalities["Q2d"][1] < cardinalities["Q3d"][1]


def test_fig7_branch_counts_match_catalog(cardinalities):
    for workload_query in ALL_QUERIES:
        branch_sizes, _result = cardinalities[workload_query.qid]
        assert len(branch_sizes) == workload_query.branches, workload_query.qid


def test_fig7_selective_branches_are_small(cardinalities):
    # The planted selective predicates: income=46814.17, Hagen Artosi,
    # person22082, quantity=5.
    assert cardinalities["Q4x"][0][0] == 1
    assert cardinalities["Q5x"][0][1] == 1
    assert cardinalities["Q10x"][0][0] == 3
    assert 1 <= cardinalities["Q12x"][0][0] <= cardinalities["Q12x"][0][1]


def test_fig8_recursive_queries_have_multiple_item_paths(xmark_context):
    from repro.paths import PathPattern, distinct_schema_paths, matching_schema_paths

    paths = distinct_schema_paths(xmark_context.database.db)
    item_paths = matching_schema_paths(PathPattern((("site",), ("item",)), anchored=True), paths)
    assert len(item_paths) == 6  # the six XMark regions of Section 5.2.6


def test_fig10_mixed_queries_have_both_small_and_large_branches(cardinalities):
    for qid in ("Q6x", "Q7x", "Q12x", "Q13x"):
        sizes, _ = cardinalities[qid]
        assert min(sizes) * 5 <= max(sizes), qid


@pytest.mark.parametrize("qid", ("Q1x", "Q5x", "Q9x", "Q13x"))
def test_benchmark_oracle_matching(benchmark, qid, xmark_context):
    """Wall-clock cost of the naive oracle (for scale, not a paper figure)."""
    workload_query = query(qid)
    matcher = xmark_context.database.matcher()
    twig = parse_xpath(workload_query.xpath)
    benchmark.pedantic(lambda: matcher.match_ids(twig), rounds=1, iterations=1)
