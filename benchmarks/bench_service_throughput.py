"""Service layer — batched/cached serving vs per-query execution.

A serving workload repeats a small set of queries many times (the shape
of the paper's Figures 11–13 benches, and of any real query server).
Per-query :meth:`TwigQueryEngine.execute` re-parses the XPath, re-checks
index availability and builds a fresh strategy object every time; the
:class:`~repro.service.QueryService` amortises all of that through its
plan cache, reusable strategy instances and result cache.

Asserted shape:

* the batched/cached path is at least 2x faster than per-query
  execution on a repeated-query workload,
* ``strategy="auto"`` never exceeds the best fixed strategy's weighted
  cost by more than 10% on the Figure 12 twig workload (the fig12
  suite separately pins RP/DP as the overall winners there).
"""

from __future__ import annotations


import pytest

from repro.bench import format_table, write_bench_report
from repro.obs.clock import now
from repro.service import QueryService
from repro.workloads import query

from conftest import FAST_STRATEGIES

#: The repeated-query serving workload: every XMark query of Figures 11
#: and 12, round-robin.
SERVED_QUERIES = ("Q1x", "Q2x", "Q3x", "Q4x", "Q5x", "Q6x", "Q7x", "Q8x", "Q9x", "Q10x", "Q11x")
REPEATS = 20

FIG12_QUERIES = ("Q4x", "Q5x", "Q6x", "Q7x", "Q8x", "Q9x", "Q10x", "Q11x")


def _workload() -> list[str]:
    return [query(qid).xpath for _ in range(REPEATS) for qid in SERVED_QUERIES]


@pytest.fixture(scope="module")
def throughput(xmark_context):
    database = xmark_context.database
    workload = _workload()

    started = now()
    for xpath in workload:
        database.engine.execute(xpath, strategy="rootpaths")
    per_query_seconds = now() - started

    service = QueryService(database.engine)  # fresh caches
    started = now()
    batch = service.execute_batch(workload, strategy="auto")
    batched_seconds = now() - started

    queries_per_second = len(workload) / batched_seconds
    print()
    print(
        format_table(
            ["path", "seconds", "queries/s"],
            [
                ["per-query execute", f"{per_query_seconds:.3f}",
                 f"{len(workload) / per_query_seconds:.0f}"],
                ["batched + cached", f"{batched_seconds:.3f}", f"{queries_per_second:.0f}"],
            ],
            title=f"Service throughput — {len(workload)} queries "
            f"({len(SERVED_QUERIES)} distinct x {REPEATS})",
        )
    )
    print("service counters:", service.describe())
    write_bench_report(
        "service_throughput",
        {
            "workload_queries": len(workload),
            "distinct_queries": len(SERVED_QUERIES),
            "repeats": REPEATS,
            "per_query_seconds": per_query_seconds,
            "batched_seconds": batched_seconds,
            "batched_qps": queries_per_second,
            "speedup": per_query_seconds / batched_seconds,
            "batch_total_cost": batch.total_cost,
        },
    )
    return {
        "per_query_seconds": per_query_seconds,
        "batched_seconds": batched_seconds,
        "batch": batch,
        "service": service,
    }


def test_batched_cached_at_least_2x_faster(throughput):
    assert throughput["per_query_seconds"] >= 2 * throughput["batched_seconds"], (
        f"batched path {throughput['batched_seconds']:.3f}s not 2x faster than "
        f"per-query {throughput['per_query_seconds']:.3f}s"
    )


def test_batch_answers_are_correct_and_cached(throughput, xmark_context):
    batch = throughput["batch"]
    expected = {
        query(qid).xpath: xmark_context.database.oracle(query(qid).xpath)
        for qid in SERVED_QUERIES
    }
    for result in batch:
        assert result.ids == expected[result.xpath], result.xpath
    # Only the first round misses; every repeat hits the result cache.
    assert batch.cache_misses == len(SERVED_QUERIES)
    assert batch.cache_hits == len(SERVED_QUERIES) * (REPEATS - 1)


def test_auto_within_10pct_of_best_fixed_strategy(xmark_context):
    database = xmark_context.database
    rows = []
    for qid in FIG12_QUERIES:
        xpath = query(qid).xpath
        fixed_costs = {
            strategy: database.engine.execute(xpath, strategy=strategy).total_cost
            for strategy in FAST_STRATEGIES
        }
        auto = database.query(xpath, strategy="auto")
        assert auto.ids == database.oracle(xpath), qid
        best = min(fixed_costs.values())
        rows.append([qid, auto.strategy, auto.total_cost, best])
        assert auto.total_cost <= 1.1 * best + 1, (
            f"{qid}: auto({auto.strategy})={auto.total_cost} "
            f"vs best fixed={best} ({fixed_costs})"
        )
    print()
    print(
        format_table(
            ["query", "auto picked", "auto cost", "best fixed cost"],
            rows,
            title="Figure 12 — auto strategy vs best fixed strategy",
        )
    )


def test_auto_picks_inl_on_low_branch_points(xmark_context):
    # Figure 12(d): DP's index-nested-loop plan wins at low branch
    # points; auto must follow the optimizer there.
    database = xmark_context.database
    service = database.service
    for qid in ("Q10x", "Q11x"):
        choice = service.choose(query(qid).xpath)
        assert choice.strategy == "datapaths", (qid, str(choice))
        assert choice.datapaths_plan is not None
        assert choice.datapaths_plan.plan == "inl", (qid, str(choice.datapaths_plan))


def test_service_benchmark_cached_execute(benchmark, xmark_context):
    service = QueryService(xmark_context.database.engine)
    xpath = query("Q4x").xpath
    service.execute(xpath, strategy="auto")  # warm the caches
    benchmark(lambda: service.execute(xpath, strategy="auto"))
