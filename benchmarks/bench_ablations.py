"""Ablation benches for the design choices Section 5 calls out.

The paper attributes the performance of ROOTPATHS/DATAPATHS to
(a) indexing schema paths and values together, (b) returning full
IdLists, (c) reversing the schema path for recursion, and (d) support
for index-nested-loop joins.  Each ablation disables exactly one of
those and shows the corresponding cost reappearing.
"""

from __future__ import annotations

import pytest

from repro.bench import format_table
from repro.errors import UnsupportedLookupError
from repro.indexes import RootPathsIndex
from repro.planner.strategies import RootPathsStrategy
from repro.query import parse_xpath
from repro.storage import StatsCollector
from repro.workloads import query


@pytest.fixture(scope="module")
def xmark_db(xmark_context):
    return xmark_context.database.db


# ----------------------------------------------------------------------
# (a) indexing SchemaPath and LeafValue together — vs the DG+Edge plan
# ----------------------------------------------------------------------
def test_ablation_separate_value_index_costs_a_join(xmark_context):
    workload_query = query("Q3x")
    combined = xmark_context.measure(workload_query, "rootpaths")
    separate = xmark_context.measure(workload_query, "dataguide_edge")
    assert combined.correct and separate.correct
    assert separate.total_cost > 2 * combined.total_cost
    print()
    print(
        format_table(
            ("plan", "logical cost"),
            [("SchemaPath+Value together (RP)", combined.total_cost),
             ("separate value index (DG+Edge)", separate.total_cost)],
            title="Ablation (a): indexing schema path and value together",
        )
    )


# ----------------------------------------------------------------------
# (b) returning full IdLists — vs storing only the last id
# ----------------------------------------------------------------------
def test_ablation_idlists_enable_cheap_branch_joins(xmark_db, xmark_context):
    stats_full = StatsCollector()
    full = RootPathsIndex(stats=stats_full).build(xmark_db)
    stats_last = StatsCollector()
    last_only = RootPathsIndex(stats=stats_last, store_full_idlist=False).build(xmark_db)
    twig = parse_xpath(query("Q6x").xpath)

    strategy = RootPathsStrategy(xmark_db, {"rootpaths": full}, stats=stats_full)
    expected = xmark_context.database.oracle(query("Q6x").xpath)
    assert strategy.evaluate(twig) == expected

    # Without IdLists the same plan cannot find the branch-point ids at
    # all: the rows it extracts no longer contain the site ids.
    crippled = RootPathsStrategy(xmark_db, {"rootpaths": last_only}, stats=stats_last)
    assert crippled.evaluate(twig) != expected
    # And the index itself is smaller — the space/time tradeoff.
    assert last_only.estimated_size_bytes() < full.estimated_size_bytes()


# ----------------------------------------------------------------------
# (c) reversing the SchemaPath — vs forward paths
# ----------------------------------------------------------------------
def test_ablation_reversed_schema_path_supports_recursion(xmark_db):
    reversed_index = RootPathsIndex(stats=StatsCollector()).build(xmark_db)
    forward_index = RootPathsIndex(stats=StatsCollector(), reverse_schema_path=False).build(xmark_db)
    assert reversed_index.count(("item", "quantity"), "2", anchored=False) > 0
    with pytest.raises(UnsupportedLookupError):
        forward_index.count(("item", "quantity"), "2", anchored=False)


# ----------------------------------------------------------------------
# (d) index-nested-loop support — DP forced merge vs forced INL
# ----------------------------------------------------------------------
def test_ablation_inl_vs_merge_on_low_branch_point(xmark_context):
    workload_query = query("Q10x")
    database = xmark_context.database
    expected = database.oracle(workload_query.xpath)
    inl = database.query(workload_query.xpath, strategy="datapaths", force_plan="inl")
    merge = database.query(workload_query.xpath, strategy="datapaths", force_plan="merge")
    assert inl.ids == merge.ids == expected
    assert inl.total_cost < merge.total_cost
    print()
    print(
        format_table(
            ("plan", "logical cost"),
            [("index-nested-loop (BoundIndex)", inl.total_cost),
             ("sort-merge (FreeIndex only)", merge.total_cost)],
            title="Ablation (d): index-nested-loop join on Q10x",
        )
    )


# ----------------------------------------------------------------------
# Benchmarked ablations
# ----------------------------------------------------------------------
@pytest.mark.parametrize("plan", ("inl", "merge"))
def test_benchmark_dp_plan_choice(benchmark, plan, xmark_context):
    workload_query = query("Q10x")
    benchmark(
        lambda: xmark_context.database.query(
            workload_query.xpath, strategy="datapaths", force_plan=plan
        )
    )


@pytest.mark.parametrize("reverse", (True, False), ids=("reversed", "forward"))
def test_benchmark_schema_path_direction_on_anchored_lookup(benchmark, reverse, xmark_db):
    index = RootPathsIndex(stats=StatsCollector(), reverse_schema_path=reverse).build(xmark_db)
    labels = ("site", "regions", "namerica", "item", "quantity")
    benchmark(lambda: index.count(labels, "2", anchored=True))
