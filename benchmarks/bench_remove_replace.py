"""Incremental document removal vs full rebuild — shrink-by-one workload.

The mirror image of ``bench_incremental_update.py``: a serving system
must also *forget* documents while indexes stay online.  This bench
removes one small document from an XMark-like corpus and compares, in
the shared maintenance-cost currency
(:func:`~repro.storage.stats.maintenance_cost`: page-granular writes at
weight 10 plus per-entry insert/delete work), the cost of

* **incremental remove** — one
  :meth:`~repro.indexes.base.PathIndex.remove` per built index
  (B+-tree deletes of just the removed document's rows), vs
* **full rebuild** — building every index from scratch over the
  post-removal database, which is the only alternative a correct
  answer allows.

Asserted shape:

* incremental remove-one is cheaper than the rebuild by at least a
  conservative 5x (the corpus is ~8x the removed document),
* the delete work is *visible*: the stats snapshot diff charges
  ``btree_deletes`` and page writes, and the service/cache ``describe()``
  reports surface the removal and the result-cache invalidation it
  caused — the counters this PR made consistent,
* both maintenance paths answer the Figure 12-style workload
  identically (and correctly w.r.t. the oracle), and a replace
  (remove + add) stays consistent too.

See ``docs/BENCHMARKS.md`` for how this bench relates to the paper.
"""

from __future__ import annotations

import pytest

from repro import TwigIndexDatabase
from repro.bench import format_table, write_bench_report
from repro.datasets import generate_xmark
from repro.storage.stats import maintenance_cost
from repro.workloads.generator import branch_count_sweep

#: Corpus and victim scales: the surviving base is ~8x the removed
#: document, so a clear gap between incremental and rebuild cost is
#: structural, not noise.
BASE_SCALE = 0.16
VICTIM_SCALE = 0.02

#: The four indexes with true incremental deletion.
MAINTAINED_INDEXES = ("rootpaths", "datapaths", "edge", "dataguide")

#: Conservative floor for the incremental advantage on this corpus.
MIN_SPEEDUP = 5.0


def _documents():
    """Fresh base + victim documents (documents cannot be shared)."""
    return (
        generate_xmark(scale=BASE_SCALE, seed=7, name="base"),
        generate_xmark(scale=VICTIM_SCALE, seed=99, name="victim"),
    )


@pytest.fixture(scope="module")
def shrink_by_one():
    # Incremental path: indexes built over the full corpus forget the
    # victim through one remove() per index.
    base, victim = _documents()
    incremental = TwigIndexDatabase.from_documents([base, victim])
    for name in MAINTAINED_INDEXES:
        incremental.build_index(name)
    # Warm the result cache so the removal's invalidation is observable.
    incremental.service.execute("/site/people/person/name")
    before = incremental.stats.snapshot()
    incremental.remove_document("victim")
    removal_diff = incremental.stats.diff(before)
    incremental_cost = maintenance_cost(removal_diff)

    # Rebuild path: the same post-removal corpus, indexes from scratch.
    base, _ = _documents()
    rebuilt = TwigIndexDatabase.from_documents([base])
    before = rebuilt.stats.snapshot()
    for name in MAINTAINED_INDEXES:
        rebuilt.build_index(name)
    rebuild_cost = maintenance_cost(rebuilt.stats.diff(before))

    print()
    print(
        format_table(
            ["maintenance path", "weighted cost", "relative"],
            [
                ["incremental remove-one", incremental_cost, "1.0x"],
                [
                    "full rebuild",
                    rebuild_cost,
                    f"{rebuild_cost / max(1, incremental_cost):.1f}x",
                ],
            ],
            title=f"Shrink-by-one maintenance cost — indexes: "
            f"{', '.join(MAINTAINED_INDEXES)}",
        )
    )
    write_bench_report(
        "remove_replace",
        {
            "indexes": list(MAINTAINED_INDEXES),
            "incremental_cost": incremental_cost,
            "rebuild_cost": rebuild_cost,
            "cost_ratio": rebuild_cost / max(1, incremental_cost),
        },
    )
    return {
        "incremental": incremental,
        "rebuilt": rebuilt,
        "removal_diff": removal_diff,
        "incremental_cost": incremental_cost,
        "rebuild_cost": rebuild_cost,
    }


def test_incremental_remove_beats_rebuild(shrink_by_one):
    incremental_cost = shrink_by_one["incremental_cost"]
    rebuild_cost = shrink_by_one["rebuild_cost"]
    assert incremental_cost > 0, "removal must charge write work"
    assert rebuild_cost >= MIN_SPEEDUP * incremental_cost, (
        f"incremental remove-one ({incremental_cost}) not at least "
        f"{MIN_SPEEDUP}x cheaper than rebuild ({rebuild_cost})"
    )


def test_delete_counters_are_surfaced_consistently(shrink_by_one):
    """The counters the removal charged are visible at every layer.

    The stats snapshot diff carries the raw delete work; the service
    ``describe()`` reports the removal and the incremental (result-only)
    invalidation it caused; the result cache's ``describe()`` shows the
    cleared entries.  A benchmark can therefore assert on maintenance
    activity without reaching into private state.
    """
    diff = shrink_by_one["removal_diff"]
    assert diff["btree_deletes"] > 0
    assert diff["btree_page_writes"] > 0
    assert diff["heap_page_writes"] > 0  # the Edge heap pages rewritten
    assert maintenance_cost(diff) == (
        10 * (diff["btree_page_writes"] + diff["heap_page_writes"])
        + diff["btree_writes"]
        + diff["btree_deletes"]
    )

    report = shrink_by_one["incremental"].service.describe()
    assert report["maintenance"]["documents_removed"] == 1
    assert report["result_invalidations"] >= 1
    assert report["result_cache"]["clears"] >= 1
    assert report["result_cache"]["cleared_entries"] >= 1


def test_both_maintenance_paths_answer_identically(shrink_by_one):
    incremental = shrink_by_one["incremental"]
    rebuilt = shrink_by_one["rebuilt"]
    queries = [
        generated.xpath
        for selectivity in ("selective", "unselective")
        for generated in branch_count_sweep(selectivity, max_branches=2)
    ]
    queries.append("/site/people/person/name")
    for xpath in queries:
        expected = rebuilt.oracle(xpath)
        for strategy in ("rootpaths", "datapaths", "edge", "auto"):
            assert incremental.query(xpath, strategy=strategy).ids == expected, (
                strategy,
                xpath,
            )
            assert rebuilt.query(xpath, strategy=strategy).ids == expected, (
                strategy,
                xpath,
            )


def test_remove_replace_benchmark(benchmark):
    # Wall-clock shape of one replace (remove + add) round trip on a
    # small corpus; the cost assertion above is the pin.
    base = generate_xmark(scale=0.05, seed=7, name="base")
    churn = generate_xmark(scale=0.01, seed=13, name="churn")
    database = TwigIndexDatabase.from_documents([base, churn])
    for name in MAINTAINED_INDEXES:
        database.build_index(name)

    counter = iter(range(10_000))

    def replace_one():
        database.replace_document(
            "churn",
            generate_xmark(scale=0.01, seed=13 + next(counter), name="churn"),
        )

    benchmark.pedantic(replace_one, rounds=3, iterations=1)
