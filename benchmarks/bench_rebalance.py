"""Rebalancing and replication — the dynamic-topology wins, pinned.

Two serving-tier phenomena the static topology of PR 3 could not fix,
measured and asserted here:

**Skew recovery.**  Hash placement is deterministic, so a corpus whose
names happen to collide lands on one shard and *stays* there — every
write invalidates the mega-shard's result cache and each serving round
re-executes the whole workload over effectively the whole corpus, while
the other shards sit idle.  The bench builds exactly that pathology
(names crafted to hash onto shard 0 of 4), replays the Figure 12 twig
workload as a mixed read/write loop (one small skew-named document
arrives per round), then calls ``rebalance(policy="size_balanced")``
and replays the same loop.  Post-rebalance each write invalidates only
the ~quarter of the corpus that shares shard 0 with it; the other
shards keep serving their cached partial answers.  Asserted: at least
**1.2x** the pre-rebalance throughput (it is usually well above), with
answers identical to the index-free oracle before and after, and the
move/span counters surfaced through ``describe()``.

**Replica read scale-out.**  Pure-Python threads cannot parallelize
CPU-bound twig matching, so the honest replica win in this codebase is
*aggregate result-cache capacity*: when the distinct-query working set
overflows one engine's result cache, a cyclic workload thrashes the
LRU and every round re-executes everything.  Three replicas behind the
``sticky`` picker partition the working set by query hash — each
replica caches only its slice, the slices fit, and steady-state rounds
serve from cache.  The bench runs a 12-query read-only workload
against a result cache of 6 entries with 1 replica vs 3 replicas
(sticky), asserting at least **1.5x** read throughput; the
``round_robin`` picker is measured alongside to show affinity is what
makes the capacity win (each replica eventually sees every query, so
round-robin still thrashes).

Both experiments are summarized into ``BENCH_rebalance.json``
(:func:`repro.bench.write_bench_report`) so the trajectory is tracked
across PRs.
"""

from __future__ import annotations

import statistics
import zlib

import pytest

from repro import ShardedQueryService
from repro.bench import format_table, write_bench_report
from repro.datasets import generate_xmark
from repro.obs.clock import now
from repro.workloads import query

#: The Figure 12 twig workload (high and low branch points).
FIG12_QUERIES = ("Q4x", "Q5x", "Q6x", "Q7x", "Q8x", "Q9x", "Q10x", "Q11x")

#: The wider read workload of the replica experiment: 13 distinct
#: queries — more than REPLICA_CACHE_SIZE result slots, and coprime to
#: the replica count so round-robin cannot degenerate into accidental
#: affinity (a cycle divisible by the replica count would pin each
#: query to one replica by alignment alone).  The sticky slices (CRC32
#: mod 3) are 4/4/5 queries, each within one replica's cache.
READ_QUERIES = FIG12_QUERIES + ("Q1x", "Q2x", "Q3x", "Q12x", "Q13x")

NUM_SHARDS = 4
BASE_DOCS = 6
BASE_SCALE = 0.04
ROUNDS = 6
DELTA_SCALE = 0.01

REPLICAS = 3
REPLICA_CACHE_SIZE = 6
READ_ROUNDS = 5


def _skewed_name(base: str) -> str:
    """A document name whose CRC32 lands on shard 0 of NUM_SHARDS."""
    for salt in range(10_000):
        name = f"{base}-{salt}"
        if zlib.crc32(name.encode("utf-8")) % NUM_SHARDS == 0:
            return name
    raise AssertionError("no skewed name found")  # pragma: no cover


def _base_documents():
    return [
        generate_xmark(scale=BASE_SCALE, seed=1000 + i, name=_skewed_name(f"doc-{i}"))
        for i in range(BASE_DOCS)
    ]


def _delta_document(round_number: int):
    return generate_xmark(
        scale=DELTA_SCALE,
        seed=9000 + round_number,
        name=_skewed_name(f"delta-{round_number}"),
    )


def _serve_rounds(service, workload, first_round, rounds):
    """The mixed read/write loop; returns median-round qps and answers."""
    for xpath in workload:  # warm-up: caches filled, indexes probed
        service.execute(xpath)
    round_seconds: list[float] = []
    answers = {}
    for round_number in range(first_round, first_round + rounds):
        service.add_document(_delta_document(round_number))
        started = now()
        for xpath in workload:
            answers[xpath] = service.execute(xpath).ids
        round_seconds.append(now() - started)
    return {
        # Median round, so one scheduler hiccup cannot skew the ratio.
        "qps": len(workload) / statistics.median(round_seconds),
        "elapsed": sum(round_seconds),
        "answers": answers,
    }


@pytest.fixture(scope="module")
def skew_recovery():
    workload = [query(qid).xpath for qid in FIG12_QUERIES]
    with ShardedQueryService.from_documents(
        _base_documents(), num_shards=NUM_SHARDS, placement="hash"
    ) as service:
        service.build_index("rootpaths")
        service.build_index("datapaths")
        spread_before = service.collection.topology.live_counts()

        pre = _serve_rounds(service, workload, first_round=1, rounds=ROUNDS)
        pre["oracle"] = {xpath: service.oracle(xpath) for xpath in workload}

        report = service.rebalance("size_balanced", compact=True)
        spread_after = service.collection.topology.live_counts()

        post = _serve_rounds(service, workload, first_round=ROUNDS + 1, rounds=ROUNDS)
        post["oracle"] = {xpath: service.oracle(xpath) for xpath in workload}
        describe = service.describe()

    measured = {
        "pre": pre,
        "post": post,
        "rebalance": report,
        "spread_before": spread_before,
        "spread_after": spread_after,
        "describe": describe,
    }
    print()
    print(
        format_table(
            ["topology", "documents per shard", "queries/s", "throughput"],
            [
                [
                    "skewed (hash)",
                    "/".join(map(str, spread_before)),
                    f"{pre['qps']:.0f}",
                    "1.00x",
                ],
                [
                    "rebalanced",
                    "/".join(map(str, spread_after)),
                    f"{post['qps']:.0f}",
                    f"{post['qps'] / pre['qps']:.2f}x",
                ],
            ],
            title=(
                f"Skew recovery — Figure 12 workload, {ROUNDS} rounds, "
                f"one skew-named add per round, {NUM_SHARDS} shards"
            ),
        )
    )
    return measured


@pytest.fixture(scope="module")
def replica_scaling():
    workload = [query(qid).xpath for qid in READ_QUERIES]
    documents_params = [(0.03, 2000 + i, f"rdoc-{i}") for i in range(3)]

    def build(replicas: int, picker: str) -> ShardedQueryService:
        service = ShardedQueryService.from_documents(
            [
                generate_xmark(scale=scale, seed=seed, name=name)
                for scale, seed, name in documents_params
            ],
            num_shards=1,
            placement="hash",
            replicas=replicas,
            read_picker=picker,
            result_cache_size=REPLICA_CACHE_SIZE,
        )
        service.build_index("rootpaths")
        service.build_index("datapaths")
        return service

    def serve_reads(service: ShardedQueryService) -> dict:
        for xpath in workload:  # warm-up
            service.execute(xpath)
        round_seconds: list[float] = []
        answers = {}
        for _ in range(READ_ROUNDS):
            started = now()
            for xpath in workload:
                answers[xpath] = service.execute(xpath).ids
            round_seconds.append(now() - started)
        return {
            "qps": len(workload) / statistics.median(round_seconds),
            "answers": answers,
            "oracle": {xpath: service.oracle(xpath) for xpath in workload},
            "describe": service.describe(),
        }

    measured = {}
    for label, replicas, picker in (
        ("single", 1, "sticky"),
        ("sticky", REPLICAS, "sticky"),
        ("round_robin", REPLICAS, "round_robin"),
    ):
        with build(replicas, picker) as service:
            measured[label] = serve_reads(service)
            measured[label]["replicas"] = replicas
            measured[label]["picker"] = picker

    rows = []
    for label in ("single", "sticky", "round_robin"):
        entry = measured[label]
        rows.append(
            [
                f"{entry['replicas']} replica{'s' if entry['replicas'] > 1 else ''} "
                f"({entry['picker']})",
                f"{entry['qps']:.0f}",
                f"{entry['qps'] / measured['single']['qps']:.2f}x",
            ]
        )
    print()
    print(
        format_table(
            ["tier", "queries/s", "throughput"],
            rows,
            title=(
                f"Replica read scale-out — {len(READ_QUERIES)} distinct "
                f"queries, result cache {REPLICA_CACHE_SIZE}/replica"
            ),
        )
    )
    return measured


@pytest.fixture(scope="module")
def bench_artifact(skew_recovery, replica_scaling):
    rebalance = skew_recovery["rebalance"]
    summary = {
        "skew_recovery": {
            "shards": NUM_SHARDS,
            "placement": "hash",
            "rounds": ROUNDS,
            "workload": list(FIG12_QUERIES),
            "documents_per_shard_before": skew_recovery["spread_before"],
            "documents_per_shard_after": skew_recovery["spread_after"],
            "pre_qps": skew_recovery["pre"]["qps"],
            "post_qps": skew_recovery["post"]["qps"],
            "throughput_ratio": skew_recovery["post"]["qps"]
            / skew_recovery["pre"]["qps"],
            "documents_moved": rebalance.documents_moved,
            "nodes_moved": rebalance.nodes_moved,
            "spans_pruned": rebalance.spans_pruned,
            "rebalance_maintenance_cost": rebalance.maintenance_cost,
        },
        "replica_scaling": {
            "replicas": REPLICAS,
            "result_cache_size": REPLICA_CACHE_SIZE,
            "read_rounds": READ_ROUNDS,
            "workload": list(READ_QUERIES),
            "single_qps": replica_scaling["single"]["qps"],
            "sticky_qps": replica_scaling["sticky"]["qps"],
            "round_robin_qps": replica_scaling["round_robin"]["qps"],
            "throughput_ratio": replica_scaling["sticky"]["qps"]
            / replica_scaling["single"]["qps"],
        },
    }
    return write_bench_report("rebalance", summary)


def test_corpus_starts_skewed_and_rebalance_spreads_it(skew_recovery):
    # The crafted names all hash to shard 0; size_balanced undoes it.
    assert skew_recovery["spread_before"][0] == BASE_DOCS
    assert sum(skew_recovery["spread_before"][1:]) == 0
    assert all(count > 0 for count in skew_recovery["spread_after"])
    assert skew_recovery["rebalance"].documents_moved > 0
    # Retired spans from the moves were compacted out of the hot path.
    assert skew_recovery["rebalance"].spans_pruned >= (
        skew_recovery["rebalance"].documents_moved
    )


def test_answers_identical_before_and_after_rebalance(skew_recovery):
    for phase in ("pre", "post"):
        answers = skew_recovery[phase]["answers"]
        oracle = skew_recovery[phase]["oracle"]
        for xpath, expected in oracle.items():
            assert answers[xpath] == expected, (phase, xpath)


def test_rebalance_recovers_at_least_1_2x_throughput(skew_recovery):
    pre_qps = skew_recovery["pre"]["qps"]
    post_qps = skew_recovery["post"]["qps"]
    assert post_qps >= 1.2 * pre_qps, (
        f"post-rebalance {post_qps:.0f} q/s is not 1.2x the skewed "
        f"{pre_qps:.0f} q/s"
    )


def test_move_counters_surface_through_describe(skew_recovery):
    report = skew_recovery["describe"]
    moved = skew_recovery["rebalance"].documents_moved
    assert report["maintenance"]["documents_moved"] == moved
    assert report["topology"]["documents_moved"] == moved
    assert report["topology"]["spans_retired"] >= moved
    assert report["topology"]["retired_spans"] == 0  # compacted
    # The moves are priced in the shared currency on the shard collectors.
    total_moved = sum(
        shard["service"]["maintenance"]["documents_removed"]
        for shard in report["shards"]
    )
    assert total_moved >= moved


def test_replica_answers_match_oracle(replica_scaling):
    for label in ("single", "sticky", "round_robin"):
        entry = replica_scaling[label]
        for xpath, expected in entry["oracle"].items():
            assert entry["answers"][xpath] == expected, (label, xpath)


def test_three_replicas_serve_at_least_1_5x_single_read_throughput(replica_scaling):
    single_qps = replica_scaling["single"]["qps"]
    sticky_qps = replica_scaling["sticky"]["qps"]
    assert sticky_qps >= 1.5 * single_qps, (
        f"3-replica sticky {sticky_qps:.0f} q/s is not 1.5x the "
        f"single-replica {single_qps:.0f} q/s"
    )


def test_sticky_affinity_beats_round_robin_on_overflowing_working_set(replica_scaling):
    # Round-robin shows every replica every query, so per-replica caches
    # still thrash; affinity is what converts replicas into capacity.
    assert (
        replica_scaling["sticky"]["qps"] > replica_scaling["round_robin"]["qps"]
    )


def test_replica_reads_fan_out_and_caches_hit(replica_scaling):
    sticky = replica_scaling["sticky"]["describe"]
    reads = sticky["replica_reads"]["per_shard"][0]
    assert len(reads) == REPLICAS
    assert all(count > 0 for count in reads)
    assert sticky["caches"]["result_cache"]["hits"] > 0


def test_bench_artifact_written(bench_artifact):
    import json

    payload = json.loads(bench_artifact.read_text(encoding="utf-8"))
    assert payload["bench"] == "rebalance"
    assert payload["summary"]["skew_recovery"]["throughput_ratio"] >= 1.2
    assert payload["summary"]["replica_scaling"]["throughput_ratio"] >= 1.5
