"""Observability overhead — the instrumented stack vs telemetry off.

Instrumentation only earns its place if it is effectively free on the
serving path.  This bench replays the Figure 12 twig workload as the
same mixed read/write serving loop ``bench_shard_scaling.py`` uses
(one small document arrives between rounds) against two identical
single-engine stacks: one with telemetry enabled (spans on every
query, latency histograms, cache/maintenance events), one constructed
with ``Telemetry(enabled=False)`` so every instrument is the no-op
fast path.

The two stacks are served in *alternating* order round by round, so
slow drift on a shared CI runner (thermal throttling, cache pollution
from neighbours) debits both sides evenly instead of whichever ran
second.  The asserted ~2% real overhead would drown in the +/-20%
round-to-round noise of a plain mean on a shared runner, so the ratio
is taken as the better of two noise-resistant estimators: fastest
round vs fastest round (scheduler noise only ever *adds* time, so
each minimum approaches the true cost), and the median of per-round
paired ratios (both sides of one round share that round's machine
load, so the pairing cancels drift the minima might not).  Noise can
only push either estimator *down*; a genuine >5% instrumentation cost
would depress both, so asserting on the survivor stays one-sided.

Asserted shape:

* every answer of the instrumented stack is bit-identical to the
  disabled stack's — observability observes, it never participates,
* the enabled stack holds at least 0.95x the disabled throughput (the
  instrumentation overhead stays within 5%),
* the enabled stack actually recorded what the loop did: traces,
  latency series, per-strategy counters and cache-invalidation events.
"""

from __future__ import annotations

import statistics

import pytest

from repro import TwigIndexDatabase
from repro.bench import format_table, write_bench_report
from repro.datasets import generate_xmark
from repro.obs import Telemetry
from repro.obs.clock import now
from repro.workloads import query

#: The Figure 12 twig workload (high and low branch points).
FIG12_QUERIES = ("Q4x", "Q5x", "Q6x", "Q7x", "Q8x", "Q9x", "Q10x", "Q11x")

BASE_DOCS = 4
BASE_SCALE = 0.08

ROUNDS = 12
DELTA_SCALE = 0.01

#: The enabled stack must hold this fraction of disabled throughput.
MIN_THROUGHPUT_RATIO = 0.95


def _base_documents():
    return [
        generate_xmark(scale=BASE_SCALE, seed=1000 + i, name=f"xmark-{i}")
        for i in range(BASE_DOCS)
    ]


def _delta_document(round_number: int):
    return generate_xmark(
        scale=DELTA_SCALE, seed=9000 + round_number, name=f"delta-{round_number}"
    )


def _build(enabled: bool) -> TwigIndexDatabase:
    database = TwigIndexDatabase(telemetry=Telemetry(enabled=enabled))
    for document in _base_documents():
        database.add_document(document)
    database.build_index("rootpaths")
    database.build_index("datapaths")
    return database


def _serve_round(database: TwigIndexDatabase, workload) -> tuple[float, dict]:
    answers = {}
    started = now()
    for xpath in workload:
        answers[xpath] = database.service.execute(xpath, strategy="auto").ids
    return now() - started, answers


@pytest.fixture(scope="module")
def overhead():
    workload = [query(qid).xpath for qid in FIG12_QUERIES]
    stacks = {"enabled": _build(True), "disabled": _build(False)}
    for database in stacks.values():  # warm-up: caches filled
        for xpath in workload:
            database.service.execute(xpath, strategy="auto")

    rounds = {"enabled": [], "disabled": []}
    answers = {"enabled": {}, "disabled": {}}
    for round_number in range(1, ROUNDS + 1):
        for database in stacks.values():
            # One generator call per stack: documents are numbered by
            # the database they join, so they cannot be shared objects.
            database.add_document(_delta_document(round_number))
        # Alternate which stack serves first so environmental drift
        # debits both sides evenly across the run.
        order = ("enabled", "disabled")
        if round_number % 2 == 0:
            order = ("disabled", "enabled")
        for side in order:
            seconds, served = _serve_round(stacks[side], workload)
            rounds[side].append(seconds)
            answers[side].update(served)

    qps = {side: len(workload) / min(times) for side, times in rounds.items()}
    paired_ratios = [
        disabled_seconds / enabled_seconds
        for enabled_seconds, disabled_seconds in zip(
            rounds["enabled"], rounds["disabled"]
        )
    ]
    ratio = max(
        qps["enabled"] / qps["disabled"], statistics.median(paired_ratios)
    )

    print()
    print(
        format_table(
            ["stack", "serve s", "queries/s", "vs disabled"],
            [
                [
                    side,
                    f"{sum(rounds[side]):.3f}",
                    f"{qps[side]:.0f}",
                    f"{qps[side] / qps['disabled']:.3f}x",
                ]
                for side in ("disabled", "enabled")
            ],
            title=(
                f"Observability overhead — Figure 12 workload, {ROUNDS} "
                f"rounds, one document add per round"
            ),
        )
    )
    write_bench_report(
        "observability",
        {
            "rounds": ROUNDS,
            "workload": list(FIG12_QUERIES),
            "qps": dict(qps),
            "median_round_seconds": {
                side: statistics.median(times) for side, times in rounds.items()
            },
            "paired_ratio_median": statistics.median(paired_ratios),
            "throughput_ratio": ratio,
            "min_throughput_ratio": MIN_THROUGHPUT_RATIO,
            "telemetry": stacks["enabled"].service.describe()["telemetry"],
        },
    )
    return {"stacks": stacks, "answers": answers, "qps": qps, "ratio": ratio}


def test_instrumented_answers_are_bit_identical(overhead):
    enabled, disabled = overhead["answers"]["enabled"], overhead["answers"]["disabled"]
    assert set(enabled) == set(disabled)
    for xpath, expected in disabled.items():
        assert enabled[xpath] == expected, xpath


def test_instrumentation_overhead_is_within_five_percent(overhead):
    ratio = overhead["ratio"]
    assert ratio >= MIN_THROUGHPUT_RATIO, (
        f"instrumented stack holds only {ratio:.3f}x of disabled "
        f"throughput (floor {MIN_THROUGHPUT_RATIO}x)"
    )


def test_enabled_stack_recorded_the_loop(overhead):
    database = overhead["stacks"]["enabled"]
    telemetry = database.telemetry
    assert telemetry.tracer.traces_finished > 0
    text = database.metrics_text()
    assert 'repro_query_latency_seconds{tier="engine",quantile="0.95"}' in text
    assert "repro_queries_total{" in text
    assert telemetry.events.counts().get("cache-invalidated", 0) >= ROUNDS

    disabled = overhead["stacks"]["disabled"].telemetry
    assert disabled.traces() == []
    assert disabled.events.total_published == 0
    assert len(disabled.metrics) == 0


def test_observability_benchmark_traced_query(benchmark):
    database = _build(True)
    xpath = query("Q4x").xpath
    database.service.execute(xpath, strategy="auto")  # warm caches
    benchmark(
        lambda: database.service.execute(
            xpath, strategy="auto", use_result_cache=False
        )
    )
