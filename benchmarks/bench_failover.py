"""Failover under fault injection — the self-driving tier, pinned.

The operations claim of the replicated tier, measured and asserted:
**losing a replica mid-workload costs throughput, never answers.**

The bench builds two identical serving tiers (2 shards × 3 replicas,
round-robin reads) over the same corpus and replays the same read
workload — the Figure 12 twig queries — for the same number of rounds.
The *healthy* run is left alone.  In the *faulted* run, a seeded
:class:`repro.faults.FaultPlan` is injected into one replica of shard 0
after two rounds, mid-workload: every subsequent read that routes to it
raises, the health machine walks the replica healthy → suspect → dead,
and the shard quarantines it and retries the failed reads on the
surviving replicas.

Asserted, per round and per query, for both runs: answers bit-identical
to a never-faulted **single** engine over the same documents (not just
the sharded oracle — the whole distributed tier against one
:class:`~repro.TwigIndexDatabase`).  Asserted on throughput: the
faulted run keeps at least **0.6x** the healthy run's queries/s — the
failure costs the failed attempts and the lost cache capacity of one
replica, not availability.  The failover counters (reads retried,
replicas failed) are asserted through ``describe()``.

Summarized into ``BENCH_failover.json``
(:func:`repro.bench.write_bench_report`) so the trajectory is tracked
across PRs.
"""

from __future__ import annotations

import statistics

import pytest

from repro import ShardedQueryService, TwigIndexDatabase
from repro.bench import format_table, write_bench_report
from repro.datasets import generate_xmark
from repro.faults import FaultPlan, inject
from repro.obs.clock import now
from repro.workloads import query

#: The Figure 12 twig workload (high and low branch points).
FIG12_QUERIES = ("Q4x", "Q5x", "Q6x", "Q7x", "Q8x", "Q9x", "Q10x", "Q11x")

NUM_SHARDS = 2
REPLICAS = 3
NUM_DOCS = 4
SCALE = 0.03
ROUNDS = 6
KILL_AFTER_ROUND = 2  # the fault goes live mid-workload, not at startup

#: Seeded plan: every read against the victim replica fails once the
#: injection is live, so the health machine must walk it all the way to
#: dead (rate=1.0 keeps the seeded schedule deterministic in outcome).
FAULT_SEED = 20260808
FAULT_PLAN = FaultPlan.seeded(seed=FAULT_SEED, horizon=10_000, rate=1.0)


def _documents():
    return [
        generate_xmark(scale=SCALE, seed=4000 + i, name=f"fdoc-{i}")
        for i in range(NUM_DOCS)
    ]


def _build_service() -> ShardedQueryService:
    service = ShardedQueryService.from_documents(
        _documents(),
        num_shards=NUM_SHARDS,
        placement="hash",
        replicas=REPLICAS,
        read_picker="round_robin",
    )
    service.build_index("rootpaths")
    service.build_index("datapaths")
    for shard in service.collection.shards:
        # Tighten the health machine so the workload's read volume is
        # enough to finish the walk to dead within the measured rounds
        # (the defaults are tuned for long-running serving, not a
        # 6-round bench).
        shard.dead_after = 2
        shard.probe_interval = 8
    return service


def _serve(service: ShardedQueryService, workload, faulted: bool) -> dict:
    """Replay the workload for ROUNDS rounds; optionally kill a replica."""
    for xpath in workload:  # warm-up: caches filled, indexes probed
        service.execute(xpath)
    round_seconds: list[float] = []
    answers: list[dict] = []
    injector = None
    for round_number in range(1, ROUNDS + 1):
        if faulted and round_number == KILL_AFTER_ROUND + 1:
            injector = inject(service.collection.shards[0], 1, FAULT_PLAN)
        started = now()
        round_answers = {}
        for xpath in workload:
            round_answers[xpath] = service.execute(xpath).ids
        round_seconds.append(now() - started)
        answers.append(round_answers)
    describe = service.describe()
    return {
        # Median round, so one scheduler hiccup cannot skew the ratio.
        "qps": len(workload) / statistics.median(round_seconds),
        "elapsed": sum(round_seconds),
        "answers": answers,
        "describe": describe,
        "failover": describe["operations"]["failover"],
        "injector_fired": len(injector.fired) if injector is not None else 0,
    }


@pytest.fixture(scope="module")
def failover_run():
    workload = [query(qid).xpath for qid in FIG12_QUERIES]

    # The never-faulted single engine: the differential oracle both
    # tiers must agree with, query by query.
    single = TwigIndexDatabase.from_documents(_documents())
    single.build_index("rootpaths")
    single.build_index("datapaths")
    expected = {xpath: single.service.execute(xpath).ids for xpath in workload}

    with _build_service() as healthy_service:
        healthy = _serve(healthy_service, workload, faulted=False)

    with _build_service() as faulted_service:
        faulted = _serve(faulted_service, workload, faulted=True)
        faulted_states = [
            shard["states"]
            for shard in faulted["describe"]["operations"]["failover"]["per_shard"]
        ]

    measured = {
        "workload": workload,
        "expected": expected,
        "healthy": healthy,
        "faulted": faulted,
        "faulted_states": faulted_states,
    }
    print()
    print(
        format_table(
            ["tier", "queries/s", "throughput", "retried", "replicas lost"],
            [
                ["healthy", f"{healthy['qps']:.0f}", "1.00x", "0", "0"],
                [
                    "one replica killed",
                    f"{faulted['qps']:.0f}",
                    f"{faulted['qps'] / healthy['qps']:.2f}x",
                    str(faulted["failover"]["reads_retried"]),
                    str(faulted["failover"]["replicas_failed"]),
                ],
            ],
            title=(
                f"Failover — Figure 12 workload, {ROUNDS} rounds, "
                f"{NUM_SHARDS} shards x {REPLICAS} replicas, seeded kill "
                f"after round {KILL_AFTER_ROUND}"
            ),
        )
    )
    return measured


@pytest.fixture(scope="module")
def bench_artifact(failover_run):
    healthy = failover_run["healthy"]
    faulted = failover_run["faulted"]
    summary = {
        "shards": NUM_SHARDS,
        "replicas": REPLICAS,
        "rounds": ROUNDS,
        "kill_after_round": KILL_AFTER_ROUND,
        "fault_seed": FAULT_SEED,
        "workload": list(FIG12_QUERIES),
        "healthy_qps": healthy["qps"],
        "faulted_qps": faulted["qps"],
        "throughput_ratio": faulted["qps"] / healthy["qps"],
        "reads_retried": faulted["failover"]["reads_retried"],
        "replicas_failed": faulted["failover"]["replicas_failed"],
        "replica_states": failover_run["faulted_states"],
    }
    return write_bench_report("failover", summary)


def test_fault_really_fired_and_replica_died(failover_run):
    faulted = failover_run["faulted"]
    assert faulted["injector_fired"] >= 1
    assert faulted["failover"]["replicas_failed"] == 1
    assert faulted["failover"]["reads_retried"] >= 1
    assert any("dead" in states for states in failover_run["faulted_states"])
    # The healthy run never failed over.
    healthy = failover_run["healthy"]
    assert healthy["failover"]["replicas_failed"] == 0
    assert healthy["failover"]["reads_retried"] == 0


def test_answers_identical_to_single_engine_through_the_kill(failover_run):
    expected = failover_run["expected"]
    for label in ("healthy", "faulted"):
        for round_number, round_answers in enumerate(failover_run[label]["answers"]):
            for xpath, ids in round_answers.items():
                assert ids == expected[xpath], (label, round_number, xpath)


def test_faulted_run_keeps_at_least_0_6x_healthy_throughput(failover_run):
    healthy_qps = failover_run["healthy"]["qps"]
    faulted_qps = failover_run["faulted"]["qps"]
    assert faulted_qps >= 0.6 * healthy_qps, (
        f"faulted {faulted_qps:.0f} q/s is not 0.6x the healthy "
        f"{healthy_qps:.0f} q/s"
    )


def test_bench_artifact_written(bench_artifact):
    import json

    payload = json.loads(bench_artifact.read_text(encoding="utf-8"))
    assert payload["bench"] == "failover"
    assert payload["summary"]["throughput_ratio"] >= 0.6
    assert payload["summary"]["replicas_failed"] == 1
