"""Figure 11 — single-path queries of increasing result cardinality.

Q1–Q3 on XMark (left plot) and DBLP (right plot): the paper shows RP,
DP and IF+Edge staying fast as selectivity decreases, while Edge and
DG+Edge degrade badly because the schema path and the value are indexed
separately and must be joined.
"""

from __future__ import annotations

import pytest

from repro.bench import compare_strategies, measurement_table
from repro.workloads import query

from conftest import PATH_STRATEGIES

XMARK_QUERIES = ("Q1x", "Q2x", "Q3x")
DBLP_QUERIES = ("Q1d", "Q2d", "Q3d")


@pytest.fixture(scope="module")
def figure11(xmark_context, dblp_context):
    results = {}
    for qid in XMARK_QUERIES:
        results[qid] = compare_strategies(xmark_context, query(qid), PATH_STRATEGIES)
    for qid in DBLP_QUERIES:
        results[qid] = compare_strategies(dblp_context, query(qid), PATH_STRATEGIES)
    print()
    print(measurement_table(results, metric="total_cost", title="Figure 11 — logical cost"))
    print(measurement_table(results, metric="elapsed_ms", title="Figure 11 — wall time (ms)"))
    return results


def test_fig11_all_strategies_correct(figure11):
    for qid, per_strategy in figure11.items():
        for strategy, measurement in per_strategy.items():
            assert measurement.correct, f"{strategy} wrong on {qid}"


def test_fig11_cardinality_increases_across_the_sweep(figure11):
    assert (
        figure11["Q1x"]["rootpaths"].cardinality
        < figure11["Q2x"]["rootpaths"].cardinality
        < figure11["Q3x"]["rootpaths"].cardinality
    )
    assert (
        figure11["Q1d"]["rootpaths"].cardinality
        < figure11["Q2d"]["rootpaths"].cardinality
        < figure11["Q3d"]["rootpaths"].cardinality
    )


def test_fig11_rp_and_fabric_stay_cheap_edge_degrades(figure11):
    for qid in ("Q2x", "Q3x", "Q2d", "Q3d"):
        per_strategy = figure11[qid]
        rp = per_strategy["rootpaths"].total_cost
        edge = per_strategy["edge"].total_cost
        dataguide = per_strategy["dataguide_edge"].total_cost
        # Edge and DG+Edge pay per-step joins / separate value lookups.
        assert edge > 2 * rp, qid
        assert dataguide > rp, qid


def test_fig11_datapaths_close_to_rootpaths(figure11):
    for qid in XMARK_QUERIES + DBLP_QUERIES:
        rp = figure11[qid]["rootpaths"].total_cost
        dp = figure11[qid]["datapaths"].total_cost
        # DP carries HeadId overhead but stays in the same ballpark
        # (the paper: "only slightly worse").
        assert dp <= 3 * rp + 50, qid


@pytest.mark.parametrize("qid", XMARK_QUERIES + DBLP_QUERIES)
@pytest.mark.parametrize("strategy", ("rootpaths", "datapaths", "index_fabric_edge"))
def test_fig11_benchmark_fast_strategies(benchmark, qid, strategy, xmark_context, dblp_context):
    context = xmark_context if qid.endswith("x") else dblp_context
    workload_query = query(qid)
    benchmark(lambda: context.database.query(workload_query.xpath, strategy=strategy))


@pytest.mark.parametrize("qid", ("Q1x", "Q3x", "Q3d"))
def test_fig11_benchmark_edge_baseline(benchmark, qid, xmark_context, dblp_context):
    context = xmark_context if qid.endswith("x") else dblp_context
    workload_query = query(qid)
    benchmark.pedantic(
        lambda: context.database.query(workload_query.xpath, strategy="edge"),
        rounds=1,
        iterations=1,
    )
