"""repro — reproduction of "Index Structures for Matching XML Twigs Using
Relational Query Processors" (Chen, Gehrke, Korn, Koudas,
Shanmugasundaram, Srivastava; ICDE 2005).

The package implements the paper's family of XML path indices —
including the novel ROOTPATHS and DATAPATHS structures — on top of a
self-contained relational substrate (B+-trees, heap files, join
operators), together with the datasets, workloads and benchmark harness
needed to regenerate every table and figure of the paper's evaluation.

Typical entry points:

* :class:`TwigIndexDatabase` — load XML, build indices, run twig queries,
* :mod:`repro.shard` — sharded collections with scatter-gather execution,
* :mod:`repro.datasets` — synthetic XMark-like and DBLP-like documents,
* :mod:`repro.workloads` — the Q1x–Q15x / Q1d–Q3d query workload,
* :mod:`repro.bench` — the experiment harness behind ``benchmarks/``.
"""

from .engine import TwigIndexDatabase
from .errors import (
    DocumentError,
    PlanningError,
    QueryNotSupportedError,
    QueryParseError,
    ReproError,
    StorageError,
    UnsupportedLookupError,
    XmlParseError,
)
from .faults import FaultInjector, FaultPlan, InjectedFault
from .frontdoor import (
    FrontDoor,
    FrontDoorError,
    FrontDoorServer,
    QueryRequest,
    QueryResponse,
    RejectedError,
)
from .obs import Telemetry
from .planner.evaluator import DEFAULT_STRATEGIES, QueryResult, TwigQueryEngine
from .query.parser import normalize_xpath, parse_xpath
from .service import AUTO_STRATEGY, BatchResult, QueryService
from .shard import ShardedCollection, ShardedQueryService
from .xmltree.document import Document, TreeBuilder, XmlDatabase
from .xmltree.parser import parse_file, parse_string

__version__ = "1.0.0"

__all__ = [
    "AUTO_STRATEGY",
    "BatchResult",
    "DEFAULT_STRATEGIES",
    "Document",
    "DocumentError",
    "FaultInjector",
    "FaultPlan",
    "FrontDoor",
    "FrontDoorError",
    "FrontDoorServer",
    "InjectedFault",
    "PlanningError",
    "QueryNotSupportedError",
    "QueryParseError",
    "QueryRequest",
    "QueryResponse",
    "QueryResult",
    "QueryService",
    "RejectedError",
    "ReproError",
    "ShardedCollection",
    "ShardedQueryService",
    "StorageError",
    "Telemetry",
    "TreeBuilder",
    "TwigIndexDatabase",
    "TwigQueryEngine",
    "UnsupportedLookupError",
    "XmlDatabase",
    "XmlParseError",
    "normalize_xpath",
    "parse_file",
    "parse_string",
    "parse_xpath",
    "__version__",
]
