"""The per-stack telemetry hub: one tracer + one registry + one ops log.

A :class:`Telemetry` instance is the single observability handle a
serving stack shares.  The top-level service creates it (or accepts
one) and threads it down through the collection, the shards, the
replica sets and their per-replica :class:`~repro.service.QueryService`
instances — which is what makes one query's spans, wherever they were
opened (the scatter pool, a replica's engine, the write path's index
maintenance), land in the *same* trace tree, and every layer's events
land in the *same* ordered ops log.

``enabled=False`` makes the whole surface no-op — ``span`` returns a
reusable null context, ``event`` and ``record_query`` return without
touching a lock — so the overhead bench can pin the cost of the
instrumentation itself (``benchmarks/bench_observability.py``: enabled
must hold >=0.95x the disabled throughput, answers bit-identical).
"""

from __future__ import annotations

import contextlib
from typing import Callable, Optional

from .clock import now as _now
from .events import EventLog
from .export import render_prometheus
from .metrics import MetricsRegistry
from .trace import NULL_SPAN, Trace, Tracer

__all__ = ["Telemetry"]


class Telemetry:
    """Tracer, metrics registry and ops event log behind one switch."""

    def __init__(
        self,
        enabled: bool = True,
        trace_capacity: int = 64,
        event_capacity: int = 256,
        slow_query_seconds: Optional[float] = None,
        slow_query_capacity: int = 32,
        clock: Callable[[], float] = _now,
    ) -> None:
        self.enabled = enabled
        self.metrics = MetricsRegistry()
        self.events = EventLog(capacity=event_capacity)
        self.tracer = Tracer(
            capacity=trace_capacity,
            clock=clock,
            slow_query_seconds=slow_query_seconds,
            slow_capacity=slow_query_capacity,
            on_slow=self._on_slow,
        )
        #: Reused for every span of a disabled stack: no allocation, no
        #: generator frame, no contextvar traffic on the hot path.
        self._null_span = contextlib.nullcontext(NULL_SPAN)

    # ------------------------------------------------------------------
    # The three instrumentation primitives call sites use
    # ------------------------------------------------------------------
    def span(self, name: str, stats=None, **attributes):
        """A tracer span, or a shared no-op context when disabled."""
        if not self.enabled:
            return self._null_span
        return self.tracer.span(name, stats=stats, **attributes)

    def event(self, kind: str, **attributes):
        """Publish one ops event (dropped silently when disabled)."""
        if not self.enabled:
            return None
        return self.events.publish(kind, **attributes)

    def record_query(
        self, tier: str, strategy: str, elapsed_seconds: float, cached: bool
    ) -> None:
        """Feed one finished query into the standard metric families.

        ``tier`` is ``"engine"`` for a single-engine service (each
        shard's per-replica service included) and ``"sharded"`` for the
        scatter-gather facade, so one shared registry reports separate
        latency distributions for single-engine and sharded execution.
        """
        if not self.enabled:
            return
        self.metrics.histogram(
            "repro_query_latency_seconds",
            "Query wall time by serving tier",
        ).observe(elapsed_seconds, tier=tier)
        self.metrics.counter(
            "repro_queries_total",
            "Queries served, by tier and executed strategy",
        ).inc(tier=tier, strategy=strategy)
        self.metrics.counter(
            "repro_result_cache_lookups_total",
            "Result-cache outcomes of served queries, by tier",
        ).inc(tier=tier, outcome="hit" if cached else "miss")

    def _on_slow(self, trace: Trace) -> None:
        attributes = trace.root.attributes
        self.events.publish(
            "slow-query",
            trace_id=trace.trace_id,
            seconds=trace.duration_seconds,
            xpath=attributes.get("xpath"),
            query_id=attributes.get("query_id"),
        )

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------
    @property
    def slow_query_seconds(self) -> Optional[float]:
        return self.tracer.slow_query_seconds

    @slow_query_seconds.setter
    def slow_query_seconds(self, threshold: Optional[float]) -> None:
        self.tracer.slow_query_seconds = threshold

    def traces(self, last: Optional[int] = None) -> list[Trace]:
        return self.tracer.traces(last=last)

    def slow_queries(self, last: Optional[int] = None) -> list[Trace]:
        return self.tracer.slow_queries(last=last)

    def metrics_text(self) -> str:
        """The registry as Prometheus-style text (no scrape refresh)."""
        return render_prometheus(self.metrics.snapshot())

    def describe(self) -> dict[str, object]:
        """The ``telemetry`` section of the services' ``describe()``."""
        return {
            "enabled": self.enabled,
            "traces": self.tracer.describe(),
            "events": self.events.describe(),
            "metric_families": len(self.metrics),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Telemetry(enabled={self.enabled}, "
            f"traces={self.tracer.traces_finished}, "
            f"events={self.events.total_published})"
        )
