"""A thread-safe registry of counters, gauges and latency histograms.

The tracer answers "what did *this* query do"; the
:class:`MetricsRegistry` answers "what does the service do in
aggregate".  Three instrument kinds, all label-aware:

* :class:`Counter` — monotone totals (``repro_queries_total`` per
  strategy and tier, cache lookup outcomes),
* :class:`Gauge` — last-observed values, which is also how the
  scrape path exports the :class:`~repro.storage.stats.StatsCollector`
  activity counters (``reads_retried``, ``replicas_failed``,
  ``auto_rebalances``, ...) without double-counting them,
* :class:`Histogram` — fixed-bucket latency distributions with
  p50/p95/p99 estimation by linear interpolation inside the bucket
  the target rank falls in (the standard fixed-bucket estimator;
  exact min/max observations clamp the ends).

Everything is stdlib-only and guarded by one registry lock — metric
updates are single dict/list operations, so one lock is cheaper than
per-family locks and makes :meth:`MetricsRegistry.snapshot` a
consistent cut.
"""

from __future__ import annotations

import threading
from typing import Sequence

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "QUANTILES",
]

#: Upper bucket bounds (seconds) for latency histograms: log-spaced
#: from 10 microseconds (a warm cache hit) to 10 seconds, plus an
#: implicit +Inf overflow bucket.
DEFAULT_LATENCY_BUCKETS = (
    0.00001,
    0.000025,
    0.00005,
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

#: The percentiles every histogram series reports.
QUANTILES = (0.5, 0.95, 0.99)


def _label_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


class _Family:
    """Shared shape of one named metric family (all label series)."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str, lock: threading.RLock) -> None:
        self.name = name
        self.help = help_text
        self._lock = lock
        self._series: dict[tuple, object] = {}


class Counter(_Family):
    """A monotone total per label set."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValueError(f"counters only increase; got {amount}")
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        with self._lock:
            return float(self._series.get(_label_key(labels), 0.0))

    def snapshot(self) -> dict[str, object]:
        with self._lock:
            return {
                "name": self.name,
                "kind": self.kind,
                "help": self.help,
                "series": [
                    {"labels": dict(key), "value": value}
                    for key, value in sorted(self._series.items())
                ],
            }


class Gauge(_Family):
    """A last-written value per label set (scrape-time exports use this)."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        with self._lock:
            self._series[_label_key(labels)] = float(value)

    def value(self, **labels) -> float:
        with self._lock:
            return float(self._series.get(_label_key(labels), 0.0))

    snapshot = Counter.snapshot


class _HistogramSeries:
    """Bucket counts plus exact sum/count/min/max for one label set."""

    __slots__ = ("counts", "total", "sum", "min", "max")

    def __init__(self, num_buckets: int) -> None:
        self.counts = [0] * (num_buckets + 1)  # trailing +Inf bucket
        self.total = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")


class Histogram(_Family):
    """Fixed-bucket distribution with interpolated quantile estimates."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        lock: threading.RLock,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, help_text, lock)
        bounds = tuple(float(bound) for bound in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError(f"bucket bounds must be ascending: {buckets}")
        self.buckets = bounds

    def observe(self, value: float, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = _HistogramSeries(len(self.buckets))
                self._series[key] = series
            position = len(self.buckets)
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    position = index
                    break
            series.counts[position] += 1
            series.total += 1
            series.sum += value
            series.min = min(series.min, value)
            series.max = max(series.max, value)

    def quantile(self, q: float, **labels) -> float:
        """Estimated ``q``-quantile for one label series (0.0 when empty)."""
        with self._lock:
            series = self._series.get(_label_key(labels))
            if series is None or series.total == 0:
                return 0.0
            return self._estimate(series, q)

    def _estimate(self, series: _HistogramSeries, q: float) -> float:
        target = q * series.total
        cumulative = 0.0
        lower = 0.0
        for bound, count in zip(self.buckets, series.counts):
            if count and cumulative + count >= target:
                fraction = (target - cumulative) / count
                value = lower + (bound - lower) * fraction
                return min(max(value, series.min), series.max)
            cumulative += count
            lower = bound
        # The rank falls in the +Inf overflow bucket; the exact max is
        # the only honest upper bound we have.
        return series.max

    def snapshot(self) -> dict[str, object]:
        with self._lock:
            rendered = []
            for key, series in sorted(self._series.items()):
                cumulative = 0
                bucket_rows = []
                for bound, count in zip(self.buckets, series.counts):
                    cumulative += count
                    bucket_rows.append({"le": bound, "cumulative": cumulative})
                bucket_rows.append(
                    {"le": "+Inf", "cumulative": series.total}
                )
                entry = {
                    "labels": dict(key),
                    "count": series.total,
                    "sum": series.sum,
                    "min": series.min if series.total else 0.0,
                    "max": series.max if series.total else 0.0,
                    "buckets": bucket_rows,
                }
                for q in QUANTILES:
                    entry[f"p{int(q * 100)}"] = (
                        self._estimate(series, q) if series.total else 0.0
                    )
                rendered.append(entry)
            return {
                "name": self.name,
                "kind": self.kind,
                "help": self.help,
                "bucket_bounds": list(self.buckets),
                "series": rendered,
            }


class MetricsRegistry:
    """Named metric families, created on first use, snapshotted as one.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: the
    first call fixes the family's kind (and a histogram's buckets);
    re-registering a name as a different kind is a programming error
    and raises.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._families: dict[str, _Family] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._family(name, Counter, help_text)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._family(name, Gauge, help_text)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = Histogram(name, help_text, self._lock, buckets=buckets)
                self._families[name] = family
            elif not isinstance(family, Histogram):
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind}"
                )
            return family

    def _family(self, name: str, cls: type, help_text: str) -> _Family:
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = cls(name, help_text, self._lock)
                self._families[name] = family
            elif type(family) is not cls:
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind}"
                )
            return family

    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, object]:
        """A JSON-serializable consistent cut of every family."""
        with self._lock:
            families = [
                family.snapshot() for _, family in sorted(self._families.items())
            ]
        return {
            "counters": [f for f in families if f["kind"] == "counter"],
            "gauges": [f for f in families if f["kind"] == "gauge"],
            "histograms": [f for f in families if f["kind"] == "histogram"],
        }

    def __len__(self) -> int:
        with self._lock:
            return len(self._families)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MetricsRegistry(families={len(self)})"
