"""A bounded ring-buffer ops log of structured serving-tier events.

Operational transitions — replica health demotions, quarantines and
revives, auto-rebalance episodes, fault injections, cache
invalidations, slow queries — happen *between* the numbers the metrics
registry aggregates.  The :class:`EventLog` records them as ordered,
structured records so a test (or an operator) can ask "what happened,
in what order" instead of inferring it from counter deltas.

Determinism is deliberate: events carry a monotonically increasing
sequence number, not a wall-clock timestamp, so a seeded
fault-injection run produces byte-identical event streams — the same
property :mod:`repro.faults` guarantees for the faults themselves.
The buffer is bounded (``capacity``), but totals per kind survive
eviction, so long-lived services report accurate activity counts while
holding O(capacity) memory.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["EventLog", "OpsEvent"]


@dataclass(frozen=True)
class OpsEvent:
    """One structured ops record: what happened, numbered in order."""

    seq: int
    kind: str
    attributes: dict = field(default_factory=dict)

    def describe(self) -> dict[str, object]:
        """A JSON-serializable copy (exports and slow-query dumps)."""
        return {"seq": self.seq, "kind": self.kind, **self.attributes}

    def __str__(self) -> str:
        details = " ".join(
            f"{key}={value!r}" for key, value in sorted(self.attributes.items())
        )
        return f"#{self.seq} {self.kind}" + (f" {details}" if details else "")


class EventLog:
    """Thread-safe bounded log of :class:`OpsEvent` records.

    ``publish`` is called from read paths holding shard-level locks, so
    it must stay cheap and must never call back out: one lock, one
    counter bump, one list append (plus an O(1) amortized trim past
    ``capacity``).
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"event log capacity must be positive: {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._events: list[OpsEvent] = []
        self._seq = 0
        self._counts: dict[str, int] = {}

    # ------------------------------------------------------------------
    def publish(self, kind: str, **attributes) -> OpsEvent:
        """Append one event; oldest records fall off past ``capacity``."""
        with self._lock:
            self._seq += 1
            event = OpsEvent(seq=self._seq, kind=kind, attributes=attributes)
            self._events.append(event)
            del self._events[: -self.capacity]
            self._counts[kind] = self._counts.get(kind, 0) + 1
            return event

    def events(
        self, last: Optional[int] = None, kind: Optional[str] = None
    ) -> list[OpsEvent]:
        """The retained events in publish order, optionally filtered.

        ``kind`` filters before ``last`` is applied, so
        ``events(last=3, kind="replica-quarantined")`` is the three most
        recent quarantines still in the buffer.
        """
        with self._lock:
            events = list(self._events)
        if kind is not None:
            events = [event for event in events if event.kind == kind]
        if last is not None:
            events = events[-last:]
        return events

    def counts(self) -> dict[str, int]:
        """Total events ever published, per kind (survives eviction)."""
        with self._lock:
            return dict(self._counts)

    @property
    def total_published(self) -> int:
        with self._lock:
            return self._seq

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def describe(self) -> dict[str, object]:
        """Summary for the services' ``describe()['telemetry']`` section."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "retained": len(self._events),
                "published": self._seq,
                "counts": dict(self._counts),
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EventLog(retained={len(self)}, published={self.total_published})"
