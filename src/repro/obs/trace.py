"""Per-query traces of nested spans, propagated across thread pools.

A :class:`Span` is one timed window of a query's life (``plan`` /
``choose`` / ``cache-lookup`` / ``execute`` / ``scatter`` / ``shard`` /
``replica`` / ``index-maintain`` — the taxonomy lives in
``docs/OBSERVABILITY.md``), carrying wall time, free-form attributes
and, when a :class:`~repro.storage.stats.StatsCollector` is attached,
the counter diff of exactly its window — so a trace prices each phase
in the same logical currency the paper's figures use.

Parent/child structure comes from a ``contextvars.ContextVar``: a span
opened while another is current becomes its child.  Crossing a thread
pool does **not** propagate context variables by itself —
``ThreadPoolExecutor.submit`` runs the callable in whatever context
the worker thread last had — so the scatter path submits through
``contextvars.copy_context().run`` (see
:meth:`~repro.shard.service.ShardedQueryService._scatter`), giving
every worker a private copy in which the scatter span is current.
Child spans then attach to the right trace, and sibling workers'
``set``/``reset`` operations cannot interleave because each mutates
its own context copy (``list.append`` on the shared parent is atomic
under the GIL).

A root span (opened with no parent) becomes a :class:`Trace` when it
closes: the :class:`Tracer` keeps a bounded ring of recent traces and
a separate bounded ring of *slow* traces — roots whose duration
reached the configurable threshold — so the full span tree of an
outlier survives even after the main ring has rotated past it.
"""

from __future__ import annotations

import contextvars
import threading
from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional

from .clock import now as _now

__all__ = ["NULL_SPAN", "Span", "Trace", "Tracer", "current_span"]

#: The innermost open span of the calling context (None outside any).
_CURRENT_SPAN: contextvars.ContextVar[Optional["Span"]] = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)


def current_span() -> Optional["Span"]:
    """The span the calling context is currently inside, if any."""
    return _CURRENT_SPAN.get()


class Span:
    """One named, timed, attributed window of a query's execution."""

    __slots__ = ("name", "attributes", "children", "started", "ended", "cost")

    def __init__(self, name: str, attributes: Optional[dict] = None) -> None:
        self.name = name
        self.attributes: dict = dict(attributes) if attributes else {}
        self.children: list[Span] = []
        self.started: Optional[float] = None
        self.ended: Optional[float] = None
        #: StatsCollector diff over this span's window (when attached).
        self.cost: Optional[dict[str, int]] = None

    # ------------------------------------------------------------------
    @property
    def duration_seconds(self) -> float:
        if self.started is None or self.ended is None:
            return 0.0
        return self.ended - self.started

    def annotate(self, **attributes) -> "Span":
        """Attach attributes after the fact (chainable)."""
        self.attributes.update(attributes)
        return self

    def walk(self):
        """This span, then every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> list["Span"]:
        """Every span named ``name`` in this subtree, depth-first order."""
        return [span for span in self.walk() if span.name == name]

    def tree(self) -> dict[str, object]:
        """The span subtree as a JSON-serializable dict."""
        node: dict[str, object] = {
            "name": self.name,
            "duration_seconds": self.duration_seconds,
        }
        if self.attributes:
            node["attributes"] = dict(self.attributes)
        if self.cost is not None:
            node["cost"] = {k: v for k, v in self.cost.items() if v}
        if self.children:
            node["children"] = [child.tree() for child in self.children]
        return node

    def render(self, indent: int = 0) -> str:
        """A human-readable tree (slow-query dumps, examples)."""
        details = " ".join(
            f"{key}={value!r}" for key, value in sorted(self.attributes.items())
        )
        line = "  " * indent + (
            f"{self.name}  {self.duration_seconds * 1000:.3f}ms"
            + (f"  [{details}]" if details else "")
        )
        return "\n".join(
            [line] + [child.render(indent + 1) for child in self.children]
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, {self.duration_seconds * 1000:.3f}ms, "
            f"children={len(self.children)})"
        )


class _NullSpan(Span):
    """The shared no-op span a disabled telemetry hands out.

    Accepts annotations and discards them, so instrumented call sites
    need no ``if enabled`` branches of their own.
    """

    __slots__ = ()

    def annotate(self, **attributes) -> "Span":
        return self


NULL_SPAN = _NullSpan("disabled")


@dataclass(frozen=True)
class Trace:
    """One finished per-query trace: a numbered, closed root span."""

    trace_id: int
    root: Span

    @property
    def duration_seconds(self) -> float:
        return self.root.duration_seconds

    def tree(self) -> dict[str, object]:
        return {"trace_id": self.trace_id, **self.root.tree()}

    def render(self) -> str:
        return f"trace #{self.trace_id}\n" + self.root.render(indent=1)


class _SpanContext:
    """Context manager that opens a span on enter and closes it on exit."""

    __slots__ = ("_tracer", "_span", "_stats", "_before", "_token", "_parent")

    def __init__(self, tracer: "Tracer", span: Span, stats) -> None:
        self._tracer = tracer
        self._span = span
        self._stats = stats
        self._before = None
        self._token = None
        self._parent = None

    def __enter__(self) -> Span:
        span = self._span
        self._parent = _CURRENT_SPAN.get()
        if self._parent is not None:
            self._parent.children.append(span)
        self._token = _CURRENT_SPAN.set(span)
        if self._stats is not None:
            self._before = self._stats.snapshot()
        span.started = self._tracer.clock()
        return span

    def __exit__(self, exc_type, exc, tb) -> bool:
        span = self._span
        span.ended = self._tracer.clock()
        if self._stats is not None:
            span.cost = self._stats.diff(self._before)
        if exc is not None and "error" not in span.attributes:
            span.attributes["error"] = repr(exc)
        _CURRENT_SPAN.reset(self._token)
        if self._parent is None:
            self._tracer._finish(span)
        return False


class Tracer:
    """Produces spans and retains finished traces in bounded rings."""

    def __init__(
        self,
        capacity: int = 64,
        clock: Callable[[], float] = _now,
        slow_query_seconds: Optional[float] = None,
        slow_capacity: int = 32,
        on_slow: Optional[Callable[[Trace], None]] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"trace capacity must be positive: {capacity}")
        self.clock = clock
        #: Root spans at or above this duration are copied into the
        #: slow-query ring (and reported through ``on_slow``); ``None``
        #: disables the slow log.
        self.slow_query_seconds = slow_query_seconds
        self._on_slow = on_slow
        self._lock = threading.Lock()
        self._traces: deque[Trace] = deque(maxlen=capacity)
        self._slow: deque[Trace] = deque(maxlen=slow_capacity)
        self._seq = 0
        self._finished = 0

    # ------------------------------------------------------------------
    def span(self, name: str, stats=None, **attributes) -> _SpanContext:
        """Open one span as a context manager.

        ``stats`` is any object with ``snapshot()``/``diff()`` (in
        practice a :class:`~repro.storage.stats.StatsCollector`); the
        span's ``cost`` becomes the counter diff over its window.
        """
        return _SpanContext(self, Span(name, attributes), stats)

    def _finish(self, root: Span) -> None:
        slow_trace = None
        with self._lock:
            self._seq += 1
            self._finished += 1
            trace = Trace(trace_id=self._seq, root=root)
            self._traces.append(trace)
            threshold = self.slow_query_seconds
            if threshold is not None and root.duration_seconds >= threshold:
                self._slow.append(trace)
                slow_trace = trace
        if slow_trace is not None and self._on_slow is not None:
            self._on_slow(slow_trace)

    # ------------------------------------------------------------------
    def traces(self, last: Optional[int] = None) -> list[Trace]:
        """The most recent finished traces, oldest first."""
        with self._lock:
            traces = list(self._traces)
        return traces if last is None else traces[-last:]

    def slow_queries(self, last: Optional[int] = None) -> list[Trace]:
        """Retained traces that crossed the slow-query threshold."""
        with self._lock:
            slow = list(self._slow)
        return slow if last is None else slow[-last:]

    @property
    def traces_finished(self) -> int:
        with self._lock:
            return self._finished

    def describe(self) -> dict[str, object]:
        with self._lock:
            return {
                "finished": self._finished,
                "retained": len(self._traces),
                "capacity": self._traces.maxlen,
                "slow_query_seconds": self.slow_query_seconds,
                "slow_retained": len(self._slow),
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Tracer(finished={self.traces_finished})"
