"""The one sanctioned wall-clock source of the serving stack.

Every wall-time measurement inside ``src/`` routes through
:func:`now` — the serving layers, the query engine's measurement core
and the bench harness alike — so there is exactly one place to swap
the clock (tests inject deterministic clocks through the
:class:`~repro.obs.telemetry.Telemetry` and
:class:`~repro.obs.trace.Tracer` constructors) and one place
``repro-lint``'s RPR006 checker whitelists: ad-hoc ``time.time()`` /
``time.perf_counter()`` calls anywhere else in ``src/`` are flagged,
because scattered raw clock reads are exactly the untraceable timing
the observability layer exists to replace (see
``docs/OBSERVABILITY.md``).

``time.monotonic`` for cache TTL deadlines and ``time.sleep`` for
fault injection are not timing *measurements* and stay where they are.
"""

from __future__ import annotations

import time

__all__ = ["now"]

#: Monotonic high-resolution timestamp in seconds.  An alias, not a
#: wrapper: callers pay no extra frame per read, which matters on the
#: per-query hot path the overhead bench pins at <=5%.
now = time.perf_counter
