"""Exposition formats for the observability layer.

Two renderings of the same :meth:`MetricsRegistry.snapshot` cut:

* the snapshot dict itself is the JSON form (services return it from
  ``metrics()``), already serializable as-is;
* :func:`render_prometheus` flattens it into Prometheus-style text
  exposition — ``# HELP`` / ``# TYPE`` headers, one
  ``name{label="value"} number`` sample per series, histogram
  ``_bucket`` / ``_sum`` / ``_count`` samples plus summary-style
  ``{quantile="0.5|0.95|0.99"}`` lines carrying the registry's
  interpolated p50/p95/p99 estimates (a convenience a strict
  Prometheus histogram would leave to the query side; this is a text
  format for logs and scrape endpoints, not a client library).

``docs/OBSERVABILITY.md`` documents the metric names and the format.
"""

from __future__ import annotations

from .metrics import QUANTILES

__all__ = ["render_prometheus"]


def _escape(value: object) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _labels_text(labels: dict, extra: tuple = ()) -> str:
    pairs = [(key, labels[key]) for key in sorted(labels)] + list(extra)
    if not pairs:
        return ""
    body = ",".join(f'{key}="{_escape(value)}"' for key, value in pairs)
    return "{" + body + "}"


def _format_number(value: float) -> str:
    if value != value:  # NaN guard: histograms never emit it, belt anyway
        return "NaN"
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _header(lines: list[str], family: dict) -> None:
    if family["help"]:
        lines.append(f"# HELP {family['name']} {family['help']}")
    lines.append(f"# TYPE {family['name']} {family['kind']}")


def render_prometheus(snapshot: dict) -> str:
    """Flatten one registry snapshot into Prometheus-style text."""
    lines: list[str] = []
    for family in snapshot.get("counters", []) + snapshot.get("gauges", []):
        _header(lines, family)
        for series in family["series"]:
            lines.append(
                f"{family['name']}{_labels_text(series['labels'])} "
                f"{_format_number(series['value'])}"
            )
    for family in snapshot.get("histograms", []):
        _header(lines, family)
        name = family["name"]
        for series in family["series"]:
            labels = series["labels"]
            for bucket in series["buckets"]:
                lines.append(
                    f"{name}_bucket"
                    f"{_labels_text(labels, (('le', bucket['le']),))} "
                    f"{bucket['cumulative']}"
                )
            lines.append(
                f"{name}_sum{_labels_text(labels)} "
                f"{_format_number(series['sum'])}"
            )
            lines.append(f"{name}_count{_labels_text(labels)} {series['count']}")
            for q in QUANTILES:
                lines.append(
                    f"{name}{_labels_text(labels, (('quantile', q),))} "
                    f"{_format_number(series[f'p{int(q * 100)}'])}"
                )
    return "\n".join(lines) + ("\n" if lines else "")
