"""Zero-dependency observability for the serving stack.

One :class:`Telemetry` hub per stack composes three primitives:

* :mod:`repro.obs.trace` — per-query traces of nested spans,
  propagated across the scatter thread pool via ``contextvars``;
* :mod:`repro.obs.metrics` — a thread-safe registry of counters,
  gauges and fixed-bucket latency histograms with p50/p95/p99;
* :mod:`repro.obs.events` — a bounded, deterministic ring-buffer ops
  log of replica/rebalance/fault/cache transitions.

:mod:`repro.obs.export` renders a registry snapshot as
Prometheus-style text; :mod:`repro.obs.clock` is the one sanctioned
``time.perf_counter`` alias (repro-lint RPR006 bans ad-hoc timing
calls elsewhere in ``src/``).  See ``docs/OBSERVABILITY.md``.
"""

from .clock import now
from .events import EventLog, OpsEvent
from .export import render_prometheus
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    QUANTILES,
)
from .telemetry import Telemetry
from .trace import NULL_SPAN, Span, Trace, Tracer, current_span

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "OpsEvent",
    "QUANTILES",
    "Span",
    "Telemetry",
    "Trace",
    "Tracer",
    "current_span",
    "now",
    "render_prometheus",
]
