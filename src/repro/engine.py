"""Top-level facade: :class:`TwigIndexDatabase`.

This is the class most examples and downstream users interact with.
It bundles an :class:`~repro.xmltree.document.XmlDatabase`, a
:class:`~repro.planner.evaluator.TwigQueryEngine` and convenience
loaders so that the whole pipeline — parse XML, build an index family
member, run twig queries with any evaluation strategy, compare sizes
and costs — is a handful of lines:

>>> from repro import TwigIndexDatabase
>>> db = TwigIndexDatabase.from_xml("<book><title>XML</title></book>")
>>> db.build_index("rootpaths")
>>> db.query("/book/title", strategy="rootpaths").ids
[2]

For serving workloads, the attached :class:`~repro.service.QueryService`
caches parsed plans and results, reuses strategy instances and picks the
cheapest strategy per query (``strategy="auto"``); batches run under one
shared stats snapshot:

>>> batch = db.execute_batch(["/book/title", "/book/title"])
>>> [result.ids for result in batch]
[[2], [2]]
>>> batch.cache_hits  # the repeat was served from the result cache
1

Documents can be removed and replaced as well as added
(:meth:`TwigIndexDatabase.remove_document` /
:meth:`TwigIndexDatabase.replace_document`); built indexes are
maintained incrementally in both directions.  ``docs/ARCHITECTURE.md``
maps the layers this facade bundles; ``README.md`` has a runnable tour.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

from .obs import Telemetry, Trace
from .planner.evaluator import DEFAULT_STRATEGIES, QueryResult, TwigQueryEngine
from .query.match import ColumnarMatcher, NaiveMatcher
from .query.parser import parse_xpath
from .query.twig import TwigPattern
from .service import AUTO_STRATEGY, BatchResult, QueryService
from .storage.stats import StatsCollector
from .xmltree.document import Document, XmlDatabase
from .xmltree.parser import parse_file, parse_string


class TwigIndexDatabase:
    """An XML database plus the paper's index family and query engine."""

    def __init__(
        self,
        db: Optional[XmlDatabase] = None,
        telemetry: Optional[Telemetry] = None,
        use_kernels: bool = True,
    ) -> None:
        self.db = db if db is not None else XmlDatabase()
        self.stats = StatsCollector()
        self.engine = TwigQueryEngine(self.db, stats=self.stats, use_kernels=use_kernels)
        self.service = QueryService(self.engine, telemetry=telemetry)
        #: The stack's telemetry hub (shared with the service layer);
        #: ``docs/OBSERVABILITY.md`` documents the span taxonomy and
        #: metric names it exposes.
        self.telemetry = self.service.telemetry

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_xml(cls, text: str, name: str = "", **options) -> "TwigIndexDatabase":
        """Build a database from a single XML string."""
        instance = cls(**options)
        instance.load_xml(text, name=name)
        return instance

    @classmethod
    def from_documents(
        cls, documents: Iterable[Document], **options
    ) -> "TwigIndexDatabase":
        """Build a database from already-parsed documents."""
        instance = cls(**options)
        for document in documents:
            instance.db.add_document(document)
        return instance

    def load_xml(self, text: str, name: str = "") -> Document:
        """Parse and add one XML document."""
        return self.add_document(parse_string(text, name=name))

    def load_file(self, path: str, name: str = "") -> Document:
        """Parse and add one XML file."""
        return self.add_document(parse_file(path, name=name or path))

    def add_document(self, document: Document) -> Document:
        """Add an already-parsed document, maintaining every built index.

        Built indexes absorb the new document through
        :meth:`~repro.indexes.base.PathIndex.update` (incremental
        insertion for ROOTPATHS, DATAPATHS, Edge and DataGuide; full
        rebuild for the rest), so queries keep seeing the whole
        database.  The service layer drops cached results and optimizer
        choices but keeps parsed plans and strategy instances — an add
        changes answers, not query plans.  The whole mutation runs
        under the service lock, so concurrent readers serialize against
        it instead of observing half-maintained indexes.
        """
        return self.service.add_document(document)

    def remove_document(self, ref: Union[Document, str]) -> Document:
        """Remove a document by name (or object), maintaining every index.

        The mirror image of :meth:`add_document`: the database reclaims
        the document's node-id span and tag refcounts, and built
        indexes forget it through
        :meth:`~repro.indexes.base.PathIndex.remove` (incremental
        deletion for ROOTPATHS, DATAPATHS, Edge and DataGuide; full
        rebuild for the rest).  Cached results are dropped, parsed
        plans survive.  Returns the detached document.
        """
        return self.service.remove_document(ref)

    def replace_document(
        self,
        ref: Union[Document, str],
        replacement: Union[Document, str],
        name: Optional[str] = None,
    ) -> Document:
        """Replace a document with new content (remove + add, one lock).

        ``replacement`` is a parsed :class:`Document` or an XML string;
        a string is parsed under ``name`` (default: the replaced
        document's name, so document-scoped workflows keep working).
        The replacement is numbered at the current id watermark — ids
        are never reused.  Returns the added document.
        """
        old = self.db.resolve_document(ref)
        if isinstance(replacement, str):
            replacement = parse_string(
                replacement, name=name if name is not None else old.name
            )
        return self.service.replace_document(old, replacement)

    # ------------------------------------------------------------------
    # Indexing
    # ------------------------------------------------------------------
    def build_index(self, name: str, **options):
        """Build one index of the family by short name.

        Known names: ``rootpaths``, ``datapaths``, ``edge``,
        ``dataguide``, ``index_fabric``, ``asr``, ``join_index``.
        Once built, an index is kept current by :meth:`add_document`.
        Rebuilding an index flushes every service-layer cache (results,
        plans, optimizer choices, strategy instances); the build runs
        under the service lock so concurrent readers never probe a
        half-built index.
        """
        return self.service.build_index(name, **options)

    def build_all_indexes(self) -> None:
        """Build every index required by the default strategy set."""
        for strategy in DEFAULT_STRATEGIES:
            self.engine.ensure_indexes_for(strategy)

    def index_sizes_mb(self) -> dict[str, float]:
        """Sizes (MB) of every index built so far."""
        return self.engine.index_sizes_mb()

    @property
    def indexes(self):
        """Mapping of index name to built index object."""
        return self.engine.indexes

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------
    def parse(self, xpath: str) -> TwigPattern:
        """Parse an XPath-subset string into a twig pattern."""
        return parse_xpath(xpath)

    def query(
        self,
        xpath: Union[str, TwigPattern],
        strategy: str = "rootpaths",
        **strategy_options,
    ) -> QueryResult:
        """Evaluate a twig query (indices are built on demand).

        ``strategy="auto"`` lets the optimizer pick the estimated-
        cheapest strategy (via the service layer); fixed strategy names
        execute directly and unmeasured by any cache, as the benchmarks
        expect.
        """
        if strategy == AUTO_STRATEGY:
            return self.service.execute(
                xpath, strategy=strategy, use_result_cache=False, **strategy_options
            )
        return self.engine.execute(xpath, strategy=strategy, **strategy_options)

    def execute_batch(
        self,
        queries: Iterable[Union[str, TwigPattern]],
        strategy: str = AUTO_STRATEGY,
        use_result_cache: bool = True,
        **strategy_options,
    ) -> BatchResult:
        """Evaluate a batch of queries through the service layer.

        Plans and results are cached across the batch (and across
        batches), strategy instances are reused, and the returned
        :class:`~repro.service.BatchResult` carries one shared stats
        snapshot for the whole batch.
        """
        return self.service.execute_batch(
            queries,
            strategy=strategy,
            use_result_cache=use_result_cache,
            **strategy_options,
        )

    def query_all_strategies(
        self,
        xpath: Union[str, TwigPattern],
        strategies: Sequence[str] = DEFAULT_STRATEGIES,
    ) -> dict[str, QueryResult]:
        """Evaluate one query under several strategies."""
        return self.engine.execute_all(xpath, strategies=strategies)

    def oracle(self, xpath: Union[str, TwigPattern]) -> list[int]:
        """Index-free ground truth (naive tree matching)."""
        return self.engine.oracle_ids(xpath)

    def matcher(self, use_kernels: bool = False) -> NaiveMatcher:
        """A matcher bound to this database.

        The default is the naive tree-walking oracle;
        ``use_kernels=True`` returns the columnar matcher (same
        semantics, batch passes over the flattened node table).
        """
        if use_kernels:
            return ColumnarMatcher(self.db)
        return NaiveMatcher(self.db)

    # ------------------------------------------------------------------
    def node(self, node_id: int):
        """Resolve a node id returned by a query back to its tree node."""
        return self.db.node(node_id)

    def document_spans(self) -> list[tuple[str, int, int]]:
        """Per-document ``(name, first_id, end_id)`` node-id spans.

        The global id intervals the sharded tier's differential tests
        and document-scoped queries compare against; see
        :meth:`~repro.xmltree.document.XmlDatabase.document_spans`.
        """
        return self.db.document_spans()

    # ------------------------------------------------------------------
    # Observability (see docs/OBSERVABILITY.md)
    # ------------------------------------------------------------------
    def metrics(self) -> dict[str, object]:
        """Snapshot of every metric family (delegates to the service)."""
        return self.service.metrics()

    def metrics_text(self) -> str:
        """Prometheus-style text exposition of the metric families."""
        return self.service.metrics_text()

    def traces(self, last: Optional[int] = None) -> list[Trace]:
        """Recently finished query traces, oldest first."""
        return self.service.traces(last=last)

    def slow_queries(self, last: Optional[int] = None) -> list[Trace]:
        """Traces that exceeded the slow-query threshold, oldest first."""
        return self.service.slow_queries(last=last)

    def describe(self) -> dict[str, object]:
        """Summary statistics of the loaded data (handy in examples)."""
        return {
            "documents": len(self.db.documents),
            "structural_nodes": self.db.node_count,
            "value_nodes": self.db.value_count,
            "max_depth": self.db.max_depth,
            "distinct_tags": len(self.db.tags),
            "distinct_schema_paths": self.db.distinct_schema_path_count(),
            "data_size_mb": self.db.estimated_data_size_bytes() / (1024.0 * 1024.0),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TwigIndexDatabase(documents={len(self.db.documents)}, "
            f"nodes={self.db.node_count}, indexes={sorted(self.indexes)})"
        )
