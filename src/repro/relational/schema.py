"""Minimal relational schema metadata.

Plan operators in :mod:`repro.relational.operators` exchange rows as
plain tuples; a :class:`RowSchema` names the columns so that joins and
projections can be expressed by column name rather than positional
index, which keeps the twig evaluation plans readable.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..errors import PlanningError


class RowSchema:
    """An ordered list of column names describing a tuple stream."""

    def __init__(self, columns: Sequence[str]) -> None:
        self.columns = tuple(columns)
        if len(set(self.columns)) != len(self.columns):
            raise PlanningError(f"duplicate column names in schema: {self.columns}")
        self._positions = {name: i for i, name in enumerate(self.columns)}

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self):
        return iter(self.columns)

    def __contains__(self, column: str) -> bool:
        return column in self._positions

    def __eq__(self, other: object) -> bool:
        return isinstance(other, RowSchema) and self.columns == other.columns

    def __hash__(self) -> int:
        return hash(self.columns)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RowSchema{self.columns}"

    def position(self, column: str) -> int:
        """Index of ``column`` in a row tuple."""
        try:
            return self._positions[column]
        except KeyError:
            raise PlanningError(
                f"column {column!r} not in schema {self.columns}"
            ) from None

    def positions(self, columns: Iterable[str]) -> list[int]:
        """Indexes of several columns."""
        return [self.position(c) for c in columns]

    def project(self, columns: Sequence[str]) -> "RowSchema":
        """Schema of a projection onto ``columns`` (validates existence)."""
        for column in columns:
            self.position(column)
        return RowSchema(columns)

    def concat(self, other: "RowSchema", suffix: str = "_r") -> "RowSchema":
        """Schema of a join output; right-side duplicates get ``suffix``."""
        names = list(self.columns)
        for column in other.columns:
            name = column
            while name in names:
                name = name + suffix
            names.append(name)
        return RowSchema(names)
