"""Iterator-style relational plan operators.

The paper stitches index lookup results together with the join
strategies of an ordinary relational query processor (merge join, hash
join, index-nested-loop join).  This module provides the non-join
operators of that processor:

* :class:`RowSource` — materialised rows (e.g. an index lookup result),
* :class:`HeapScan` — full scan of a :class:`~repro.storage.heap.HeapFile`,
* :class:`Filter`, :class:`Project`, :class:`Distinct`, :class:`Sort`,
* :class:`Materialize` — pipeline breaker used by merge joins.

Every operator exposes ``schema`` (a :class:`RowSchema`) and iterates
tuples; plans are composed simply by nesting constructors.  Operators
count produced tuples into the shared stats collector so experiments
can report pipeline volumes.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Optional, Sequence

from ..storage.heap import HeapFile
from ..storage.stats import GLOBAL_STATS, StatsCollector
from .schema import RowSchema

Row = tuple


class PlanOperator:
    """Base class for every plan operator."""

    schema: RowSchema

    def __init__(self, schema: RowSchema, stats: Optional[StatsCollector] = None) -> None:
        self.schema = schema
        self.stats = stats if stats is not None else GLOBAL_STATS

    def __iter__(self) -> Iterator[Row]:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def rows(self) -> list[Row]:
        """Fully evaluate the operator and return the rows."""
        return list(self)

    def explain(self, level: int = 0) -> str:
        """A one-line-per-operator plan description (for logging/tests)."""
        lines = [("  " * level) + self.describe()]
        for child in self.children():
            lines.append(child.explain(level + 1))
        return "\n".join(lines)

    def describe(self) -> str:
        return f"{type(self).__name__}{tuple(self.schema.columns)}"

    def children(self) -> Sequence["PlanOperator"]:
        return ()


class RowSource(PlanOperator):
    """A materialised list of rows with a schema (e.g. index lookup output)."""

    def __init__(
        self,
        schema: RowSchema | Sequence[str],
        rows: Iterable[Row],
        stats: Optional[StatsCollector] = None,
        label: str = "rows",
    ) -> None:
        if not isinstance(schema, RowSchema):
            schema = RowSchema(schema)
        super().__init__(schema, stats)
        self._rows = list(rows)
        self.label = label

    def __iter__(self) -> Iterator[Row]:
        for row in self._rows:
            self.stats.tuples_produced += 1
            yield row

    def __len__(self) -> int:
        return len(self._rows)

    def describe(self) -> str:
        return f"RowSource[{self.label}] ({len(self._rows)} rows)"


class HeapScan(PlanOperator):
    """Sequential scan over a heap file."""

    def __init__(
        self,
        heap: HeapFile,
        schema: RowSchema | Sequence[str],
        stats: Optional[StatsCollector] = None,
    ) -> None:
        if not isinstance(schema, RowSchema):
            schema = RowSchema(schema)
        super().__init__(schema, stats)
        self.heap = heap

    def __iter__(self) -> Iterator[Row]:
        for row in self.heap.scan():
            self.stats.tuples_produced += 1
            yield row

    def describe(self) -> str:
        return f"HeapScan[{self.heap.name}]"


class Filter(PlanOperator):
    """Row filter by an arbitrary predicate over named columns."""

    def __init__(
        self,
        child: PlanOperator,
        predicate: Callable[[Row], bool],
        description: str = "",
    ) -> None:
        super().__init__(child.schema, child.stats)
        self.child = child
        self.predicate = predicate
        self.description = description

    def __iter__(self) -> Iterator[Row]:
        for row in self.child:
            if self.predicate(row):
                self.stats.tuples_produced += 1
                yield row

    def children(self) -> Sequence[PlanOperator]:
        return (self.child,)

    def describe(self) -> str:
        suffix = f" {self.description}" if self.description else ""
        return f"Filter{suffix}"


def column_equals(schema: RowSchema, column: str, value: Any) -> Callable[[Row], bool]:
    """Predicate factory: ``row[column] == value``."""
    position = schema.position(column)
    return lambda row: row[position] == value


class Project(PlanOperator):
    """Projection onto a subset (or reordering) of columns."""

    def __init__(self, child: PlanOperator, columns: Sequence[str]) -> None:
        super().__init__(child.schema.project(columns), child.stats)
        self.child = child
        self._positions = child.schema.positions(columns)

    def __iter__(self) -> Iterator[Row]:
        for row in self.child:
            self.stats.tuples_produced += 1
            yield tuple(row[i] for i in self._positions)

    def children(self) -> Sequence[PlanOperator]:
        return (self.child,)


class Distinct(PlanOperator):
    """Duplicate elimination preserving first-seen order."""

    def __init__(self, child: PlanOperator) -> None:
        super().__init__(child.schema, child.stats)
        self.child = child

    def __iter__(self) -> Iterator[Row]:
        seen: set[Row] = set()
        for row in self.child:
            if row not in seen:
                seen.add(row)
                self.stats.tuples_produced += 1
                yield row

    def children(self) -> Sequence[PlanOperator]:
        return (self.child,)


class Sort(PlanOperator):
    """Full sort on one or more columns (pipeline breaker)."""

    def __init__(self, child: PlanOperator, columns: Sequence[str]) -> None:
        super().__init__(child.schema, child.stats)
        self.child = child
        self.columns = tuple(columns)
        self._positions = child.schema.positions(columns)

    def __iter__(self) -> Iterator[Row]:
        rows = sorted(self.child, key=lambda row: tuple(row[i] for i in self._positions))
        for row in rows:
            self.stats.tuples_produced += 1
            yield row

    def children(self) -> Sequence[PlanOperator]:
        return (self.child,)

    def describe(self) -> str:
        return f"Sort{self.columns}"


class Materialize(PlanOperator):
    """Evaluate the child once and replay its rows on every iteration."""

    def __init__(self, child: PlanOperator) -> None:
        super().__init__(child.schema, child.stats)
        self.child = child
        self._cache: Optional[list[Row]] = None

    def __iter__(self) -> Iterator[Row]:
        if self._cache is None:
            self._cache = list(self.child)
        return iter(self._cache)

    def children(self) -> Sequence[PlanOperator]:
        return (self.child,)


class Limit(PlanOperator):
    """Emit at most ``count`` rows."""

    def __init__(self, child: PlanOperator, count: int) -> None:
        super().__init__(child.schema, child.stats)
        self.child = child
        self.count = count

    def __iter__(self) -> Iterator[Row]:
        emitted = 0
        for row in self.child:
            if emitted >= self.count:
                return
            emitted += 1
            self.stats.tuples_produced += 1
            yield row

    def children(self) -> Sequence[PlanOperator]:
        return (self.child,)

    def describe(self) -> str:
        return f"Limit({self.count})"
