"""Join operators: merge join, hash join, index-nested-loop join.

These are the three relational join strategies the paper's evaluation
relies on (Section 5): ROOTPATHS plans combine branch id lists with
sort-merge or hash joins, while DATAPATHS additionally enables the
index-nested-loop strategy by supporting BoundIndex lookups.

All joins are equi-joins on named columns and report probe / comparison
counts into the shared stats collector.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Sequence

from .operators import PlanOperator, Row
from .schema import RowSchema


class MergeJoin(PlanOperator):
    """Sort-merge equi-join of two inputs on one column each.

    Inputs are sorted internally (the paper's plans always feed id lists
    extracted from index lookups, which are unsorted), so this operator
    charges the sort comparisons as join comparisons.
    """

    def __init__(
        self,
        left: PlanOperator,
        right: PlanOperator,
        left_column: str,
        right_column: str,
    ) -> None:
        super().__init__(left.schema.concat(right.schema), left.stats)
        self.left = left
        self.right = right
        self.left_position = left.schema.position(left_column)
        self.right_position = right.schema.position(right_column)

    def __iter__(self) -> Iterator[Row]:
        left_rows = sorted(self.left, key=lambda row: _sort_key(row[self.left_position]))
        right_rows = sorted(self.right, key=lambda row: _sort_key(row[self.right_position]))
        i = j = 0
        while i < len(left_rows) and j < len(right_rows):
            self.stats.join_comparisons += 1
            lkey = _sort_key(left_rows[i][self.left_position])
            rkey = _sort_key(right_rows[j][self.right_position])
            if lkey < rkey:
                i += 1
            elif lkey > rkey:
                j += 1
            else:
                # Emit the cross product of the two equal runs.
                i_end = i
                while i_end < len(left_rows) and _sort_key(
                    left_rows[i_end][self.left_position]
                ) == lkey:
                    i_end += 1
                j_end = j
                while j_end < len(right_rows) and _sort_key(
                    right_rows[j_end][self.right_position]
                ) == rkey:
                    j_end += 1
                for li in range(i, i_end):
                    for rj in range(j, j_end):
                        self.stats.tuples_produced += 1
                        yield left_rows[li] + right_rows[rj]
                i, j = i_end, j_end

    def children(self) -> Sequence[PlanOperator]:
        return (self.left, self.right)

    def describe(self) -> str:
        return "MergeJoin"


class HashJoin(PlanOperator):
    """Classic build/probe hash equi-join (build side = right input)."""

    def __init__(
        self,
        left: PlanOperator,
        right: PlanOperator,
        left_column: str,
        right_column: str,
    ) -> None:
        super().__init__(left.schema.concat(right.schema), left.stats)
        self.left = left
        self.right = right
        self.left_position = left.schema.position(left_column)
        self.right_position = right.schema.position(right_column)

    def __iter__(self) -> Iterator[Row]:
        table: dict[Any, list[Row]] = {}
        for row in self.right:
            table.setdefault(row[self.right_position], []).append(row)
        for row in self.left:
            self.stats.join_probes += 1
            for match in table.get(row[self.left_position], ()):
                self.stats.tuples_produced += 1
                yield row + match

    def children(self) -> Sequence[PlanOperator]:
        return (self.left, self.right)

    def describe(self) -> str:
        return "HashJoin"


class IndexNestedLoopJoin(PlanOperator):
    """Index-nested-loop join: probe an index for every outer row.

    ``probe`` receives the outer row's join-key value and returns an
    iterable of inner rows (the BoundIndex lookup of Section 2.3).  The
    inner schema must be supplied because the probe function is opaque.
    """

    def __init__(
        self,
        outer: PlanOperator,
        probe: Callable[[Any], Sequence[Row]],
        outer_column: str,
        inner_schema: RowSchema | Sequence[str],
        label: str = "probe",
    ) -> None:
        if not isinstance(inner_schema, RowSchema):
            inner_schema = RowSchema(inner_schema)
        super().__init__(outer.schema.concat(inner_schema), outer.stats)
        self.outer = outer
        self.probe = probe
        self.outer_position = outer.schema.position(outer_column)
        self.inner_schema = inner_schema
        self.label = label

    def __iter__(self) -> Iterator[Row]:
        for row in self.outer:
            self.stats.join_probes += 1
            for match in self.probe(row[self.outer_position]):
                self.stats.tuples_produced += 1
                yield row + tuple(match)

    def children(self) -> Sequence[PlanOperator]:
        return (self.outer,)

    def describe(self) -> str:
        return f"IndexNestedLoopJoin[{self.label}]"


class SemiJoin(PlanOperator):
    """Emit left rows whose join key appears in the right input.

    Used for existence-style twig branches (a branch constrains the
    result but contributes no output columns).
    """

    def __init__(
        self,
        left: PlanOperator,
        right: PlanOperator,
        left_column: str,
        right_column: str,
        anti: bool = False,
    ) -> None:
        super().__init__(left.schema, left.stats)
        self.left = left
        self.right = right
        self.left_position = left.schema.position(left_column)
        self.right_position = right.schema.position(right_column)
        self.anti = anti

    def __iter__(self) -> Iterator[Row]:
        keys = {row[self.right_position] for row in self.right}
        for row in self.left:
            self.stats.join_probes += 1
            present = row[self.left_position] in keys
            if present != self.anti:
                self.stats.tuples_produced += 1
                yield row

    def children(self) -> Sequence[PlanOperator]:
        return (self.left, self.right)

    def describe(self) -> str:
        return "AntiSemiJoin" if self.anti else "SemiJoin"


def intersect_id_lists(id_lists: Sequence[Sequence[int]], stats=None) -> list[int]:
    """Intersect several id lists (sorted output).

    This is the final "intersection of these two sets of author-id
    matches" step of the DATAPATHS example in Section 3.3.
    """
    if not id_lists:
        return []
    result = set(id_lists[0])
    for ids in id_lists[1:]:
        result &= set(ids)
        if stats is not None:
            stats.join_comparisons += len(ids)
    return sorted(result)


def _sort_key(value: Any):
    """Total order over heterogeneous join keys (None < numbers < strings)."""
    if value is None:
        return (0, 0)
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return (1, value)
    return (2, str(value))
