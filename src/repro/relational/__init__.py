"""Relational query-processor substrate: schemas, operators and joins.

The paper's central systems requirement is that its indices be usable
by an ordinary relational query processor.  This package supplies that
processor: iterator-style plan operators plus the three join strategies
(merge, hash, index-nested-loop) that the twig evaluation plans in
:mod:`repro.planner` are built from.
"""

from .joins import (
    HashJoin,
    IndexNestedLoopJoin,
    MergeJoin,
    SemiJoin,
    intersect_id_lists,
)
from .operators import (
    Distinct,
    Filter,
    HeapScan,
    Limit,
    Materialize,
    PlanOperator,
    Project,
    Row,
    RowSource,
    Sort,
    column_equals,
)
from .schema import RowSchema

__all__ = [
    "Distinct",
    "Filter",
    "HashJoin",
    "HeapScan",
    "IndexNestedLoopJoin",
    "Limit",
    "Materialize",
    "MergeJoin",
    "PlanOperator",
    "Project",
    "Row",
    "RowSchema",
    "RowSource",
    "SemiJoin",
    "Sort",
    "column_equals",
    "intersect_id_lists",
]
