"""Experiment harness: datasets, engines and per-query measurements.

The harness builds the two experimental databases (XMark-like and
DBLP-like) at a configurable scale, constructs every index the figures
need, and measures workload queries under each strategy.  Measurements
carry wall-clock time and the deterministic logical-cost counters of
:class:`~repro.storage.stats.StatsCollector`; the benchmark files under
``benchmarks/`` print paper-style tables from them and assert the
qualitative shape of each figure.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..engine import TwigIndexDatabase
from ..datasets import generate_dblp, generate_xmark
from ..obs.clock import now as _now
from ..planner.evaluator import DEFAULT_STRATEGIES
from ..workloads.queries import WorkloadQuery

#: Default generator scale used by the benchmark suite.  Chosen so the
#: whole suite runs in minutes in pure Python while keeping the
#: selectivity ratios of the paper's workload.
DEFAULT_SCALE = 0.25

#: Strategy display names used in the paper's figures.
STRATEGY_LABELS = {
    "rootpaths": "RP",
    "datapaths": "DP",
    "edge": "Edge",
    "dataguide_edge": "DG+Edge",
    "index_fabric_edge": "IF+Edge",
    "asr": "ASR",
    "join_index": "JI",
}


@dataclass
class Measurement:
    """One (query, strategy) measurement."""

    qid: str
    strategy: str
    cardinality: int
    elapsed_seconds: float
    logical_io: int
    total_cost: int
    correct: bool

    @property
    def label(self) -> str:
        """The paper's display label for the strategy."""
        return STRATEGY_LABELS.get(self.strategy, self.strategy)


@dataclass
class ExperimentContext:
    """A dataset with its engine, indices and oracle cache."""

    name: str
    database: TwigIndexDatabase
    build_seconds: dict[str, float] = field(default_factory=dict)

    def ensure_indexes(self, names: Sequence[str]) -> None:
        """Build any missing indices, recording build times."""
        for index_name in names:
            if index_name in self.database.indexes:
                continue
            started = _now()
            self.database.build_index(index_name)
            self.build_seconds[index_name] = _now() - started

    def ensure_strategy_indexes(self, strategies: Sequence[str]) -> None:
        """Build the indices every listed strategy needs."""
        for strategy in strategies:
            self.database.engine.ensure_indexes_for(strategy)

    def measure(self, query: WorkloadQuery, strategy: str, verify: bool = True) -> Measurement:
        """Run one workload query under one strategy."""
        return self.measure_xpath(query.xpath, strategy, qid=query.qid, verify=verify)

    def measure_xpath(
        self, xpath: str, strategy: str, qid: str = "", verify: bool = True
    ) -> Measurement:
        """Run an arbitrary XPath string under one strategy."""
        result = self.database.query(xpath, strategy=strategy)
        correct = True
        if verify:
            correct = result.ids == self.database.oracle(xpath)
        return Measurement(
            qid=qid or xpath,
            strategy=strategy,
            cardinality=result.cardinality,
            elapsed_seconds=result.elapsed_seconds,
            logical_io=result.logical_io,
            total_cost=result.total_cost,
            correct=correct,
        )

    def index_sizes_mb(self) -> dict[str, float]:
        """Sizes of the built indices (MB)."""
        return self.database.index_sizes_mb()


@functools.lru_cache(maxsize=4)
def _cached_context(name: str, scale: float, seed: int) -> ExperimentContext:
    if name == "xmark":
        document = generate_xmark(scale=scale, seed=seed)
    elif name == "dblp":
        document = generate_dblp(scale=scale, seed=seed)
    else:
        raise ValueError(f"unknown dataset {name!r}")
    database = TwigIndexDatabase.from_documents([document])
    return ExperimentContext(name=name, database=database)


def get_context(name: str, scale: float = DEFAULT_SCALE, seed: Optional[int] = None) -> ExperimentContext:
    """A (cached) experiment context for one dataset.

    Contexts are cached per (dataset, scale, seed) so a benchmark module
    building several figures reuses the same database and indices.
    """
    if seed is None:
        seed = 20050405 if name == "xmark" else 19980507
    return _cached_context(name, scale, seed)


def compare_strategies(
    context: ExperimentContext,
    query: WorkloadQuery,
    strategies: Sequence[str] = DEFAULT_STRATEGIES,
    verify: bool = True,
) -> dict[str, Measurement]:
    """Measure one query under several strategies."""
    context.ensure_strategy_indexes(strategies)
    return {s: context.measure(query, s, verify=verify) for s in strategies}
