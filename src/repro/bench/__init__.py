"""Benchmark harness: experiment contexts, measurements and reporting."""

from .harness import (
    DEFAULT_SCALE,
    ExperimentContext,
    Measurement,
    STRATEGY_LABELS,
    compare_strategies,
    get_context,
)
from .reporting import format_table, measurement_table, size_table, speedup

__all__ = [
    "DEFAULT_SCALE",
    "ExperimentContext",
    "Measurement",
    "STRATEGY_LABELS",
    "compare_strategies",
    "format_table",
    "get_context",
    "measurement_table",
    "size_table",
    "speedup",
]
