"""Benchmark harness: experiment contexts, measurements and reporting."""

from .harness import (
    DEFAULT_SCALE,
    ExperimentContext,
    Measurement,
    STRATEGY_LABELS,
    compare_strategies,
    get_context,
)
from .reporting import (
    DEFAULT_REPORT_DIR,
    format_table,
    measurement_table,
    size_table,
    speedup,
    write_bench_report,
)

__all__ = [
    "DEFAULT_REPORT_DIR",
    "DEFAULT_SCALE",
    "ExperimentContext",
    "Measurement",
    "STRATEGY_LABELS",
    "compare_strategies",
    "format_table",
    "get_context",
    "measurement_table",
    "size_table",
    "speedup",
    "write_bench_report",
]
