"""Formatting helpers that print paper-style tables from measurements.

Besides the human-readable tables, :func:`write_bench_report` writes a
machine-readable ``BENCH_<name>.json`` artifact per benchmark run
(throughput, weighted costs, configuration — whatever summary the
bench assembles), so the performance trajectory of the serving tier is
trackable across PRs instead of living only in CI logs.  Artifacts
land in ``benchmarks/artifacts/`` by default; set ``REPRO_BENCH_DIR``
(or the older ``BENCH_REPORT_DIR``) to redirect them.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
from datetime import datetime, timezone
from pathlib import Path
from typing import Mapping, Optional, Sequence, Union

from .harness import Measurement

#: Default directory (relative to the working directory, i.e. the repo
#: root when running ``pytest benchmarks/...``) for bench artifacts.
DEFAULT_REPORT_DIR = "benchmarks/artifacts"


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """A plain-text table (the shape the paper's figures report)."""
    widths = [len(str(h)) for h in headers]
    text_rows = [[str(cell) for cell in row] for row in rows]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in text_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def measurement_table(
    measurements: Mapping[str, Mapping[str, Measurement]],
    metric: str = "total_cost",
    title: str = "",
) -> str:
    """Rows = queries, columns = strategies, cells = the chosen metric.

    ``measurements`` maps query id -> strategy -> Measurement.
    """
    strategies: list[str] = []
    for per_query in measurements.values():
        for strategy in per_query:
            if strategy not in strategies:
                strategies.append(strategy)
    headers = ["query"] + [
        measurements[next(iter(measurements))][s].label if measurements else s
        for s in strategies
    ]
    rows = []
    for qid, per_query in measurements.items():
        row: list[object] = [qid]
        for strategy in strategies:
            measurement = per_query.get(strategy)
            if measurement is None:
                row.append("-")
            elif metric == "elapsed_ms":
                row.append(f"{measurement.elapsed_seconds * 1000:.1f}")
            else:
                row.append(getattr(measurement, metric))
        rows.append(row)
    return format_table(headers, rows, title=title)


def size_table(sizes_by_dataset: Mapping[str, Mapping[str, float]], title: str = "") -> str:
    """The Figure 9 layout: rows = datasets, columns = index structures."""
    columns: list[str] = []
    for sizes in sizes_by_dataset.values():
        for name in sizes:
            if name not in columns:
                columns.append(name)
    headers = ["dataset"] + columns
    rows = []
    for dataset, sizes in sizes_by_dataset.items():
        rows.append([dataset] + [f"{sizes.get(c, 0.0):.2f}" for c in columns])
    return format_table(headers, rows, title=title)


def _git_revision() -> Optional[str]:
    """The current git commit hash, or ``None`` outside a checkout.

    Benchmark artifacts are compared across PRs; stamping the revision
    ties each number to the code that produced it.  Failure is not an
    option to propagate — a missing ``git`` binary or a tarball
    checkout still deserves an artifact.
    """
    try:
        result = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5.0,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    revision = result.stdout.strip()
    if result.returncode != 0 or not revision:
        return None
    return revision


def write_bench_report(
    name: str,
    summary: Mapping[str, object],
    directory: Union[str, Path, None] = None,
) -> Path:
    """Write one benchmark's machine-readable ``BENCH_<name>.json``.

    ``summary`` is the bench's own measurement dict (throughputs,
    weighted costs, asserted ratios, configuration); it must be
    JSON-serializable.  The artifact stamps the run's provenance next
    to the numbers — UTC timestamp, git revision (``None`` outside a
    checkout) and interpreter — because wall-clock figures are only
    comparable across runs of the same environment and code, logical
    costs across any.  Returns the written path.  ``directory`` (or
    the ``REPRO_BENCH_DIR`` environment variable, or its older alias
    ``BENCH_REPORT_DIR``) overrides :data:`DEFAULT_REPORT_DIR`.
    """
    target_dir = Path(
        directory
        if directory is not None
        else os.environ.get(
            "REPRO_BENCH_DIR",
            os.environ.get("BENCH_REPORT_DIR", DEFAULT_REPORT_DIR),
        )
    )
    target_dir.mkdir(parents=True, exist_ok=True)
    report = {
        "bench": name,
        "generated_at": datetime.now(timezone.utc).isoformat(),
        "git_revision": _git_revision(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "summary": dict(summary),
    }
    path = target_dir / f"BENCH_{name}.json"
    path.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path


def speedup(reference: Measurement, other: Measurement, metric: str = "total_cost") -> float:
    """How many times cheaper ``reference`` is than ``other``."""
    reference_value = getattr(reference, metric)
    other_value = getattr(other, metric)
    if reference_value <= 0:
        return float("inf") if other_value > 0 else 1.0
    return other_value / reference_value
