"""Predicate/level/containment filters as merge and gallop passes.

These kernels operate on *sorted position arrays* into a
:class:`~repro.kernels.columns.NodeColumns` table (positions ascend in
node-id order).  Each is a single monotone pass — no per-node Python
object is touched.
"""

from __future__ import annotations

from typing import Sequence


def gallop_leftmost(values: Sequence[int], target: int, start: int = 0) -> int:
    """Leftmost index ``i >= start`` with ``values[i] >= target``.

    Exponential probe followed by a bisect of the located run — the
    classic gallop used to intersect columns of very different sizes.
    """
    n = len(values)
    if start >= n or values[start] >= target:
        return start
    step = 1
    low = start
    high = start + 1
    while high < n and values[high] < target:
        low = high
        step <<= 1
        high = low + step
    if high > n:
        high = n
    while low < high:
        mid = (low + high) >> 1
        if values[mid] < target:
            low = mid + 1
        else:
            high = mid
    return low


def intersect_sorted(left: Sequence[int], right: Sequence[int]) -> list[int]:
    """Intersection of two sorted columns, galloping over the larger."""
    if len(left) > len(right):
        left, right = right, left
    out: list[int] = []
    append = out.append
    j = 0
    n = len(right)
    for value in left:
        j = gallop_leftmost(right, value, j)
        if j >= n:
            break
        if right[j] == value:
            append(value)
            j += 1
    return out


def filter_has_descendant(
    base: Sequence[int],
    candidates: Sequence[int],
    ids: Sequence[int],
    ends: Sequence[int],
) -> list[int]:
    """Base positions that contain at least one candidate strictly below.

    Both inputs are sorted positions; a base ``b`` survives when some
    candidate ``d`` satisfies ``ids[b] < ids[d] <= ends[b]``.  One
    monotone merge: for each base the first candidate past its start is
    found by advancing a shared cursor (candidates at or before a
    start can never serve a later base — starts ascend), and only that
    candidate needs checking, being the minimal one inside the
    interval.
    """
    out: list[int] = []
    append = out.append
    j = 0
    m = len(candidates)
    for b in base:
        start = ids[b]
        while j < m and ids[candidates[j]] <= start:
            j += 1
        if j >= m:
            break
        if ids[candidates[j]] <= ends[b]:
            append(b)
    return out


def filter_has_child_in(
    base: Sequence[int],
    child_parent_ids: frozenset | set,
    ids: Sequence[int],
) -> list[int]:
    """Base positions whose own id appears in a set of child parent-ids."""
    return [b for b in base if ids[b] in child_parent_ids]


def filter_level(
    positions: Sequence[int], levels: Sequence[int], level: int
) -> list[int]:
    """Positions whose node sits at exactly ``level``."""
    return [p for p in positions if levels[p] == level]
