"""Join kernels: the compiled branch joiner and the structural join.

:class:`CompiledJoin` replays the legacy operator plan of
:func:`repro.planner.joiner.build_join_plan` — same relation order,
same join/filter/projection structure, same
:class:`~repro.storage.stats.StatsCollector` charges — as one batch
pass per join step instead of a per-row iterator pipeline.  The charge
mirror is exact by construction:

* ``RowSource`` produces one tuple per row it feeds a consumer;
* ``HashJoin`` charges one ``join_probes`` per left row and one
  ``tuples_produced`` per emitted pair;
* each residual shared-column ``Filter`` charges one ``tuples_produced``
  per passing pair;
* each per-step ``Project``, the final output projection and the final
  ``Distinct`` charge one ``tuples_produced`` per row they pass.

The kernel computes those counts from grouped dictionaries in bulk, so
kernels-on and kernels-off runs report identical cost counters (pinned
by ``tests/test_kernels.py``).

:class:`CompiledTwig` bundles everything derivable from a parsed twig
alone — the analysis, per-branch needed positions and payload
extractors, and the compiled join — so strategies pay the planning
arithmetic once per twig, not once per query execution.

:func:`structural_join` is the stack-based interval join used by the
columnar matcher's trunk walk.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..errors import PlanningError
from .columns import BranchExtractor, PathInterner


class _Step:
    """One compiled hash-join step (static positions, no names)."""

    __slots__ = (
        "relation",
        "left_join_pos",
        "right_join_pos",
        "filters",
        "keep",
    )

    def __init__(
        self,
        relation: int,
        left_join_pos: int,
        right_join_pos: int,
        filters: tuple[tuple[int, int], ...],
        keep: tuple[int, ...],
    ) -> None:
        self.relation = relation
        self.left_join_pos = left_join_pos
        self.right_join_pos = right_join_pos
        self.filters = filters
        self.keep = keep


class CompiledJoin:
    """The legacy join plan compiled to positional batch passes.

    Compilation only reads column *names* (which are fully determined
    by the twig analysis), so one compiled join serves every execution
    of its twig regardless of document churn.  Plan errors the legacy
    path raises at join time are deferred to :meth:`run` so callers
    observe identical behaviour.
    """

    def __init__(
        self,
        analysis,
        branch_columns: Sequence[tuple[str, ...]],
        branch_labels: Sequence[str],
    ) -> None:
        self.error: Optional[PlanningError] = None
        self.first = 0
        self.out_pos = 0
        self.steps: list[_Step] = []
        output_column = analysis.column_name(analysis.output)
        with_output = [
            i for i in range(len(branch_columns)) if output_column in branch_columns[i]
        ]
        without = [
            i
            for i in range(len(branch_columns))
            if output_column not in branch_columns[i]
        ]
        if not with_output:
            self.error = PlanningError(
                "no branch relation contains the output node"
            )
            return
        with_output.sort(key=lambda i: len(branch_columns[i]), reverse=True)
        ordered = with_output + without
        self.first = ordered[0]
        plan_cols = list(branch_columns[ordered[0]])
        joined = set(plan_cols)
        self.out_pos = plan_cols.index(output_column)
        pending = ordered[1:]
        while pending:
            pick = 0
            for index, candidate in enumerate(pending):
                if any(c in joined for c in branch_columns[candidate]):
                    pick = index
                    break
            relation = pending.pop(pick)
            cols = branch_columns[relation]
            shared = [c for c in cols if c in joined]
            if not shared:
                self.error = PlanningError(
                    f"branch relation {branch_labels[relation]!r} shares no "
                    "join column with the plan"
                )
                return
            join_column = shared[-1]
            self.steps.append(
                _Step(
                    relation,
                    plan_cols.index(join_column),
                    cols.index(join_column),
                    tuple(
                        (plan_cols.index(c), cols.index(c)) for c in shared[:-1]
                    ),
                    tuple(i for i, c in enumerate(cols) if c not in shared),
                )
            )
            plan_cols.extend(c for c in cols if c not in shared)
            joined.update(cols)

    # ------------------------------------------------------------------
    def run(self, rows_by_relation: Sequence[list[tuple]], stats) -> list[int]:
        """Join the branch row lists; sorted distinct output ids."""
        if self.error is not None:
            raise self.error
        rows = rows_by_relation[self.first]
        out_pos = self.out_pos
        produced = len(rows)  # the first relation's RowSource
        probes = 0
        steps = self.steps
        if not steps:
            distinct = {row[out_pos] for row in rows}
            stats.tuples_produced += produced + len(rows) + len(distinct)
            return sorted(distinct)
        last = len(steps) - 1
        result: set = set()
        final_count = 0
        for step_index, step in enumerate(steps):
            right_rows = rows_by_relation[step.relation]
            produced += len(right_rows)  # RowSource feeding the build side
            probes += len(rows)  # one HashJoin probe per left row
            final = step_index == last
            jpos = step.right_join_pos
            lpos = step.left_join_pos
            keep = step.keep
            if not step.filters:
                if final:
                    counts: dict = {}
                    get = counts.get
                    for r in right_rows:
                        key = r[jpos]
                        counts[key] = get(key, 0) + 1
                    emitted = 0
                    add = result.add
                    for left in rows:
                        c = get(left[lpos])
                        if c:
                            emitted += c
                            add(left[out_pos])
                    produced += emitted * 2  # HashJoin emits + step Project
                    final_count = emitted
                elif keep:
                    groups: dict = {}
                    get = groups.get
                    for r in right_rows:
                        key = r[jpos]
                        projected = tuple(r[i] for i in keep)
                        bucket = get(key)
                        if bucket is None:
                            groups[key] = [projected]
                        else:
                            bucket.append(projected)
                    emitted = 0
                    next_rows: list[tuple] = []
                    append = next_rows.append
                    for left in rows:
                        bucket = get(left[lpos])
                        if bucket is not None:
                            emitted += len(bucket)
                            for projected in bucket:
                                append(left + projected)
                    produced += emitted * 2
                    rows = next_rows
                else:
                    counts = {}
                    get = counts.get
                    for r in right_rows:
                        key = r[jpos]
                        counts[key] = get(key, 0) + 1
                    emitted = 0
                    next_rows = []
                    for left in rows:
                        c = get(left[lpos])
                        if c:
                            emitted += c
                            next_rows += [left] * c
                    produced += emitted * 2
                    rows = next_rows
            else:
                groups = {}
                get = groups.get
                for r in right_rows:
                    key = r[jpos]
                    bucket = get(key)
                    if bucket is None:
                        groups[key] = [r]
                    else:
                        bucket.append(r)
                filters = step.filters
                passed = [0] * (len(filters) + 1)
                next_rows = []
                append = next_rows.append
                add = result.add
                for left in rows:
                    surviving = get(left[lpos])
                    if not surviving:
                        continue
                    passed[0] += len(surviving)
                    for fpos, (fl, fr) in enumerate(filters):
                        want = left[fl]
                        surviving = [r for r in surviving if r[fr] == want]
                        passed[fpos + 1] += len(surviving)
                        if not surviving:
                            break
                    if not surviving:
                        continue
                    if final:
                        add(left[out_pos])
                    else:
                        for r in surviving:
                            append(left + tuple(r[i] for i in keep))
                produced += sum(passed) + passed[-1]  # filters + step Project
                if final:
                    final_count = passed[-1]
                else:
                    rows = next_rows
        produced += final_count + len(result)  # output Project + Distinct
        stats.tuples_produced += produced
        stats.join_probes += probes
        return sorted(result)


class CompiledBranch:
    """Per-branch compiled state: needed positions and the extractor."""

    __slots__ = (
        "path",
        "columns",
        "needed_positions",
        "pattern",
        "exact",
        "value",
        "trailing",
        "extractor",
    )

    def __init__(self, analysis, path, interner: PathInterner, bound: bool) -> None:
        query = path.query
        self.path = path
        self.columns = tuple(analysis.column_name(n) for n in path.needed_nodes)
        self.needed_positions = tuple(
            query.position_of(node) for node in path.needed_nodes
        )
        pattern = query.pattern
        self.pattern = pattern
        self.exact = pattern.is_single_segment and pattern.anchored
        self.value = query.value
        self.trailing = pattern.trailing_segment
        self.extractor = BranchExtractor(
            pattern, self.needed_positions, self.exact, interner, bound=bound
        )


class CompiledTwig:
    """Everything derivable from a parsed twig alone, computed once.

    Holds the :class:`~repro.planner.analysis.TwigAnalysis` (passed in
    by the strategy so this module stays independent of the planner
    package), one :class:`CompiledBranch` per root-to-leaf path and the
    :class:`CompiledJoin` over their column layouts.  Strategies cache
    one instance per twig object; nothing here depends on the document
    set.
    """

    def __init__(self, analysis, interner: PathInterner, bound: bool = False) -> None:
        self.analysis = analysis
        self.branches = [
            CompiledBranch(analysis, path, interner, bound)
            for path in analysis.paths
        ]
        self.join = CompiledJoin(
            analysis,
            [branch.columns for branch in self.branches],
            [branch.path.query.describe() for branch in self.branches],
        )
        #: Index-nested-loop probe specs, filled lazily by the
        #: DATAPATHS strategy per chosen outer branch.
        self.inl_plans: dict[int, object] = {}


# ----------------------------------------------------------------------
# Structural join
# ----------------------------------------------------------------------
def structural_join(
    ancestors: Sequence[int],
    candidates: Sequence[int],
    ids: Sequence[int],
    ends: Sequence[int],
) -> list[int]:
    """Candidates with at least one proper ancestor among ``ancestors``.

    Both inputs are positions sorted by start (``ids``); the interval
    family must be laminar (tree subtree spans: any two intervals nest
    or are disjoint).  A single merge pass maintains the stack of open
    ancestor intervals; a candidate matches iff the stack is non-empty
    when its start is reached — the classic stack-based structural join.
    """
    out: list[int] = []
    append = out.append
    stack: list[int] = []
    i = 0
    n = len(ancestors)
    for candidate in candidates:
        start = ids[candidate]
        while i < n and ids[ancestors[i]] < start:
            opening = ancestors[i]
            while stack and ends[stack[-1]] < ids[opening]:
                stack.pop()
            stack.append(opening)
            i += 1
        while stack and ends[stack[-1]] < start:
            stack.pop()
        if stack:
            append(candidate)
    return out
