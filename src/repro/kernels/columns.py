"""Columnar encodings: interned paths, delta codecs, node columns.

Three pieces, all shared by the join/filter kernels:

* :class:`PathInterner` — a tiny append-only dictionary mapping schema
  paths (label tuples) to dense integer ids.  Ids are stable for the
  lifetime of the interner, so placement caches keyed by path id stay
  valid across incremental document churn.
* :func:`encode_id_column` / :func:`decode_id_column` — the batch delta
  codec for id columns.  Columns are stored as first-difference gaps and
  decompressed in one :func:`itertools.accumulate` pass on access,
  mirroring the IdList differential encoding of Section 4.1 at column
  granularity.
* :class:`NodeColumns` — the node table flattened into parallel
  ``array('q')`` columns (preorder id, subtree end, level, parent id,
  interned path id) with lazily built per-label position indexes.  The
  columnar matcher runs its structural joins over these arrays instead
  of walking :class:`~repro.xmltree.nodes.Node` objects.

:class:`BranchExtractor` is the strategies' payload-to-row kernel: it
maps raw index payloads (schema path, id tuple) to join rows for a
branch's needed twig-node positions, memoising the placement arithmetic
per interned schema path so :func:`~repro.paths.schema_paths.match_positions`
runs once per distinct path instead of once per matched row.
"""

from __future__ import annotations

from array import array
from itertools import accumulate
from typing import Iterable, Optional, Sequence

from ..paths.schema_paths import PathPattern, match_positions
from ..xmltree.document import VIRTUAL_ROOT_ID, XmlDatabase


class PathInterner:
    """Append-only schema-path dictionary: label tuple <-> dense int id."""

    def __init__(self) -> None:
        self._ids: dict[tuple[str, ...], int] = {}
        self._paths: list[tuple[str, ...]] = []

    def intern(self, path: tuple[str, ...]) -> int:
        """Id of ``path``, assigning the next dense id on first sight."""
        pid = self._ids.get(path)
        if pid is None:
            pid = len(self._paths)
            self._ids[path] = pid
            self._paths.append(path)
        return pid

    def id_of(self, path: tuple[str, ...]) -> Optional[int]:
        """Id of ``path`` if already interned, else ``None``."""
        return self._ids.get(path)

    def path_of(self, pid: int) -> tuple[str, ...]:
        """The path interned under ``pid``."""
        return self._paths[pid]

    def __len__(self) -> int:
        return len(self._paths)


# ----------------------------------------------------------------------
# Batch delta codec
# ----------------------------------------------------------------------
def encode_id_column(values: Iterable[int]) -> array:
    """Delta-encode an id stream into an ``array('q')`` of gaps."""
    gaps = array("q")
    previous = 0
    for value in values:
        gaps.append(value - previous)
        previous = value
    return gaps


def decode_id_column(gaps: array) -> array:
    """Batch-decompress a gap column back into absolute ids."""
    return array("q", accumulate(gaps))


# ----------------------------------------------------------------------
# Payload-to-row extraction
# ----------------------------------------------------------------------
class BranchExtractor:
    """Turn raw index payloads into join rows for one twig branch.

    A payload is the stored B+-tree value ``(schema_path, ids, ...)``
    (ROOTPATHS) or ``(schema_path, ids, value, head_id)`` (DATAPATHS
    bound rows, ``bound=True``).  The extractor mirrors the legacy
    ``EvaluationStrategy._rows_from_matches`` exactly — including the
    ``None`` row-skip for pruned IdLists and the
    :meth:`~repro.indexes.base.PathMatch.id_at` head offset — but runs
    :func:`match_positions` once per distinct schema path: placements
    are memoised per interned path id as pre-mapped needed-position
    tuples.
    """

    def __init__(
        self,
        pattern: PathPattern,
        needed_positions: Sequence[int],
        exact: bool,
        interner: PathInterner,
        bound: bool = False,
    ) -> None:
        self.pattern = pattern
        self.needed_positions = tuple(needed_positions)
        self.exact = exact
        self.interner = interner
        self.bound = bound
        #: schema path -> (path id, tuple of pre-mapped position tuples)
        self._placements: dict[tuple[str, ...], tuple[int, tuple[tuple[int, ...], ...]]] = {}

    def rows(self, payloads: Iterable[tuple]) -> list[tuple]:
        """Join rows (needed-node id tuples) for a payload batch."""
        needed = self.needed_positions
        bound = self.bound
        out: list[tuple] = []
        append = out.append
        if self.exact:
            for payload in payloads:
                labels = payload[0]
                ids = payload[1]
                offset = len(labels) - len(ids)
                if offset == 0:
                    row = tuple(ids[p] for p in needed)
                else:
                    head = payload[3] if bound else None
                    row = tuple(
                        head if p < offset else ids[p - offset] for p in needed
                    )
                if None not in row:
                    append(row)
            return out
        cache = self._placements
        intern = self.interner.intern
        pattern = self.pattern
        for payload in payloads:
            labels = payload[0]
            entry = cache.get(labels)
            if entry is None:
                mapped = tuple(
                    tuple(placement[p] for p in needed)
                    for placement in match_positions(pattern, labels)
                )
                entry = (intern(labels), mapped)
                cache[labels] = entry
            mapped = entry[1]
            if not mapped:
                continue
            ids = payload[1]
            offset = len(labels) - len(ids)
            if offset == 0:
                for positions in mapped:
                    row = tuple(ids[p] for p in positions)
                    if None not in row:
                        append(row)
            else:
                head = payload[3] if bound else None
                for positions in mapped:
                    row = tuple(
                        head if p < offset else ids[p - offset] for p in positions
                    )
                    if None not in row:
                        append(row)
        return out


# ----------------------------------------------------------------------
# Node columns
# ----------------------------------------------------------------------
class NodeColumns:
    """The structural node table as parallel flat integer columns.

    One entry per structural node (element or attribute), in global
    preorder — ascending node id.  Columns:

    ``ids``
        preorder node ids, stored delta-encoded and batch-decompressed
        on first access (:func:`decode_id_column`);
    ``ends``
        the maximum node id in each node's subtree, so descendant
        containment is the interval test ``ids[a] < ids[d] <= ends[a]``
        (ids are assigned preorder and never reused, and document spans
        are disjoint);
    ``levels`` / ``parents``
        node depth and parent node id (``VIRTUAL_ROOT_ID`` for document
        roots);
    ``pathids``
        the node's root-to-node schema path interned through a
        :class:`PathInterner`.

    Per-label position indexes and per-``(label, value)`` candidate
    lists are built lazily and memoised; instances are cached on the
    database keyed by its revision (see :meth:`for_database`).
    """

    def __init__(self, db: XmlDatabase) -> None:
        self.db = db
        self.interner = PathInterner()
        gaps = array("q")
        ends = array("q")
        levels = array("q")
        parents = array("q")
        pathids = array("q")
        labels: list[str] = []
        root_positions = array("q")
        #: position -> labels of the node's value children (only stored
        #: for nodes that have any; most positions are absent).
        values: dict[int, tuple[str, ...]] = {}
        previous = 0
        position = 0
        intern = self.interner.intern
        for document in db.documents:
            root = document.root
            subtree_end = _subtree_ends(root)
            root_positions.append(position)
            stack = [(root, VIRTUAL_ROOT_ID, ())]
            while stack:
                node, parent_id, path = stack.pop()
                path = path + (node.label,)
                node_id = node.node_id
                gaps.append(node_id - previous)
                previous = node_id
                ends.append(subtree_end[id(node)])
                levels.append(node.depth)
                parents.append(parent_id)
                pathids.append(intern(path))
                labels.append(node.label)
                value_labels = tuple(c.label for c in node.children if c.is_value)
                if value_labels:
                    values[position] = value_labels
                position += 1
                for child in reversed(node.children):
                    if child.is_structural:
                        stack.append((child, node_id, path))
        self._gaps = gaps
        self._ids: Optional[array] = None
        self.ends = ends
        self.levels = levels
        self.parents = parents
        self.pathids = pathids
        self.labels = labels
        self.values = values
        self.root_positions = root_positions
        self._by_label: Optional[dict[str, array]] = None
        self._candidates: dict[tuple[str, Optional[str]], array] = {}

    # ------------------------------------------------------------------
    @classmethod
    def for_database(cls, db: XmlDatabase) -> "NodeColumns":
        """Columns for ``db``, cached on the database per revision."""
        cached = getattr(db, "_kernel_columns", None)
        revision = db.revision
        if cached is not None and cached[0] == revision:
            return cached[1]
        columns = cls(db)
        db._kernel_columns = (revision, columns)
        return columns

    def __len__(self) -> int:
        return len(self._gaps)

    @property
    def ids(self) -> array:
        """Preorder node ids (batch-decompressed from the gap column)."""
        if self._ids is None:
            self._ids = decode_id_column(self._gaps)
        return self._ids

    # ------------------------------------------------------------------
    def positions_of_label(self, label: str) -> array:
        """Sorted positions of nodes labeled ``label``."""
        by_label = self._by_label
        if by_label is None:
            by_label = {}
            for position, node_label in enumerate(self.labels):
                column = by_label.get(node_label)
                if column is None:
                    column = array("q")
                    by_label[node_label] = column
                column.append(position)
            self._by_label = by_label
        return by_label.get(label, _EMPTY)

    def candidates(self, label: str, value: Optional[str]) -> array:
        """Sorted positions matching a twig node's label/value test."""
        if value is None:
            return self.positions_of_label(label)
        key = (label, value)
        cached = self._candidates.get(key)
        if cached is None:
            values = self.values
            cached = array(
                "q",
                (
                    p
                    for p in self.positions_of_label(label)
                    if value in values.get(p, ())
                ),
            )
            self._candidates[key] = cached
        return cached


_EMPTY = array("q")


def _subtree_ends(root) -> dict[int, int]:
    """Max node id in every subtree under ``root`` (value nodes included).

    Iterative two-pass (preorder collect, reverse fold) so degenerate
    chain documents never hit the recursion limit.
    """
    order = []
    stack = [root]
    while stack:
        node = stack.pop()
        order.append(node)
        stack.extend(node.children)
    ends: dict[int, int] = {}
    for node in reversed(order):
        end = node.node_id
        for child in node.children:
            child_end = ends[id(child)]
            if child_end > end:
                end = child_end
        ends[id(node)] = end
    return ends
