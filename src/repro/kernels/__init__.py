"""Columnar twig-matching kernels.

The strategies in :mod:`repro.planner.strategies` and the matcher in
:mod:`repro.query.match` were written as per-row iterator pipelines —
faithful to the paper's plans, but every tuple costs a Python generator
resumption.  This package re-encodes the hot path as columnar data:

* :mod:`repro.kernels.columns` — flat ``array``-of-int columns over the
  node table (start/end/level/parent plus interned path ids via a small
  :class:`~repro.kernels.columns.PathInterner`), a batch delta codec
  (decompress-on-access), and the payload-to-row extractor that turns
  raw index payloads into join rows through a per-path placement cache.
* :mod:`repro.kernels.join` — the compiled branch joiner (one pass of
  dict-grouped hash joins that mirrors the legacy operator plan's
  :class:`~repro.storage.stats.StatsCollector` charges exactly) and the
  stack-based structural join over interval columns.
* :mod:`repro.kernels.filter` — predicate/level/containment filters as
  merge and gallop passes over sorted position arrays.

Every strategy and the matcher route through these kernels when the
engine's ``use_kernels`` flag is on (the default); the legacy per-row
path is kept verbatim as the differential oracle.  Answers and cost
counters are bit-identical either way — pinned by
``tests/test_kernels.py`` and ``tests/test_differential_fuzz.py``.
"""

from .columns import (
    BranchExtractor,
    NodeColumns,
    PathInterner,
    decode_id_column,
    encode_id_column,
)
from .filter import filter_has_descendant, gallop_leftmost, intersect_sorted
from .join import CompiledJoin, CompiledTwig, structural_join

__all__ = [
    "BranchExtractor",
    "CompiledJoin",
    "CompiledTwig",
    "NodeColumns",
    "PathInterner",
    "decode_id_column",
    "encode_id_column",
    "filter_has_descendant",
    "gallop_leftmost",
    "intersect_sorted",
    "structural_join",
]
