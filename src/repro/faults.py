"""Deterministic fault injection for the replicated shard tier.

The failover machinery of :class:`~repro.shard.replica.ReplicatedShard`
(health states, read retry, quarantine, revive) is only trustworthy if
it can be exercised *on demand*: a replica must be killable at an exact
point in a workload, reproducibly, from a test or a benchmark.  This
module provides that, with no wall-clock randomness anywhere:

* a :class:`FaultPlan` is an immutable schedule mapping **call counts**
  (the Nth ``execute`` seen by one wrapped surface) to
  :class:`FaultEvent` records.  Plans are built explicitly
  (:meth:`FaultPlan.failing_at`, :meth:`FaultPlan.slow_at`,
  :meth:`FaultPlan.diverging_at`) or generated from a seed
  (:meth:`FaultPlan.seeded`) via :class:`random.Random` — the same seed
  always yields the same schedule;
* a :class:`FaultInjector` wraps one shard/replica surface (anything
  exposing ``execute`` and ``watermark``, in practice a
  :class:`~repro.shard.replica.Shard`) and fires the plan's events:

  - ``error`` events raise :class:`InjectedFault` out of ``execute``
    instead of running it — what drives the health state machine
    (healthy → suspect → dead) and the read-retry path;
  - ``slow`` events sleep ``delay_seconds`` before executing — what
    latency-sensitive pickers and benches measure against;
  - ``diverge`` events permanently skew the reported ``watermark`` —
    what the write-through alignment check must catch and quarantine.

The injector is a transparent proxy: every attribute it does not
intercept delegates to the wrapped surface, so it can stand in for a
replica inside ``ReplicatedShard.replicas`` (see :func:`inject`) and
the collection above notices nothing until a fault fires.  Reviving a
replica (:meth:`~repro.shard.replica.ReplicatedShard.revive`) replaces
the injector along with the faulty replica, which is exactly the
recovery semantics a real replacement node would have.

Thread-safety: one injector may be hit by concurrent scattered reads,
so the call counter and the fired-event log are kept under a lock.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "InjectedFault",
    "inject",
]


class InjectedFault(RuntimeError):
    """The exception an ``error`` fault raises out of a wrapped call."""


#: The fault kinds a plan may schedule.
FAULT_KINDS = ("error", "slow", "diverge")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: fire ``kind`` on the ``call``-th execute.

    ``call`` counts from 1 (the first ``execute`` the injector sees).
    ``delay_seconds`` applies to ``slow`` events; ``drift`` is how many
    ids a ``diverge`` event adds to the reported watermark (it must be
    non-zero, or the divergence would be invisible).
    """

    call: int
    kind: str = "error"
    delay_seconds: float = 0.0
    drift: int = 1

    def __post_init__(self) -> None:
        if self.call < 1:
            raise ValueError(f"fault call counts start at 1, got {self.call}")
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known: {FAULT_KINDS}"
            )
        if self.kind == "slow" and self.delay_seconds <= 0:
            raise ValueError("slow faults need a positive delay_seconds")
        if self.kind == "diverge" and self.drift == 0:
            raise ValueError("diverge faults need a non-zero drift")


class FaultPlan:
    """An immutable, deterministic schedule of faults by call count.

    A plan is shared state only in the trivial sense: it is read-only
    after construction, so one plan may parameterize several injectors.
    Each *injector* keeps its own call counter and fired log.
    """

    def __init__(self, events: Iterable[FaultEvent] = ()) -> None:
        ordered = sorted(events, key=lambda event: event.call)
        by_call: dict[int, FaultEvent] = {}
        for event in ordered:
            if event.call in by_call:
                raise ValueError(
                    f"two faults scheduled for call {event.call}; "
                    "one call fires at most one event"
                )
            by_call[event.call] = event
        self._by_call = by_call

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def failing_at(cls, *calls: int) -> "FaultPlan":
        """A plan raising :class:`InjectedFault` on the given calls."""
        return cls(FaultEvent(call=call, kind="error") for call in calls)

    @classmethod
    def slow_at(cls, calls: Sequence[int], delay_seconds: float) -> "FaultPlan":
        """A plan sleeping ``delay_seconds`` before the given calls."""
        return cls(
            FaultEvent(call=call, kind="slow", delay_seconds=delay_seconds)
            for call in calls
        )

    @classmethod
    def diverging_at(cls, call: int, drift: int = 1) -> "FaultPlan":
        """A plan skewing the reported watermark from ``call`` onward."""
        return cls([FaultEvent(call=call, kind="diverge", drift=drift)])

    @classmethod
    def seeded(
        cls,
        seed: int,
        horizon: int,
        rate: float,
        kinds: Sequence[str] = ("error",),
        delay_seconds: float = 0.001,
        drift: int = 1,
    ) -> "FaultPlan":
        """A reproducible random schedule over the first ``horizon`` calls.

        Each call in ``[1, horizon]`` independently fires with
        probability ``rate``; the kind is drawn uniformly from
        ``kinds``.  Determinism comes from :class:`random.Random`
        seeded with ``seed`` — no wall-clock randomness — so a test or
        bench that records its seed replays the identical schedule.
        """
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be within [0, 1], got {rate}")
        for kind in kinds:
            if kind not in FAULT_KINDS:
                raise ValueError(
                    f"unknown fault kind {kind!r}; known: {FAULT_KINDS}"
                )
        rng = random.Random(seed)
        events = []
        for call in range(1, horizon + 1):
            if rng.random() >= rate:
                continue
            kind = kinds[rng.randrange(len(kinds))]
            events.append(
                FaultEvent(
                    call=call,
                    kind=kind,
                    delay_seconds=delay_seconds if kind == "slow" else 0.0,
                    drift=drift,
                )
            )
        return cls(events)

    # ------------------------------------------------------------------
    @property
    def events(self) -> list[FaultEvent]:
        """The schedule in call order."""
        return [self._by_call[call] for call in sorted(self._by_call)]

    def event_for(self, call: int) -> Optional[FaultEvent]:
        """The event scheduled for the ``call``-th execute, if any."""
        return self._by_call.get(call)

    def __len__(self) -> int:
        return len(self._by_call)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kinds = [f"{e.kind}@{e.call}" for e in self.events]
        return f"FaultPlan({', '.join(kinds)})"


@dataclass
class _InjectorState:
    """Mutable per-injector bookkeeping, guarded by the injector lock."""

    calls: int = 0
    drift: int = 0
    fired: list[FaultEvent] = field(default_factory=list)


class FaultInjector:
    """A transparent proxy over one shard surface that fires a plan.

    Wraps any object exposing the shard surface (``execute``,
    ``watermark``, ``add_document``, ...) and intercepts exactly two
    things: ``execute`` (where ``error`` and ``slow`` events fire and
    the call counter advances) and ``watermark`` (where an armed
    ``diverge`` event's drift is added).  Everything else — locks,
    engines, stats, services — delegates to the wrapped surface, so a
    :class:`~repro.shard.replica.ReplicatedShard` treats the injector
    exactly like the replica it wraps.
    """

    def __init__(
        self,
        inner,
        plan: FaultPlan,
        sleep: Callable[[float], None] = time.sleep,
        telemetry=None,
    ) -> None:
        self.inner = inner
        self.plan = plan
        self._sleep = sleep
        self._lock = threading.Lock()
        self._state = _InjectorState()
        #: Optional :class:`~repro.obs.Telemetry`; when present, every
        #: fired event is also published to the stack's ops log, so a
        #: fault-injection run reads as one ordered story: injected
        #: fault -> failed read -> retry -> quarantine.
        self._telemetry = telemetry

    # ------------------------------------------------------------------
    # Intercepted surface
    # ------------------------------------------------------------------
    def execute(self, *args, **kwargs):
        """Run one read through the plan, then through the surface."""
        with self._lock:
            self._state.calls += 1
            event = self.plan.event_for(self._state.calls)
            if event is not None:
                self._state.fired.append(event)
                if event.kind == "diverge":
                    self._state.drift += event.drift
        if event is not None:
            if self._telemetry is not None:
                self._telemetry.event(
                    "fault-injected",
                    fault=event.kind,
                    call=event.call,
                    target=getattr(self.inner, "index", None),
                )
            if event.kind == "error":
                raise InjectedFault(
                    f"injected fault on call {event.call} of "
                    f"{self.inner!r}"
                )
            if event.kind == "slow":
                self._sleep(event.delay_seconds)
        return self.inner.execute(*args, **kwargs)

    @property
    def watermark(self) -> int:
        """The wrapped watermark plus any accumulated divergence drift."""
        with self._lock:
            drift = self._state.drift
        return self.inner.watermark + drift

    # ------------------------------------------------------------------
    # Observability (tests and benches assert on these)
    # ------------------------------------------------------------------
    @property
    def calls_seen(self) -> int:
        with self._lock:
            return self._state.calls

    @property
    def fired(self) -> list[FaultEvent]:
        """Events that have fired so far, in firing order."""
        with self._lock:
            return list(self._state.fired)

    # ------------------------------------------------------------------
    def __getattr__(self, name: str):
        # Everything not intercepted is the wrapped replica's business.
        return getattr(self.inner, name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultInjector({self.inner!r}, plan={self.plan!r})"


def inject(shard, replica_index: int, plan: FaultPlan) -> FaultInjector:
    """Wrap one replica of a :class:`~repro.shard.replica.ReplicatedShard`.

    Swaps ``shard.replicas[replica_index]`` for a
    :class:`FaultInjector` around it (under the shard's write lock, so
    the swap cannot interleave with a write-through) and returns the
    injector.  :meth:`~repro.shard.replica.ReplicatedShard.revive`
    later replaces the slot with a freshly re-synced replica, which
    removes the injector — recovery discards the faulty node.
    """
    with shard.add_lock:
        replica = shard.replicas[replica_index]
        injector = FaultInjector(
            replica, plan, telemetry=getattr(shard, "telemetry", None)
        )
        shard.replicas[replica_index] = injector
        return injector
