"""Twig-pattern abstract syntax.

Queries are node-labeled twig patterns (Section 2.1): nodes carry
element tags or attribute names plus optional equality conditions on
leaf values, and edges are either parent-child (``/``) or
ancestor-descendant (``//``).
"""

from __future__ import annotations

import enum
from typing import Iterator, Optional


class Axis(enum.Enum):
    """Edge type between a twig node and its parent."""

    CHILD = "/"
    DESCENDANT = "//"


class TwigNode:
    """One node of a query twig pattern."""

    __slots__ = ("label", "axis", "value", "children", "is_attribute", "parent")

    def __init__(
        self,
        label: str,
        axis: Axis = Axis.CHILD,
        value: Optional[str] = None,
        is_attribute: bool = False,
    ) -> None:
        self.label = label
        self.axis = axis
        self.value = value
        self.is_attribute = is_attribute
        self.children: list[TwigNode] = []
        self.parent: Optional[TwigNode] = None

    def add_child(self, child: "TwigNode") -> "TwigNode":
        """Attach ``child`` below this node and return it."""
        child.parent = self
        self.children.append(child)
        return child

    # ------------------------------------------------------------------
    @property
    def is_leaf(self) -> bool:
        """True when the node has no twig children."""
        return not self.children

    @property
    def is_branching(self) -> bool:
        """True when more than one twig edge leaves this node."""
        return len(self.children) > 1

    def iter_subtree(self) -> Iterator["TwigNode"]:
        """This node and every descendant, pre-order."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def path_from_root(self) -> list["TwigNode"]:
        """Twig nodes from the pattern root down to this node."""
        nodes = [self]
        node = self.parent
        while node is not None:
            nodes.append(node)
            node = node.parent
        nodes.reverse()
        return nodes

    # ------------------------------------------------------------------
    def to_xpath(self) -> str:
        """Render this node (and subtree) back into XPath-like syntax."""
        label = f"@{self.label}" if self.is_attribute else self.label
        parts = [self.axis.value, label]
        structural_children = [c for c in self.children]
        if self.value is not None and not structural_children:
            pass  # value rendered by the parent predicate renderer
        predicates = []
        if self.value is not None:
            predicates.append(f"[. = '{self.value}']")
        for child in structural_children:
            predicates.append(f"[{child._to_predicate()}]")
        return "".join(parts) + "".join(predicates)

    def _to_predicate(self) -> str:
        label = f"@{self.label}" if self.is_attribute else self.label
        text = label if self.axis is Axis.CHILD else "/" + self.axis.value.rstrip("/") + label
        if self.axis is Axis.DESCENDANT:
            text = ".//" + label
        pieces = [text]
        for child in self.children:
            pieces.append("/" + child._to_predicate() if child.axis is Axis.CHILD else "//" + child._to_predicate())
        rendered = "".join(pieces)
        if self.value is not None:
            rendered += f" = '{self.value}'"
        return rendered

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        marker = "@" if self.is_attribute else ""
        value = f"={self.value!r}" if self.value is not None else ""
        return f"TwigNode({self.axis.value}{marker}{self.label}{value}, children={len(self.children)})"
