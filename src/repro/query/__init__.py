"""Query model: twig patterns, the XPath-subset parser, and the oracle matcher.

Implements Section 2 of the paper: query twig patterns, subpaths and
PCsubpaths, and the FreeIndex / BoundIndex problems' query-side inputs.
"""

from .ast import Axis, TwigNode
from .match import NaiveMatcher
from .parser import normalize_xpath, parse_xpath
from .twig import PathQuery, TwigPattern

__all__ = [
    "Axis",
    "NaiveMatcher",
    "PathQuery",
    "TwigPattern",
    "TwigNode",
    "normalize_xpath",
    "parse_xpath",
]
