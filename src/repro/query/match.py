"""Naive in-memory twig matching — the correctness oracle.

Section 2.1 defines a match of a query twig pattern as a mapping from
query nodes to database nodes that preserves labels/values and the
parent-child / ancestor-descendant relationships.  This module
implements that definition directly on the in-memory tree, without any
index, and is used throughout the test suite and benchmarks to verify
that every index-based strategy returns exactly the same answers.

The matcher is deliberately simple (memoised bottom-up satisfaction
check followed by a trunk walk) and makes no performance claims.
"""

from __future__ import annotations

from typing import Iterable

from ..kernels.columns import NodeColumns
from ..kernels.filter import filter_has_child_in, filter_has_descendant
from ..kernels.join import structural_join
from ..xmltree.document import XmlDatabase
from ..xmltree.nodes import Node
from .ast import Axis, TwigNode
from .twig import TwigPattern


class NaiveMatcher:
    """Evaluate twig patterns by direct tree traversal."""

    def __init__(self, db: XmlDatabase) -> None:
        self.db = db

    # ------------------------------------------------------------------
    def match_ids(self, twig: TwigPattern) -> list[int]:
        """Sorted ids of database nodes matching the twig's output node."""
        return sorted(node.node_id for node in self.match_nodes(twig))

    def match_nodes(self, twig: TwigPattern) -> list[Node]:
        """Database nodes matching the twig's output node."""
        self._memo: dict[tuple[int, int], bool] = {}
        roots = self._candidate_roots(twig)
        bindings = {node for node in roots if self._satisfies(twig.root, node)}
        trunk = twig.output_path()
        current = bindings
        for twig_node in trunk[1:]:
            next_bindings: set[Node] = set()
            for data_node in current:
                for candidate in self._related(data_node, twig_node.axis):
                    if self._satisfies(twig_node, candidate):
                        next_bindings.add(candidate)
            current = next_bindings
        return sorted(current, key=lambda n: n.node_id)

    def count_matches(self, twig: TwigPattern) -> int:
        """Number of output-node matches (the paper's per-query result size)."""
        return len(self.match_nodes(twig))

    def branch_cardinalities(self, twig: TwigPattern) -> list[int]:
        """Result sizes per root-to-leaf branch (Figure 7/8's per-branch column).

        Each branch is evaluated as its own single-path twig whose
        output node is the deepest *element* step of that branch (value
        conditions stay attached), mirroring how the paper reports
        per-branch result sizes.
        """
        sizes = []
        for path in twig.root_to_leaf_paths():
            branch_twig = _branch_as_twig(twig, path)
            sizes.append(len(NaiveMatcher(self.db).match_nodes(branch_twig)))
        return sizes

    # ------------------------------------------------------------------
    def _candidate_roots(self, twig: TwigPattern) -> Iterable[Node]:
        if twig.is_absolute:
            return [doc.root for doc in self.db.documents if doc.root.label == twig.root.label]
        return [n for n in self.db.iter_structural() if n.label == twig.root.label]

    def _related(self, node: Node, axis: Axis) -> Iterable[Node]:
        if axis is Axis.CHILD:
            return node.structural_children()
        descendants: list[Node] = []
        stack = list(node.structural_children())
        while stack:
            current = stack.pop()
            descendants.append(current)
            stack.extend(current.structural_children())
        return descendants

    def _satisfies(self, twig_node: TwigNode, data_node: Node) -> bool:
        key = (id(twig_node), data_node.node_id)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        result = self._satisfies_uncached(twig_node, data_node)
        self._memo[key] = result
        return result

    def _satisfies_uncached(self, twig_node: TwigNode, data_node: Node) -> bool:
        if data_node.label != twig_node.label:
            return False
        if twig_node.value is not None:
            values = {c.label for c in data_node.children if c.is_value}
            if twig_node.value not in values:
                return False
        for child in twig_node.children:
            if not any(
                self._satisfies(child, candidate)
                for candidate in self._related(data_node, child.axis)
            ):
                return False
        return True


class ColumnarMatcher(NaiveMatcher):
    """The naive matcher's semantics re-run over the columnar node table.

    Same matching rules as :class:`NaiveMatcher` — label/value tests,
    memoised bottom-up satisfaction, trunk walk — but every check is a
    batch pass over :class:`~repro.kernels.columns.NodeColumns` position
    arrays: child tests become parent-id set filters, descendant tests
    become the stack-based structural join.  Used as the fast oracle in
    the differential fuzzer; the naive matcher stays the ground truth.
    """

    def match_nodes(self, twig: TwigPattern) -> list[Node]:
        node = self.db.node
        return [node(identifier) for identifier in self.match_ids(twig)]

    def match_ids(self, twig: TwigPattern) -> list[int]:
        columns = NodeColumns.for_database(self.db)
        ids = columns.ids
        ends = columns.ends
        parents = columns.parents
        # Bottom-up satisfaction: positions satisfying each twig node.
        satisfied: dict[int, list[int]] = {}
        for twig_node in _twig_postorder(twig.root):
            positions: list[int] = list(
                columns.candidates(twig_node.label, twig_node.value)
            )
            for child in twig_node.children:
                if not positions:
                    break
                child_positions = satisfied[id(child)]
                if child.axis is Axis.CHILD:
                    parent_ids = {parents[p] for p in child_positions}
                    positions = filter_has_child_in(positions, parent_ids, ids)
                else:
                    positions = filter_has_descendant(
                        positions, child_positions, ids, ends
                    )
            satisfied[id(twig_node)] = positions
        current = satisfied[id(twig.root)]
        if twig.is_absolute:
            roots = set(columns.root_positions)
            current = [p for p in current if p in roots]
        # Trunk walk from the root bindings down to the output node.
        for twig_node in twig.output_path()[1:]:
            if not current:
                break
            candidates = satisfied[id(twig_node)]
            if twig_node.axis is Axis.CHILD:
                current_ids = {ids[p] for p in current}
                current = [p for p in candidates if parents[p] in current_ids]
            else:
                current = structural_join(current, candidates, ids, ends)
        return [ids[p] for p in current]


def _twig_postorder(root: TwigNode) -> list[TwigNode]:
    """Twig nodes with every child before its parent (reversed preorder)."""
    order = [root]
    stack = [root]
    while stack:
        node = stack.pop()
        order.extend(node.children)
        stack.extend(node.children)
    order.reverse()
    return order


def _branch_as_twig(twig: TwigPattern, path: list[TwigNode]) -> TwigPattern:
    """Copy a single root-to-leaf path of ``twig`` as its own pattern.

    The copy's output node is the deepest element node on the branch
    (attributes and pure value tests are conditions, not results).
    """
    copies: list[TwigNode] = []
    for original in path:
        copy = TwigNode(
            original.label,
            axis=original.axis,
            value=original.value,
            is_attribute=original.is_attribute,
        )
        if copies:
            copies[-1].add_child(copy)
        copies.append(copy)
    output = copies[-1]
    for copy in reversed(copies):
        if not copy.is_attribute:
            output = copy
            break
    pattern = TwigPattern(copies[0], output=output)
    return pattern
