"""Twig patterns, their root-to-leaf paths, and PCsubpath decomposition.

A :class:`TwigPattern` wraps the root :class:`~repro.query.ast.TwigNode`
and designates an *output node* (the last trunk step of the original
XPath expression — e.g. ``author`` in
``/book[title='XML']//author[fn='jane' and ln='doe']``).

For index-based evaluation a twig is decomposed into
:class:`PathQuery` objects, one per root-to-leaf twig path.  A
:class:`PathQuery` carries:

* a :class:`~repro.paths.schema_paths.PathPattern` (label segments
  separated by ``//`` gaps, anchored when the twig is absolute),
* the optional leaf-value equality condition,
* the twig nodes aligned with the pattern labels, so that strategies
  can map matched label positions back to twig nodes (and therefore to
  branch points and the output node).

This is exactly the covering-by-PCsubpaths idea of Section 2.2/2.3: a
``PathQuery`` whose pattern has a single segment *is* a PCsubpath; one
with several segments is handled by matching its trailing PCsubpath
with an index lookup and verifying the leading segments against the
schema path returned by the index.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from ..paths.schema_paths import PathPattern
from .ast import Axis, TwigNode


@dataclass(frozen=True)
class PathQuery:
    """One root-to-leaf path of a twig, ready for index evaluation."""

    pattern: PathPattern
    value: Optional[str]
    nodes: tuple[TwigNode, ...]

    @property
    def leaf(self) -> TwigNode:
        """The twig node at the end of the path."""
        return self.nodes[-1]

    @property
    def root(self) -> TwigNode:
        """The twig node at the start of the path (the twig root)."""
        return self.nodes[0]

    def position_of(self, node: TwigNode) -> int:
        """Index of ``node`` within the pattern labels."""
        for index, candidate in enumerate(self.nodes):
            if candidate is node:
                return index
        raise ValueError(f"{node!r} is not on this path")

    @property
    def is_recursive(self) -> bool:
        """True when the path contains any descendant edge."""
        return len(self.pattern.segments) > 1 or not self.pattern.anchored

    def describe(self) -> str:
        """Human-readable rendering, for logs and error messages."""
        parts: list[str] = []
        for node in self.nodes:
            parts.append(node.axis.value)
            parts.append(("@" if node.is_attribute else "") + node.label)
        text = "".join(parts)
        if self.value is not None:
            text += f" = '{self.value}'"
        return text


class TwigPattern:
    """A parsed query twig pattern with a designated output node."""

    def __init__(self, root: TwigNode, output: Optional[TwigNode] = None) -> None:
        self.root = root
        self.output = output if output is not None else root

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def iter_nodes(self) -> Iterator[TwigNode]:
        """All twig nodes, pre-order."""
        return self.root.iter_subtree()

    def leaves(self) -> list[TwigNode]:
        """Twig nodes with no children."""
        return [n for n in self.iter_nodes() if n.is_leaf]

    def branch_points(self) -> list[TwigNode]:
        """Twig nodes with more than one child."""
        return [n for n in self.iter_nodes() if n.is_branching]

    @property
    def branch_count(self) -> int:
        """Number of root-to-leaf paths in the twig (Figure 10's "branches")."""
        return len(self.leaves())

    @property
    def is_single_path(self) -> bool:
        """True when the twig has no branching (a simple path expression)."""
        return self.branch_count <= 1

    @property
    def has_recursion(self) -> bool:
        """True when any edge of the twig is a descendant (``//``) edge."""
        return any(n.axis is Axis.DESCENDANT for n in self.iter_nodes())

    @property
    def is_absolute(self) -> bool:
        """True when the twig root is attached with ``/`` (anchored at a
        document root) rather than ``//``."""
        return self.root.axis is Axis.CHILD

    def value_conditions(self) -> list[TwigNode]:
        """Twig nodes carrying an equality condition on their value."""
        return [n for n in self.iter_nodes() if n.value is not None]

    # ------------------------------------------------------------------
    # Decomposition
    # ------------------------------------------------------------------
    def root_to_leaf_paths(self) -> list[list[TwigNode]]:
        """Twig-node paths from the root to every leaf."""
        return [leaf.path_from_root() for leaf in self.leaves()]

    def path_queries(self) -> list[PathQuery]:
        """One :class:`PathQuery` per root-to-leaf twig path."""
        return [self.path_query_for(path) for path in self.root_to_leaf_paths()]

    def path_query_for(self, nodes: Sequence[TwigNode]) -> PathQuery:
        """Build the :class:`PathQuery` for a path of twig nodes.

        ``nodes`` must start at the twig root; it may stop early (for
        example at a branch point), in which case the query describes
        the prefix path.
        """
        segments: list[tuple[str, ...]] = []
        current: list[str] = []
        for index, node in enumerate(nodes):
            if index == 0:
                current.append(node.label)
                continue
            if node.axis is Axis.DESCENDANT:
                segments.append(tuple(current))
                current = [node.label]
            else:
                current.append(node.label)
        segments.append(tuple(current))
        pattern = PathPattern(tuple(segments), anchored=self.is_absolute)
        return PathQuery(pattern=pattern, value=nodes[-1].value, nodes=tuple(nodes))

    def output_path(self) -> list[TwigNode]:
        """Twig nodes from the root to the output node (the trunk)."""
        return self.output.path_from_root()

    # ------------------------------------------------------------------
    def to_xpath(self) -> str:
        """Render the twig back into XPath-like text (best effort)."""
        return self.root.to_xpath()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TwigPattern({self.to_xpath()!r})"
