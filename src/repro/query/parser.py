"""Parser for the XPath fragment used by the paper's workload.

The supported grammar covers every query in Figures 7 and 8:

.. code-block:: text

    query      := ('/' | '//') step ( ('/' | '//') step )*
    step       := ('@')? NAME predicate*
    predicate  := '[' condition ( 'and' condition )* ']'
    condition  := '.' '=' literal
                | relpath ( '=' literal )?
    relpath    := ('@')? NAME ( ('/' | '//') ('@')? NAME )*
    literal    := quoted string | number token

Only string-equality value conditions are supported, matching the
paper's assumption that "all values are strings and only equality
matches on the values are allowed".
"""

from __future__ import annotations

import re
from typing import Optional

from ..errors import QueryParseError
from .ast import Axis, TwigNode
from .twig import TwigPattern

_TOKEN_RE = re.compile(
    r"""
    (?P<dslash>//)
  | (?P<slash>/)
  | (?P<lbracket>\[)
  | (?P<rbracket>\])
  | (?P<eq>=)
  | (?P<at>@)
  | (?P<dot>\.)
  | (?P<string>'[^']*'|"[^"]*")
  | (?P<name>[A-Za-z_][\w.\-]*)
  | (?P<number>\d+(?:\.\d+)?)
  | (?P<space>\s+)
    """,
    re.VERBOSE,
)

#: Curly quotes that appear in the paper's query listings.
_QUOTE_NORMALISATION = str.maketrans({"‘": "'", "’": "'", "“": '"', "”": '"'})


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise QueryParseError(f"unexpected character {text[position]!r} at {position}")
        kind = match.lastgroup or ""
        value = match.group()
        position = match.end()
        if kind == "space":
            continue
        if kind == "string":
            value = value[1:-1]
        tokens.append((kind, value))
    return tokens


class _Parser:
    def __init__(self, tokens: list[tuple[str, str]], text: str) -> None:
        self.tokens = tokens
        self.position = 0
        self.text = text

    # -- token helpers -------------------------------------------------
    def peek(self) -> Optional[tuple[str, str]]:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def next(self) -> tuple[str, str]:
        token = self.peek()
        if token is None:
            raise QueryParseError(f"unexpected end of query: {self.text!r}")
        self.position += 1
        return token

    def expect(self, kind: str) -> str:
        token = self.next()
        if token[0] != kind:
            raise QueryParseError(
                f"expected {kind} but found {token[1]!r} in {self.text!r}"
            )
        return token[1]

    def accept(self, kind: str) -> Optional[str]:
        token = self.peek()
        if token is not None and token[0] == kind:
            self.position += 1
            return token[1]
        return None

    # -- grammar -------------------------------------------------------
    def parse_query(self) -> TwigPattern:
        axis = self._parse_axis(required=True)
        root = self._parse_step(axis)
        current = root
        while True:
            axis = self._parse_axis(required=False)
            if axis is None:
                break
            step = self._parse_step(axis)
            current.add_child(step)
            current = step
        if self.peek() is not None:
            raise QueryParseError(f"trailing tokens in query {self.text!r}")
        return TwigPattern(root, output=current)

    def _parse_axis(self, required: bool) -> Optional[Axis]:
        if self.accept("dslash") is not None:
            return Axis.DESCENDANT
        if self.accept("slash") is not None:
            return Axis.CHILD
        if required:
            raise QueryParseError(f"query must start with '/' or '//': {self.text!r}")
        return None

    def _parse_step(self, axis: Axis) -> TwigNode:
        is_attribute = self.accept("at") is not None
        name = self._parse_name()
        node = TwigNode(name, axis=axis, is_attribute=is_attribute)
        while self.accept("lbracket") is not None:
            self._parse_predicate(node)
            self.expect("rbracket")
        return node

    def _parse_name(self) -> str:
        token = self.next()
        if token[0] == "number":
            raise QueryParseError(
                f"step names cannot be numbers: {token[1]!r} in {self.text!r} "
                "(numbers are only valid as comparison literals)"
            )
        if token[0] != "name":
            raise QueryParseError(f"expected a name but found {token[1]!r} in {self.text!r}")
        return token[1]

    def _parse_predicate(self, owner: TwigNode) -> None:
        while True:
            self._parse_condition(owner)
            if self._accept_conjunction():
                continue
            break

    def _accept_conjunction(self) -> bool:
        """Consume an ``and`` keyword separating two predicate conditions.

        ``and`` is also a legal element name, so it only reads as the
        conjunction when the token after it can start a condition: ``.``,
        ``@``, a name, or ``//`` (a descendant condition).  A single
        ``/`` after ``and`` is rejected — ``[x and/y]`` is ambiguous
        between the conjunction and an element named ``and`` (write
        ``[x and y]`` or ``[x and and/y]`` respectively) — and so is a
        closing ``]``.  ``[and/x]`` therefore stays an element step
        while ``[x and y]`` conjoins.
        """
        token = self.peek()
        if token is None or token[0] != "name" or token[1] != "and":
            return False
        following = (
            self.tokens[self.position + 1]
            if self.position + 1 < len(self.tokens)
            else None
        )
        if following is None or following[0] not in ("name", "at", "dot", "dslash"):
            raise QueryParseError(
                f"'and' must be followed by a predicate condition in {self.text!r}"
            )
        self.position += 1
        return True

    def _parse_condition(self, owner: TwigNode) -> None:
        if self.accept("dot") is not None:
            self.expect("eq")
            owner.value = self._parse_literal()
            return
        # A relative path, optionally compared to a literal.
        node = owner
        first = True
        while True:
            if first:
                axis = Axis.CHILD
                if self.accept("dslash") is not None:
                    axis = Axis.DESCENDANT
                elif self.accept("slash") is not None:
                    axis = Axis.CHILD
            else:
                if self.accept("dslash") is not None:
                    axis = Axis.DESCENDANT
                elif self.accept("slash") is not None:
                    axis = Axis.CHILD
                else:
                    break
            is_attribute = self.accept("at") is not None
            if not is_attribute:
                token = self.peek()
                if token is None or token[0] not in ("name", "number"):
                    if first:
                        raise QueryParseError(
                            f"empty predicate path in {self.text!r}"
                        )
                    break
            name = self._parse_name()
            node = node.add_child(TwigNode(name, axis=axis, is_attribute=is_attribute))
            first = False
        if self.accept("eq") is not None:
            node.value = self._parse_literal()

    def _parse_literal(self) -> str:
        token = self.next()
        if token[0] in ("string", "name", "number"):
            return token[1]
        raise QueryParseError(f"expected a literal but found {token[1]!r} in {self.text!r}")


def normalize_xpath(text: str) -> str:
    """Canonical form of a query string for caching purposes.

    Normalises the curly quotes of the paper's listings and strips
    surrounding whitespace — exactly the preprocessing
    :func:`parse_xpath` applies — so queries differing only in those
    details share one plan-cache entry.
    """
    return text.translate(_QUOTE_NORMALISATION).strip()


def parse_xpath(text: str) -> TwigPattern:
    """Parse an XPath-subset string into a :class:`TwigPattern`.

    Raises
    ------
    QueryParseError
        When the text is not in the supported fragment.
    """
    normalised = normalize_xpath(text)
    if not normalised:
        raise QueryParseError("empty query string")
    tokens = _tokenize(normalised)
    return _Parser(tokens, text).parse_query()
