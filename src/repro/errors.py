"""Exception hierarchy for the twig-index reproduction library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class XmlParseError(ReproError):
    """Raised when an XML document cannot be parsed into a node tree."""


class DocumentError(ReproError):
    """Raised for malformed or inconsistent document trees."""


class StorageError(ReproError):
    """Raised by the storage engine (B+-tree, heap files, catalog)."""


class KeyEncodingError(StorageError):
    """Raised when a value cannot be encoded into a sortable index key."""


class QueryParseError(ReproError):
    """Raised when an XPath-subset query string cannot be parsed."""


class QueryNotSupportedError(ReproError):
    """Raised when a query is valid but outside the supported fragment."""


class PlanningError(ReproError):
    """Raised when no evaluation plan can be produced for a query."""


class IndexError_(ReproError):
    """Raised for index construction or lookup failures.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`.
    """


class IndexNotBuiltError(IndexError_):
    """Raised when a lookup is attempted against an index that has not
    been built for the current document set."""


class UnsupportedLookupError(IndexError_):
    """Raised when an index in the family cannot serve a particular
    lookup (for example a ``//`` query against a SchemaPathId-compressed
    DATAPATHS index)."""


class WorkloadError(ReproError):
    """Raised for invalid workload or dataset generator parameters."""
