"""Generic branch-relation joiner.

Every "merge style" strategy (ROOTPATHS, DATAPATHS without INL, Edge,
DataGuide+Edge, IndexFabric+Edge, ASR, Join Indices) reduces a twig to
one relation per root-to-leaf path, whose columns are the ids of that
path's *needed* twig nodes (join points and the output node — see
:mod:`repro.planner.analysis`).  This module joins those relations with
the relational operators of :mod:`repro.relational` — hash joins on the
shared branch-point columns followed by a projection onto the output
node and duplicate elimination — exactly the "extract the ids of the
branch point from the IdLists, and do a join on the branch points"
plan of Section 5.2.2.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..errors import PlanningError
from ..query.ast import TwigNode
from ..relational.joins import HashJoin
from ..relational.operators import Distinct, Filter, PlanOperator, Project, RowSource
from ..storage.stats import StatsCollector
from .analysis import TwigAnalysis


class BranchRelation:
    """Rows of twig-node ids produced for one root-to-leaf path."""

    def __init__(
        self,
        analysis: TwigAnalysis,
        nodes: Sequence[TwigNode],
        rows: Sequence[tuple],
        label: str = "branch",
    ) -> None:
        self.analysis = analysis
        self.nodes = tuple(nodes)
        self.columns = tuple(analysis.column_name(node) for node in nodes)
        self.rows = list(rows)
        self.label = label

    def __len__(self) -> int:
        return len(self.rows)

    def to_operator(self, stats: Optional[StatsCollector] = None) -> RowSource:
        """Wrap the rows as a relational plan source."""
        return RowSource(self.columns, self.rows, stats=stats, label=self.label)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BranchRelation({self.label}, columns={self.columns}, rows={len(self.rows)})"


def join_branches(
    analysis: TwigAnalysis,
    relations: Sequence[BranchRelation],
    stats: Optional[StatsCollector] = None,
) -> list[int]:
    """Join branch relations and return sorted distinct output-node ids."""
    if not relations:
        return []
    output_column = analysis.column_name(analysis.output)
    plan = build_join_plan(analysis, relations, stats=stats)
    positions = plan.schema.position(output_column)
    ids = sorted({row[positions] for row in plan})
    return ids


def build_join_plan(
    analysis: TwigAnalysis,
    relations: Sequence[BranchRelation],
    stats: Optional[StatsCollector] = None,
) -> PlanOperator:
    """Compose the hash-join plan over the branch relations."""
    output_column = analysis.column_name(analysis.output)
    ordered = _order_relations(relations, output_column)
    plan: PlanOperator = ordered[0].to_operator(stats)
    joined_columns = set(plan.schema.columns)
    pending = list(ordered[1:])
    while pending:
        index = _next_joinable(pending, joined_columns)
        relation = pending.pop(index)
        right = relation.to_operator(stats)
        shared = [c for c in relation.columns if c in joined_columns]
        if not shared:
            raise PlanningError(
                f"branch relation {relation.label!r} shares no join column with the plan"
            )
        join_column = shared[-1]
        joined: PlanOperator = HashJoin(plan, right, join_column, join_column)
        # The right side's copy of the join columns gets a suffix in the
        # concatenated schema; filter the remaining shared columns for
        # equality and keep the left-side copies.
        for column in shared[:-1]:
            left_pos = joined.schema.position(column)
            right_pos = joined.schema.position(column + "_r")
            joined = Filter(
                joined,
                lambda row, lp=left_pos, rp=right_pos: row[lp] == row[rp],
                description=f"{column} consistent",
            )
        # Keep only the original column names; the right side's renamed
        # duplicates (suffix added by RowSchema.concat) are dropped.
        original = set(plan.schema.columns) | set(relation.columns)
        keep = [c for c in joined.schema.columns if c in original]
        plan = Project(joined, keep)
        joined_columns.update(relation.columns)
    if output_column not in plan.schema:
        raise PlanningError("no branch relation produced the output column")
    return Distinct(Project(plan, [output_column]))


def _order_relations(
    relations: Sequence[BranchRelation], output_column: str
) -> list[BranchRelation]:
    """Put a relation containing the output column first, then the rest."""
    with_output = [r for r in relations if output_column in r.columns]
    without = [r for r in relations if output_column not in r.columns]
    if not with_output:
        raise PlanningError("no branch relation contains the output node")
    # Among the output-bearing relations, start with the widest one so
    # join columns become available early.
    with_output.sort(key=lambda r: len(r.columns), reverse=True)
    return with_output + without


def _next_joinable(pending: list[BranchRelation], joined_columns: set[str]) -> int:
    for index, relation in enumerate(pending):
        if any(column in joined_columns for column in relation.columns):
            return index
    # Fall back to the first relation; build_join_plan will raise a
    # precise error if it truly cannot be joined.
    return 0
