"""Plan choice for the DATAPATHS strategy: merge join vs index-nested-loop.

Section 5.2.3 of the paper shows that the index-nested-loop strategy
enabled by DATAPATHS' BoundIndex probes pays off when

(a) one branch is very selective,
(b) the other branches are unselective, and
(c) each selective match joins with only a few unselective matches
    (branch points close to the leaves).

The optimizer here uses the same reasoning with catalog statistics
collected while building the index: the estimated number of FreeIndex
matches per branch.  The merge plan costs roughly the sum of all branch
cardinalities (every branch is fetched and joined); the INL plan costs
the outer cardinality times a per-probe charge for each remaining
branch.  The cheaper plan wins; callers can force either plan for the
ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .analysis import TwigAnalysis

#: Logical charge of one BoundIndex probe (a root-to-leaf B+-tree
#: descent plus the entries it touches), in the same "rows touched"
#: currency as the cardinality estimates.
PROBE_COST = 4


@dataclass(frozen=True)
class DataPathsPlanChoice:
    """The optimizer's decision for one twig."""

    plan: str
    outer_index: int
    estimates: tuple[int, ...]
    merge_cost: float
    inl_cost: float

    def __str__(self) -> str:  # pragma: no cover - display helper
        return (
            f"{self.plan} (merge={self.merge_cost:.0f}, inl={self.inl_cost:.0f}, "
            f"outer=branch {self.outer_index}, estimates={self.estimates})"
        )


def estimate_branch_cardinalities(analysis: TwigAnalysis, index) -> tuple[int, ...]:
    """Estimated FreeIndex matches per root-to-leaf branch.

    ``index`` is any object exposing ``estimate_matches(leaf_label,
    value)`` (ROOTPATHS and DATAPATHS both collect those statistics at
    build time).
    """
    estimates = []
    for path in analysis.paths:
        query = path.query
        estimates.append(max(0, index.estimate_matches(query.leaf.label, query.value)))
    return tuple(estimates)


def choose_datapaths_plan(
    analysis: TwigAnalysis,
    index,
    force: Optional[str] = None,
    probe_cost: float = PROBE_COST,
) -> DataPathsPlanChoice:
    """Choose merge vs index-nested-loop for a DATAPATHS evaluation."""
    estimates = estimate_branch_cardinalities(analysis, index)
    if not estimates:
        return DataPathsPlanChoice("merge", 0, (), 0.0, 0.0)
    outer_index = min(range(len(estimates)), key=lambda i: estimates[i])
    merge_cost = float(sum(estimates))
    other_branches = len(estimates) - 1
    # One probe per remaining branch per outer row, plus possibly one more
    # probe to fetch the output node when it is not on the outer branch.
    extra_output_probe = 0 if analysis.paths[outer_index].contains_output else 1
    inl_cost = float(estimates[outer_index]) * probe_cost * (
        other_branches + extra_output_probe
    ) + float(estimates[outer_index])
    if force == "merge":
        plan = "merge"
    elif force == "inl":
        plan = "inl"
    elif analysis.is_single_path:
        plan = "merge"
    else:
        plan = "inl" if inl_cost < merge_cost else "merge"
    return DataPathsPlanChoice(plan, outer_index, estimates, merge_cost, inl_cost)
