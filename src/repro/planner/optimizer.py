"""Plan choice: DATAPATHS merge vs INL, and cross-strategy cost estimation.

Section 5.2.3 of the paper shows that the index-nested-loop strategy
enabled by DATAPATHS' BoundIndex probes pays off when

(a) one branch is very selective,
(b) the other branches are unselective, and
(c) each selective match joins with only a few unselective matches
    (branch points close to the leaves).

The optimizer here uses the same reasoning with catalog statistics
collected while building the index: the estimated number of FreeIndex
matches per branch.  The merge plan costs roughly the sum of all branch
cardinalities (every branch is fetched and joined); the INL plan costs
the outer cardinality times a per-probe charge for each remaining
branch.  The cheaper plan wins; callers can force either plan for the
ablation benchmarks.

On top of the per-strategy plan choice, :func:`choose_strategy` ranks
*strategies* against each other with the same catalog statistics — the
estimator behind the service layer's ``strategy="auto"`` mode.  The
models are deliberately coarse (the same "rows touched" currency as the
cardinality estimates); their job is to separate the IdList-based plans
from the per-step-join plans and to surface the index-nested-loop win,
not to predict exact counter values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from ..indexes.base import DEFAULT_DESCENT_COST
from ..storage.stats import PAGE_READ_WEIGHT
from .analysis import TwigAnalysis

#: Logical charge of one BoundIndex probe (a root-to-leaf B+-tree
#: descent plus the entries it touches), in the same "rows touched"
#: currency as the cardinality estimates.
PROBE_COST = 4


@dataclass(frozen=True)
class DataPathsPlanChoice:
    """The optimizer's decision for one twig."""

    plan: str
    outer_index: int
    estimates: tuple[int, ...]
    merge_cost: float
    inl_cost: float

    def __str__(self) -> str:  # pragma: no cover - display helper
        return (
            f"{self.plan} (merge={self.merge_cost:.0f}, inl={self.inl_cost:.0f}, "
            f"outer=branch {self.outer_index}, estimates={self.estimates})"
        )


def estimate_branch_cardinalities(analysis: TwigAnalysis, index) -> tuple[int, ...]:
    """Estimated FreeIndex matches per root-to-leaf branch.

    ``index`` is any object exposing ``estimate_matches(leaf_label,
    value)`` (ROOTPATHS and DATAPATHS both collect those statistics at
    build time).
    """
    estimates = []
    for path in analysis.paths:
        query = path.query
        estimates.append(max(0, index.estimate_matches(query.leaf.label, query.value)))
    return tuple(estimates)


def choose_datapaths_plan(
    analysis: TwigAnalysis,
    index,
    force: Optional[str] = None,
    probe_cost: float = PROBE_COST,
) -> DataPathsPlanChoice:
    """Choose merge vs index-nested-loop for a DATAPATHS evaluation."""
    estimates = estimate_branch_cardinalities(analysis, index)
    if not estimates:
        return DataPathsPlanChoice("merge", 0, (), 0.0, 0.0)
    outer_index = min(range(len(estimates)), key=lambda i: estimates[i])
    merge_cost = float(sum(estimates))
    other_branches = len(estimates) - 1
    # One probe per remaining branch per outer row.  No extra charge for
    # fetching the output node: the output always lies on at least one
    # root-to-leaf path (its own trunk extension at minimum), so either
    # the outer row carries it or an inner branch's probe yields it for
    # free.  (The executor keeps a defensive trunk-probe fallback for
    # the case, but it is unreachable for well-formed twigs.)
    inl_cost = (
        float(estimates[outer_index]) * probe_cost * other_branches
        + float(estimates[outer_index])
    )
    if force == "merge":
        plan = "merge"
    elif force == "inl":
        plan = "inl"
    elif analysis.is_single_path:
        plan = "merge"
    else:
        plan = "inl" if inl_cost < merge_cost else "merge"
    return DataPathsPlanChoice(plan, outer_index, estimates, merge_cost, inl_cost)


# ----------------------------------------------------------------------
# Cross-strategy cost estimation (the "auto" optimizer)
# ----------------------------------------------------------------------

#: Strategies the auto mode considers by default: the two strategies the
#: paper proposes, which dominate every figure of its evaluation.
AUTO_CANDIDATES = ("rootpaths", "datapaths")


@dataclass(frozen=True)
class StrategyChoice:
    """The optimizer's cross-strategy decision for one twig."""

    strategy: str
    costs: dict
    datapaths_plan: Optional[DataPathsPlanChoice]

    def __str__(self) -> str:  # pragma: no cover - display helper
        ranked = ", ".join(f"{n}={c:.0f}" for n, c in sorted(self.costs.items()))
        return f"{self.strategy} ({ranked})"


def _descent_cost(indexes: Optional[Mapping], index_name: str) -> float:
    """Weighted per-lookup descent charge for one index."""
    if indexes is not None:
        index = indexes.get(index_name)
        if index is not None and hasattr(index, "lookup_descent_cost"):
            return float(index.lookup_descent_cost())
    return float(DEFAULT_DESCENT_COST)


def estimate_strategy_costs(
    analysis: TwigAnalysis,
    catalog,
    candidates: tuple[str, ...] = AUTO_CANDIDATES,
    indexes: Optional[Mapping] = None,
) -> tuple[dict, Optional[DataPathsPlanChoice]]:
    """Estimated evaluation cost of each candidate strategy for one twig.

    ``catalog`` is any built index exposing ``estimate_matches`` (the
    build-time value statistics of ROOTPATHS and DATAPATHS); ``indexes``
    optionally maps index names to built indexes so descent charges can
    use actual tree heights.  Costs are expressed in the
    :func:`~repro.storage.stats.weighted_cost` currency — one descent
    costs ``height x page weight``, one scanned/joined row costs 1 — so
    they are comparable to measured ``total_cost`` values.  Per model:

    * ``rootpaths`` — one descent per branch plus every matched path
      scanned and joined (the merge plan: the sum of cardinalities);
    * ``datapaths`` — the cheaper of its merge plan (like ROOTPATHS but
      descending the larger all-subpaths tree) and its index-nested-loop
      plan (one descent per outer row per remaining branch), as priced
      by :func:`choose_datapaths_plan` with the descent as probe charge;
    * ``edge`` — every leaf candidate walks up its whole branch, one
      page-weighted backward-link probe per step;
    * ``dataguide_edge`` / ``index_fabric_edge`` — the walk-up cost plus
      the value-join rows;
    * ``asr`` / ``join_index`` — per-branch relation accesses scanning
      the matched rows, with doubled open/composition charges.
    """
    estimates = estimate_branch_cardinalities(analysis, catalog)
    branches = max(1, len(estimates))
    merge_rows = float(sum(estimates))
    walk_up = 0.0
    for estimate, path in zip(estimates, analysis.paths):
        walk_up += float(estimate) * len(path.query.nodes) * PAGE_READ_WEIGHT
    datapaths_plan: Optional[DataPathsPlanChoice] = None
    costs: dict = {}
    for name in candidates:
        if name == "rootpaths":
            descent = _descent_cost(indexes, "rootpaths")
            costs[name] = merge_rows + descent * branches
        elif name == "datapaths":
            descent = _descent_cost(indexes, "datapaths")
            datapaths_plan = choose_datapaths_plan(
                analysis, catalog, probe_cost=descent
            )
            if datapaths_plan.plan == "inl" and not analysis.is_single_path:
                # One descent for the outer branch lookup; the probes per
                # outer row are already priced at the descent charge.
                costs[name] = datapaths_plan.inl_cost + descent
            else:
                costs[name] = datapaths_plan.merge_cost + descent * branches
        elif name == "edge":
            descent = _descent_cost(indexes, "edge")
            costs[name] = walk_up + descent * branches
        elif name in ("dataguide_edge", "index_fabric_edge"):
            descent = _descent_cost(indexes, name.replace("_edge", ""))
            costs[name] = walk_up + merge_rows + descent * branches
        elif name == "asr":
            descent = _descent_cost(indexes, "asr")
            costs[name] = merge_rows + 2 * descent * branches
        elif name == "join_index":
            descent = _descent_cost(indexes, "join_index")
            costs[name] = 2 * merge_rows + 2 * descent * branches
        else:
            raise ValueError(f"no cost model for strategy {name!r}")
    return costs, datapaths_plan


def choose_strategy(
    analysis: TwigAnalysis,
    catalog,
    candidates: tuple[str, ...] = AUTO_CANDIDATES,
    indexes: Optional[Mapping] = None,
) -> StrategyChoice:
    """Pick the estimated-cheapest strategy for one twig.

    Ties go to the earlier candidate, so with the default candidate
    order ROOTPATHS (the smaller index, hence the shallower descents)
    wins whenever the models cannot separate the plans.
    """
    if not candidates:
        raise ValueError("choose_strategy needs at least one candidate")
    costs, datapaths_plan = estimate_strategy_costs(
        analysis, catalog, candidates=candidates, indexes=indexes
    )
    best = min(candidates, key=lambda name: costs[name])
    return StrategyChoice(strategy=best, costs=costs, datapaths_plan=datapaths_plan)
