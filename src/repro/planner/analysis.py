"""Twig analysis shared by every evaluation strategy.

Given a parsed :class:`~repro.query.twig.TwigPattern`, the
:class:`TwigAnalysis` computes the pieces all strategies need:

* the root-to-leaf :class:`~repro.query.twig.PathQuery` list,
* the *trunk* (root to output node),
* the *join points*: for every root-to-leaf path, the deepest trunk
  node lying on it — these are the "branch points" whose ids the paper
  extracts from IdLists and joins on (Section 5.2.2),
* for every path, the *needed nodes*: the join points lying on that
  path plus the output node when it is on the path — the columns its
  branch relation must produce for the final join.

Strategies turn each path into a relation over its needed nodes and the
generic joiner in :mod:`repro.planner.joiner` combines them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..query.ast import Axis, TwigNode
from ..query.twig import PathQuery, TwigPattern


@dataclass
class AnalyzedPath:
    """A root-to-leaf path with its join metadata."""

    query: PathQuery
    join_point: TwigNode
    needed_nodes: tuple[TwigNode, ...]
    contains_output: bool

    @property
    def leaf(self) -> TwigNode:
        return self.query.leaf


class TwigAnalysis:
    """Join-relevant structure of a twig pattern."""

    def __init__(self, twig: TwigPattern) -> None:
        self.twig = twig
        self.trunk: list[TwigNode] = twig.output_path()
        self._trunk_depth = {id(node): depth for depth, node in enumerate(self.trunk)}
        self.node_order: dict[int, int] = {
            id(node): index for index, node in enumerate(twig.iter_nodes())
        }
        self.paths: list[AnalyzedPath] = self._analyze()

    # ------------------------------------------------------------------
    def _analyze(self) -> list[AnalyzedPath]:
        queries = self.twig.path_queries()
        join_points = []
        for query in queries:
            join_points.append(self._deepest_trunk_node(query))
        join_point_ids = {id(node) for node in join_points}
        analyzed = []
        for query, join_point in zip(queries, join_points):
            needed = tuple(
                node
                for node in query.nodes
                if id(node) in join_point_ids or node is self.twig.output
            )
            analyzed.append(
                AnalyzedPath(
                    query=query,
                    join_point=join_point,
                    needed_nodes=needed,
                    contains_output=any(n is self.twig.output for n in query.nodes),
                )
            )
        return analyzed

    def _deepest_trunk_node(self, query: PathQuery) -> TwigNode:
        deepest = query.nodes[0]
        best_depth = -1
        for node in query.nodes:
            depth = self._trunk_depth.get(id(node))
            if depth is not None and depth > best_depth:
                best_depth = depth
                deepest = node
        return deepest

    # ------------------------------------------------------------------
    def column_name(self, node: TwigNode) -> str:
        """Stable column name for a twig node, usable across relations."""
        return f"n{self.node_order[id(node)]}_{node.label}"

    def trunk_depth(self, node: TwigNode) -> Optional[int]:
        """Depth of ``node`` on the trunk, ``None`` if not a trunk node."""
        return self._trunk_depth.get(id(node))

    def trunk_common_node(self, a: TwigNode, b: TwigNode) -> TwigNode:
        """The shallower of two trunk nodes (their common trunk prefix end)."""
        da, db_ = self._trunk_depth[id(a)], self._trunk_depth[id(b)]
        return a if da <= db_ else b

    def trunk_nodes_between(
        self, upper: TwigNode, lower: TwigNode, inclusive_lower: bool = True
    ) -> list[TwigNode]:
        """Trunk nodes strictly below ``upper`` down to ``lower``."""
        du = self._trunk_depth[id(upper)]
        dl = self._trunk_depth[id(lower)]
        end = dl + 1 if inclusive_lower else dl
        return self.trunk[du + 1 : end]

    @property
    def output(self) -> TwigNode:
        """The twig's output node."""
        return self.twig.output

    @property
    def is_single_path(self) -> bool:
        """True when no join is required."""
        return len(self.paths) <= 1


def subpath_below(nodes: tuple[TwigNode, ...], head: TwigNode) -> tuple[TwigNode, ...]:
    """The nodes of a path strictly below ``head`` (which must be on it)."""
    for index, node in enumerate(nodes):
        if node is head:
            return nodes[index + 1 :]
    raise ValueError(f"{head!r} is not on the path")


def split_segments(nodes: tuple[TwigNode, ...]) -> tuple[tuple[tuple[str, ...], ...], bool]:
    """Split path nodes into label segments at descendant edges.

    Returns ``(segments, anchored)`` where ``anchored`` is True when the
    first node attaches with a parent-child edge (so the segment starts
    immediately below whatever the path hangs from).
    """
    if not nodes:
        return ((), True)
    segments: list[tuple[str, ...]] = []
    current: list[str] = [nodes[0].label]
    for node in nodes[1:]:
        if node.axis is Axis.DESCENDANT:
            segments.append(tuple(current))
            current = [node.label]
        else:
            current.append(node.label)
    segments.append(tuple(current))
    anchored = nodes[0].axis is Axis.CHILD
    return tuple(segments), anchored
