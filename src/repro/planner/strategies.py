"""Twig evaluation strategies, one per index structure.

Each strategy turns a parsed twig pattern into sorted output-node ids
using only its index's lookup primitives plus the relational join
operators — the plans of Section 5:

* :class:`RootPathsStrategy` — one ROOTPATHS lookup per root-to-leaf
  path, branch-point ids extracted from IdLists, hash/merge join.
* :class:`DataPathsStrategy` — same merge plan via FreeIndex probes,
  or the index-nested-loop plan built on BoundIndex probes when the
  optimizer decides one branch is selective enough (Section 5.2.3).
* :class:`EdgeStrategy` — value/tag index lookup for the leaf, then a
  join per step up the path through the backward-link index.
* :class:`DataGuidePlusEdgeStrategy` — DataGuide lookup for the schema
  path joined with a value-index lookup, then Edge walk-ups for branch
  points (the DG+Edge combination of Section 5.1.2).
* :class:`IndexFabricPlusEdgeStrategy` — Index Fabric lookup for fully
  specified root-to-leaf paths with values, Edge walk-ups for branch
  points, Edge fallback for unsupported branches (IF+Edge).
* :class:`AccessSupportRelationsStrategy` — per-schema-path relations,
  one access per matching relation (Section 5.2.6).
* :class:`JoinIndicesStrategy` — per-schema-path binary join indices,
  composed with joins to recover intermediate branch points.

All strategies are verified against the naive matcher in the tests.
"""

from __future__ import annotations

import abc
from typing import Iterable, Optional, Sequence

from ..errors import PlanningError
from ..indexes.asr import AccessSupportRelationsIndex
from ..indexes.base import PathIndex, PathMatch
from ..kernels.columns import PathInterner
from ..kernels.join import CompiledBranch, CompiledTwig
from ..indexes.dataguide import DataGuideIndex
from ..indexes.datapaths import DataPathsIndex
from ..indexes.edge import EdgeIndex
from ..indexes.index_fabric import IndexFabricIndex
from ..indexes.join_index import JoinIndicesIndex
from ..indexes.rootpaths import RootPathsIndex
from ..paths.schema_paths import PathPattern, match_positions
from ..query.ast import Axis, TwigNode
from ..query.twig import PathQuery, TwigPattern
from ..storage.stats import GLOBAL_STATS, StatsCollector
from ..xmltree.document import VIRTUAL_ROOT_ID, XmlDatabase
from .analysis import AnalyzedPath, TwigAnalysis, split_segments, subpath_below
from .joiner import BranchRelation, join_branches
from .optimizer import DataPathsPlanChoice, choose_datapaths_plan


class EvaluationStrategy(abc.ABC):
    """Base class: a named way of answering twigs with specific indices."""

    #: Short name used by the engine, the workload tables and the benches.
    name: str = "abstract"
    #: Index names (keys into the engine's index dict) this strategy needs.
    required_indexes: tuple[str, ...] = ()
    #: DATAPATHS payloads carry a bound head id the extractors must read.
    bound_payloads: bool = False
    #: Compiled twig plans kept per strategy before the cache is reset.
    PLAN_CACHE_LIMIT = 128

    def __init__(
        self,
        db: XmlDatabase,
        indexes: dict[str, PathIndex],
        stats: Optional[StatsCollector] = None,
        use_kernels: bool = True,
    ) -> None:
        self.db = db
        self.indexes = indexes
        self.stats = stats if stats is not None else GLOBAL_STATS
        self.use_kernels = bool(use_kernels)
        self._interner = PathInterner()
        self._twig_plans: dict[TwigPattern, CompiledTwig] = {}
        for required in self.required_indexes:
            if required not in indexes:
                raise PlanningError(
                    f"strategy {self.name!r} requires the {required!r} index"
                )

    # ------------------------------------------------------------------
    def evaluate(self, twig: TwigPattern) -> list[int]:
        """Sorted ids of database nodes matching the twig's output node."""
        if self.use_kernels:
            plan = self._twig_plan(twig)
            rows = [self._kernel_branch_rows(plan, branch) for branch in plan.branches]
            return plan.join.run(rows, self.stats)
        analysis = TwigAnalysis(twig)
        relations = []
        for path in analysis.paths:
            rows = self._branch_rows(analysis, path)
            relations.append(
                BranchRelation(
                    analysis,
                    path.needed_nodes,
                    rows,
                    label=path.query.describe(),
                )
            )
        return join_branches(analysis, relations, stats=self.stats)

    # ------------------------------------------------------------------
    # Columnar kernel path
    # ------------------------------------------------------------------
    def _twig_plan(self, twig: TwigPattern) -> CompiledTwig:
        """The cached :class:`CompiledTwig` for a twig object.

        Twig patterns hash by identity, so a live twig object keys its
        compiled plan directly; the cache resets past
        ``PLAN_CACHE_LIMIT`` distinct twigs to bound memory.
        """
        plan = self._twig_plans.get(twig)
        if plan is None:
            if len(self._twig_plans) >= self.PLAN_CACHE_LIMIT:
                self._twig_plans.clear()
            plan = CompiledTwig(
                TwigAnalysis(twig), self._interner, bound=self.bound_payloads
            )
            self._twig_plans[twig] = plan
        return plan

    def _kernel_branch_rows(
        self, plan: CompiledTwig, branch: CompiledBranch
    ) -> list[tuple]:
        """Kernel-path row production; defaults to the legacy producer.

        Strategies whose indexes expose batch payload lookups override
        this; the rest keep their row production and still gain the
        compiled join.
        """
        return self._branch_rows(plan.analysis, branch.path)

    @abc.abstractmethod
    def _branch_rows(
        self, analysis: TwigAnalysis, path: AnalyzedPath
    ) -> list[tuple]:
        """Rows of ids for the path's needed nodes."""

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _rows_from_matches(
        matches: Iterable[PathMatch],
        pattern: PathPattern,
        needed_positions: Sequence[int],
        already_exact: bool = False,
    ) -> list[tuple]:
        """Map index matches to needed-node id rows.

        Each match's schema path is checked against the full pattern
        (placements); every placement contributes one row built from the
        IdList positions of the needed nodes.
        """
        rows: list[tuple] = []
        for match in matches:
            if already_exact:
                placements = [tuple(range(len(match.labels)))]
            else:
                placements = match_positions(pattern, match.labels)
            for placement in placements:
                row = tuple(
                    match.id_at(placement[position]) for position in needed_positions
                )
                if any(value is None for value in row):
                    continue
                rows.append(row)
        return rows

    def _needed_positions(self, path: AnalyzedPath) -> list[int]:
        return [path.query.position_of(node) for node in path.needed_nodes]


# ----------------------------------------------------------------------
# ROOTPATHS
# ----------------------------------------------------------------------
class RootPathsStrategy(EvaluationStrategy):
    """Single ROOTPATHS lookup per branch, join on extracted branch points."""

    name = "rootpaths"
    required_indexes = ("rootpaths",)

    @property
    def index(self) -> RootPathsIndex:
        return self.indexes["rootpaths"]  # type: ignore[return-value]

    def _branch_rows(self, analysis: TwigAnalysis, path: AnalyzedPath) -> list[tuple]:
        query = path.query
        pattern = query.pattern
        exact = pattern.is_single_segment and pattern.anchored
        matches = self.index.lookup(
            pattern.trailing_segment, query.value, anchored=exact
        )
        return self._rows_from_matches(
            matches, pattern, self._needed_positions(path), already_exact=exact
        )

    def _kernel_branch_rows(
        self, plan: CompiledTwig, branch: CompiledBranch
    ) -> list[tuple]:
        payloads = self.index.lookup_payloads(
            branch.trailing, branch.value, anchored=branch.exact
        )
        return branch.extractor.rows(payloads)


# ----------------------------------------------------------------------
# DATAPATHS (merge plan and index-nested-loop plan)
# ----------------------------------------------------------------------
class DataPathsStrategy(EvaluationStrategy):
    """FreeIndex merge plan or BoundIndex index-nested-loop plan."""

    name = "datapaths"
    required_indexes = ("datapaths",)
    bound_payloads = True

    def __init__(
        self,
        db: XmlDatabase,
        indexes: dict[str, PathIndex],
        stats: Optional[StatsCollector] = None,
        force_plan: Optional[str] = None,
        use_kernels: bool = True,
    ) -> None:
        super().__init__(db, indexes, stats, use_kernels=use_kernels)
        if force_plan not in (None, "merge", "inl"):
            raise PlanningError(f"unknown DATAPATHS plan {force_plan!r}")
        self.force_plan = force_plan
        self.last_plan: Optional[DataPathsPlanChoice] = None

    @property
    def index(self) -> DataPathsIndex:
        return self.indexes["datapaths"]  # type: ignore[return-value]

    # -- plan selection -------------------------------------------------
    def evaluate(self, twig: TwigPattern) -> list[int]:
        if self.use_kernels:
            plan = self._twig_plan(twig)
            analysis = plan.analysis
            choice = choose_datapaths_plan(
                analysis, self.index, force=self.force_plan
            )
            self.last_plan = choice
            if choice.plan == "inl" and not analysis.is_single_path:
                return self._kernel_inl(plan, choice)
            rows = [self._kernel_branch_rows(plan, branch) for branch in plan.branches]
            return plan.join.run(rows, self.stats)
        analysis = TwigAnalysis(twig)
        choice = choose_datapaths_plan(analysis, self.index, force=self.force_plan)
        self.last_plan = choice
        if choice.plan == "inl" and not analysis.is_single_path:
            return self._evaluate_inl(analysis, choice)
        return self._evaluate_merge(analysis)

    def _kernel_branch_rows(
        self, plan: CompiledTwig, branch: CompiledBranch
    ) -> list[tuple]:
        payloads = self.index.free_lookup_payloads(
            branch.trailing, branch.value, anchored=branch.exact
        )
        return branch.extractor.rows(payloads)

    def _kernel_inl(
        self, plan: CompiledTwig, choice: DataPathsPlanChoice
    ) -> list[int]:
        """Compiled index-nested-loop plan (mirrors :meth:`_evaluate_inl`).

        The per-outer-branch probe layout — head-column positions, probe
        patterns, placement caches — is compiled once and stashed on the
        twig plan; each execution is the same probe sequence with the
        same ``join_probes`` charge points as the legacy loop.
        """
        spec = plan.inl_plans.get(choice.outer_index)
        if spec is None:
            spec = _CompiledInl(plan.analysis, choice.outer_index)
            plan.inl_plans[choice.outer_index] = spec
        outer_rows = self._kernel_branch_rows(plan, plan.branches[choice.outer_index])
        index = self.index
        stats = self.stats
        results: set[int] = set()
        for row in outer_rows:
            satisfied = True
            output_candidates: Optional[set[int]] = None
            for other in spec.others:
                head_id = row[other.head_pos]
                stats.join_probes += 1
                matches = other.probe.run(index, head_id)
                if not matches:
                    satisfied = False
                    break
                if other.extract_output:
                    extracted = _extract_probe_ids(matches, other.target_index)
                    if output_candidates is None:
                        output_candidates = extracted
                    else:
                        output_candidates &= extracted
                    if not output_candidates:
                        satisfied = False
                        break
            if not satisfied:
                continue
            if spec.output_pos is not None:
                results.add(row[spec.output_pos])
            elif output_candidates is not None:
                results.update(output_candidates)
            else:
                head_id = row[spec.trunk_head_pos]
                if spec.trunk_probe is None:
                    results.add(head_id)
                    continue
                stats.join_probes += 1
                matches = spec.trunk_probe.run(index, head_id)
                for payload, placement in matches:
                    labels, ids = payload[0], payload[1]
                    position = placement[spec.trunk_last] - (len(labels) - len(ids))
                    identifier = payload[3] if position < 0 else ids[position]
                    if identifier is not None:
                        results.add(identifier)
        return sorted(results)

    # -- merge plan ------------------------------------------------------
    def _evaluate_merge(self, analysis: TwigAnalysis) -> list[int]:
        relations = []
        for path in analysis.paths:
            rows = self._branch_rows(analysis, path)
            relations.append(
                BranchRelation(
                    analysis, path.needed_nodes, rows, label=path.query.describe()
                )
            )
        return join_branches(analysis, relations, stats=self.stats)

    def _branch_rows(self, analysis: TwigAnalysis, path: AnalyzedPath) -> list[tuple]:
        query = path.query
        pattern = query.pattern
        exact = pattern.is_single_segment and pattern.anchored
        matches = self.index.free_lookup(
            pattern.trailing_segment, query.value, anchored=exact
        )
        return self._rows_from_matches(
            matches, pattern, self._needed_positions(path), already_exact=exact
        )

    # -- index-nested-loop plan -------------------------------------------
    def _evaluate_inl(
        self, analysis: TwigAnalysis, choice: DataPathsPlanChoice
    ) -> list[int]:
        outer = analysis.paths[choice.outer_index]
        others = [p for i, p in enumerate(analysis.paths) if i != choice.outer_index]
        outer_rows = self._branch_rows(analysis, outer)
        outer_columns = {node: i for i, node in enumerate(outer.needed_nodes)}
        output = analysis.output
        output_on_outer = output in outer_columns

        results: set[int] = set()
        for row in outer_rows:
            satisfied = True
            output_candidates: Optional[set[int]] = None
            for other in others:
                head_node = analysis.trunk_common_node(outer.join_point, other.join_point)
                head_id = row[outer_columns[head_node]]
                self.stats.join_probes += 1
                matches = self._probe_below(head_id, other.query, head_node)
                if not matches:
                    satisfied = False
                    break
                if other.contains_output and not output_on_outer:
                    extracted = self._extract_node_ids(matches, other.query, head_node, output)
                    if output_candidates is None:
                        output_candidates = extracted
                    else:
                        output_candidates &= extracted
                    if not output_candidates:
                        satisfied = False
                        break
            if not satisfied:
                continue
            if output_on_outer:
                results.add(row[outer_columns[output]])
            elif output_candidates is not None:
                results.update(output_candidates)
            else:
                # The output lies on the trunk below every probed branch's
                # attachment point; fetch it with one more BoundIndex probe
                # down the trunk from the deepest trunk node we hold.
                head_node = outer.join_point
                head_id = row[outer_columns[head_node]]
                trunk_below = tuple(
                    analysis.trunk_nodes_between(head_node, output, inclusive_lower=True)
                )
                if not trunk_below:
                    results.add(head_id)
                    continue
                self.stats.join_probes += 1
                matches = self._probe_nodes_below(head_id, trunk_below, value=None)
                for match, placement in matches:
                    identifier = match.id_at(placement[len(trunk_below) - 1])
                    if identifier is not None:
                        results.add(identifier)
        return sorted(results)

    def _probe_below(
        self, head_id: int, query: PathQuery, head_node: TwigNode
    ) -> list[tuple[PathMatch, tuple[int, ...]]]:
        below = subpath_below(query.nodes, head_node)
        if not below:
            return [(PathMatch(labels=(head_node.label,), ids=(head_id,)), (0,))]
        return self._probe_nodes_below(head_id, below, value=query.value)

    def _probe_nodes_below(
        self,
        head_id: int,
        below: tuple[TwigNode, ...],
        value: Optional[str],
    ) -> list[tuple[PathMatch, tuple[int, ...]]]:
        """BoundIndex probe for a chain of twig nodes below a head node.

        Returns ``(match, placement)`` pairs where the placement maps the
        below-node positions onto the match's label positions (the head
        label occupies position 0 of the match labels).
        """
        segments, anchored = split_segments(below)
        pattern = PathPattern(segments, anchored=False)
        trailing = segments[-1]
        exact = len(segments) == 1 and anchored
        matches = self.index.bound_lookup(head_id, pattern.labels if exact else trailing,
                                          value=value, anchored=exact)
        results: list[tuple[PathMatch, tuple[int, ...]]] = []
        for match in matches:
            if exact:
                placement = tuple(range(1, len(match.labels)))
                results.append((match, placement))
                continue
            # Verify the full below-pattern against the labels under the head.
            sub_labels = match.labels[1:]
            verify_pattern = PathPattern(segments, anchored=anchored)
            for placement in match_positions(verify_pattern, sub_labels):
                shifted = tuple(position + 1 for position in placement)
                results.append((match, shifted))
        return results

    def _extract_node_ids(
        self,
        matches: list[tuple[PathMatch, tuple[int, ...]]],
        query: PathQuery,
        head_node: TwigNode,
        target: TwigNode,
    ) -> set[int]:
        below = subpath_below(query.nodes, head_node)
        target_index = None
        for index, node in enumerate(below):
            if node is target:
                target_index = index
                break
        if target_index is None:
            return set()
        extracted: set[int] = set()
        for match, placement in matches:
            identifier = match.id_at(placement[target_index])
            if identifier is not None:
                extracted.add(identifier)
        return extracted


# ----------------------------------------------------------------------
# Compiled DATAPATHS INL probe layout (kernel path)
# ----------------------------------------------------------------------
#: Stand-in probe result for an empty below-chain: the head itself
#: satisfies the branch, exactly like the legacy synthetic PathMatch.
#: Never hits the index and never feeds extraction (target is None).
_SYNTHETIC_PROBE: list[tuple[tuple, tuple[int, ...]]] = [(((), (), None, None), (0,))]


class _ProbeSpec:
    """One compiled BoundIndex probe below a fixed trunk attachment.

    Mirrors :meth:`DataPathsStrategy._probe_nodes_below` over raw
    ``(schema_path, ids, leaf_value, head_id)`` payloads, with placement
    verification memoised per schema path (placements depend only on
    labels, never on the probed head id).
    """

    __slots__ = ("empty", "value", "exact", "trailing", "verify_pattern",
                 "_placements", "_exact_placements")

    def __init__(self, below: tuple[TwigNode, ...], value: Optional[str]) -> None:
        self.empty = not below
        self.value = value
        self._placements: dict[tuple[str, ...], tuple[tuple[int, ...], ...]] = {}
        self._exact_placements: dict[int, tuple[int, ...]] = {}
        if self.empty:
            self.exact = False
            self.trailing: tuple[str, ...] = ()
            self.verify_pattern: Optional[PathPattern] = None
            return
        segments, anchored = split_segments(below)
        self.exact = len(segments) == 1 and anchored
        self.trailing = segments[-1]
        self.verify_pattern = (
            None if self.exact else PathPattern(segments, anchored=anchored)
        )

    def run(self, index: DataPathsIndex, head_id: int) -> list[tuple]:
        if self.empty:
            return _SYNTHETIC_PROBE
        payloads = index.bound_lookup_payloads(
            head_id, self.trailing, value=self.value, anchored=self.exact
        )
        results: list[tuple] = []
        if self.exact:
            cache = self._exact_placements
            for payload in payloads:
                length = len(payload[0])
                placement = cache.get(length)
                if placement is None:
                    placement = tuple(range(1, length))
                    cache[length] = placement
                results.append((payload, placement))
            return results
        cache = self._placements
        pattern = self.verify_pattern
        for payload in payloads:
            labels = payload[0]
            shifted = cache.get(labels)
            if shifted is None:
                shifted = tuple(
                    tuple(position + 1 for position in placement)
                    for placement in match_positions(pattern, labels[1:])
                )
                cache[labels] = shifted
            for placement in shifted:
                results.append((payload, placement))
        return results


def _extract_probe_ids(
    matches: list[tuple], target_index: Optional[int]
) -> set[int]:
    """Ids at the target below-position (payload mirror of ``id_at``)."""
    if target_index is None:
        return set()
    extracted: set[int] = set()
    for payload, placement in matches:
        labels, ids = payload[0], payload[1]
        position = placement[target_index] - (len(labels) - len(ids))
        identifier = payload[3] if position < 0 else ids[position]
        if identifier is not None:
            extracted.add(identifier)
    return extracted


class _InlOther:
    """One probed (non-outer) branch of a compiled INL plan."""

    __slots__ = ("head_pos", "probe", "extract_output", "target_index")

    def __init__(
        self,
        head_pos: int,
        probe: _ProbeSpec,
        extract_output: bool,
        target_index: Optional[int],
    ) -> None:
        self.head_pos = head_pos
        self.probe = probe
        self.extract_output = extract_output
        self.target_index = target_index


class _CompiledInl:
    """Probe layout for one (twig, outer-branch) INL plan, built once."""

    __slots__ = ("others", "output_pos", "trunk_head_pos", "trunk_probe", "trunk_last")

    def __init__(self, analysis: TwigAnalysis, outer_index: int) -> None:
        outer = analysis.paths[outer_index]
        outer_columns = {node: i for i, node in enumerate(outer.needed_nodes)}
        output = analysis.output
        self.output_pos = outer_columns.get(output)
        output_on_outer = self.output_pos is not None
        others: list[_InlOther] = []
        for index, other in enumerate(analysis.paths):
            if index == outer_index:
                continue
            head_node = analysis.trunk_common_node(
                outer.join_point, other.join_point
            )
            below = subpath_below(other.query.nodes, head_node)
            probe = _ProbeSpec(below, other.query.value)
            extract = other.contains_output and not output_on_outer
            target_index = None
            if extract:
                for position, node in enumerate(below):
                    if node is output:
                        target_index = position
                        break
            others.append(
                _InlOther(outer_columns[head_node], probe, extract, target_index)
            )
        self.others = others
        self.trunk_head_pos = outer_columns[outer.join_point]
        trunk_below = tuple(
            analysis.trunk_nodes_between(
                outer.join_point, output, inclusive_lower=True
            )
        )
        self.trunk_last = len(trunk_below) - 1
        self.trunk_probe = _ProbeSpec(trunk_below, None) if trunk_below else None


# ----------------------------------------------------------------------
# Edge table
# ----------------------------------------------------------------------
class EdgeStrategy(EvaluationStrategy):
    """Per-step joins through the Edge table's link and value indices."""

    name = "edge"
    required_indexes = ("edge",)

    @property
    def index(self) -> EdgeIndex:
        return self.indexes["edge"]  # type: ignore[return-value]

    def _branch_rows(self, analysis: TwigAnalysis, path: AnalyzedPath) -> list[tuple]:
        query = path.query
        leaf = query.leaf
        if query.value is not None:
            candidates = self.index.nodes_with_value(leaf.label, query.value)
        else:
            candidates = self.index.nodes_with_label(leaf.label)
        needed_positions = self._needed_positions(path)
        rows: list[tuple] = []
        for candidate in candidates:
            for assignment in self._walk_up(query, candidate):
                rows.append(tuple(assignment[p] for p in needed_positions))
        return rows

    def _walk_up(self, query: PathQuery, leaf_id: int) -> list[dict[int, int]]:
        """All upward placements of the path pattern ending at ``leaf_id``.

        Every parent/ancestor step is a probe of the backward-link index
        — the per-step join cost of the Edge approach.
        """
        nodes = query.nodes
        results: list[dict[int, int]] = []

        def recurse(position: int, node_id: int, assignment: dict[int, int]) -> None:
            if position == 0:
                if query.pattern.anchored:
                    self.stats.join_probes += 1
                    parent = self.index.parent_of(node_id)
                    if parent is not None and parent[0] != VIRTUAL_ROOT_ID:
                        return
                results.append(dict(assignment))
                return
            twig_node = nodes[position]
            expected = nodes[position - 1].label
            if twig_node.axis is Axis.CHILD:
                self.stats.join_probes += 1
                parent = self.index.parent_of(node_id)
                if parent is None or parent[1] != expected:
                    return
                assignment[position - 1] = parent[0]
                recurse(position - 1, parent[0], assignment)
            else:
                for ancestor_id, ancestor_label in self.index.ancestors_of(node_id):
                    self.stats.join_probes += 1
                    if ancestor_label == expected:
                        assignment[position - 1] = ancestor_id
                        recurse(position - 1, ancestor_id, dict(assignment))

        recurse(len(nodes) - 1, leaf_id, {len(nodes) - 1: leaf_id})
        return results


# ----------------------------------------------------------------------
# DataGuide + Edge
# ----------------------------------------------------------------------
class DataGuidePlusEdgeStrategy(EvaluationStrategy):
    """DataGuide for the schema path, value index for the value, Edge walk-ups."""

    name = "dataguide_edge"
    required_indexes = ("dataguide", "edge")

    @property
    def dataguide(self) -> DataGuideIndex:
        return self.indexes["dataguide"]  # type: ignore[return-value]

    @property
    def edge(self) -> EdgeIndex:
        return self.indexes["edge"]  # type: ignore[return-value]

    def _branch_rows(self, analysis: TwigAnalysis, path: AnalyzedPath) -> list[tuple]:
        query = path.query
        needed_positions = self._needed_positions(path)
        rows: list[tuple] = []
        value_ids: Optional[set[int]] = None
        if query.value is not None:
            value_ids = set(self.edge.nodes_with_value(query.leaf.label, query.value))
        for schema_path in self.dataguide.paths_matching(query.pattern):
            path_ids = self.dataguide.lookup_path(schema_path)
            if value_ids is not None:
                # Join the DataGuide result with the value-index result.
                self.stats.join_probes += len(path_ids)
                candidates = [i for i in path_ids if i in value_ids]
            else:
                candidates = path_ids
            placements = match_positions(query.pattern, schema_path)
            for candidate in candidates:
                ids = self._collect_path_ids(candidate, len(schema_path))
                if ids is None:
                    continue
                for placement in placements:
                    rows.append(tuple(ids[placement[p]] for p in needed_positions))
        return rows

    def _collect_path_ids(self, leaf_id: int, length: int) -> Optional[list[int]]:
        """Walk the backward links to materialise the ids along the path."""
        ids = [0] * length
        ids[-1] = leaf_id
        current = leaf_id
        for position in range(length - 2, -1, -1):
            self.stats.join_probes += 1
            parent = self.edge.parent_of(current)
            if parent is None:
                return None
            ids[position] = parent[0]
            current = parent[0]
        return ids


# ----------------------------------------------------------------------
# Index Fabric + Edge
# ----------------------------------------------------------------------
class IndexFabricPlusEdgeStrategy(DataGuidePlusEdgeStrategy):
    """Index Fabric for valued root-to-leaf paths, Edge for everything else."""

    name = "index_fabric_edge"
    required_indexes = ("index_fabric", "edge")

    @property
    def fabric(self) -> IndexFabricIndex:
        return self.indexes["index_fabric"]  # type: ignore[return-value]

    @property
    def edge(self) -> EdgeIndex:
        return self.indexes["edge"]  # type: ignore[return-value]

    def _branch_rows(self, analysis: TwigAnalysis, path: AnalyzedPath) -> list[tuple]:
        query = path.query
        needed_positions = self._needed_positions(path)
        if query.value is None:
            # The fabric only stores root-to-leaf paths with values; fall
            # back to the Edge-style evaluation for structural branches.
            return self._edge_fallback(analysis, path)
        rows: list[tuple] = []
        for schema_path in self.fabric.paths_matching(query.pattern):
            candidates = self.fabric.lookup(schema_path, query.value)
            placements = match_positions(query.pattern, schema_path)
            for candidate in candidates:
                ids = self._collect_path_ids(candidate, len(schema_path))
                if ids is None:
                    continue
                for placement in placements:
                    rows.append(tuple(ids[placement[p]] for p in needed_positions))
        return rows

    def _edge_fallback(self, analysis: TwigAnalysis, path: AnalyzedPath) -> list[tuple]:
        edge_strategy = EdgeStrategy(self.db, {"edge": self.edge}, stats=self.stats)
        return edge_strategy._branch_rows(analysis, path)


# ----------------------------------------------------------------------
# Access Support Relations
# ----------------------------------------------------------------------
class AccessSupportRelationsStrategy(EvaluationStrategy):
    """One relation access per schema path matching each branch."""

    name = "asr"
    required_indexes = ("asr",)

    @property
    def index(self) -> AccessSupportRelationsIndex:
        return self.indexes["asr"]  # type: ignore[return-value]

    def _branch_rows(self, analysis: TwigAnalysis, path: AnalyzedPath) -> list[tuple]:
        query = path.query
        needed_positions = self._needed_positions(path)
        rows: list[tuple] = []
        for relation in self.index.relations_matching(query.pattern):
            if query.value is not None:
                stored_rows = relation.rows_with_value(query.value)
            else:
                stored_rows = [row for row in relation.scan() if row[-1] is None]
            placements = match_positions(query.pattern, relation.path)
            for stored in stored_rows:
                ids = stored[:-1]
                for placement in placements:
                    rows.append(tuple(ids[placement[p]] for p in needed_positions))
        return rows


# ----------------------------------------------------------------------
# Join Indices
# ----------------------------------------------------------------------
class JoinIndicesStrategy(EvaluationStrategy):
    """Compose per-path binary join indices to recover branch points."""

    name = "join_index"
    required_indexes = ("join_index",)

    @property
    def index(self) -> JoinIndicesIndex:
        return self.indexes["join_index"]  # type: ignore[return-value]

    def _branch_rows(self, analysis: TwigAnalysis, path: AnalyzedPath) -> list[tuple]:
        query = path.query
        needed = list(path.needed_nodes)
        # Anchor chain: root element, each needed node, and the leaf.
        anchors: list[TwigNode] = []
        for node in query.nodes:
            if node in needed or node is query.leaf or node is query.nodes[0]:
                if node not in anchors:
                    anchors.append(node)
        # Pairs per consecutive anchor segment, then hash-join them.
        assignments: Optional[list[dict[int, int]]] = None
        for upper, lower in zip(anchors, anchors[1:]):
            pairs = self._segment_pairs(query, upper, lower)
            upper_key = query.position_of(upper)
            lower_key = query.position_of(lower)
            if assignments is None:
                assignments = [{upper_key: h, lower_key: t} for h, t in pairs]
                continue
            by_head: dict[int, list[int]] = {}
            for head, tail in pairs:
                by_head.setdefault(head, []).append(tail)
            extended: list[dict[int, int]] = []
            for assignment in assignments:
                self.stats.join_probes += 1
                for tail in by_head.get(assignment[upper_key], ()):
                    new_assignment = dict(assignment)
                    new_assignment[lower_key] = tail
                    extended.append(new_assignment)
            assignments = extended
        if assignments is None:
            # Single-node path (for example ``//section`` or ``/site``):
            # there is no two-ended subpath to look up, so derive the ids
            # from the tails of relations whose path ends at that label.
            return self._single_node_rows(query, path)
        # Root anchoring: the first anchor must be a document root when the
        # twig is absolute; join-index heads for rooted relations are
        # document roots by construction, so nothing further is needed.
        needed_positions = self._needed_positions(path)
        rows = []
        for assignment in assignments:
            row = tuple(assignment.get(p) for p in needed_positions)
            if any(value is None for value in row):
                continue
            rows.append(row)
        return rows

    def _single_node_rows(self, query: PathQuery, path: AnalyzedPath) -> list[tuple]:
        """Ids for a one-node path, recovered from relation endpoints.

        For ``//label`` the ids are the tails of every relation whose
        path ends at ``label``; for an absolute ``/label`` they are the
        heads of relations starting at ``label``, restricted to document
        roots.  A value condition is applied through the backward
        (value-keyed) trees.
        """
        label = query.leaf.label
        ids: set[int] = set()
        if query.pattern.anchored:
            # The length-1 relation ``(label,)`` holds every node with
            # that label as a (node, node) pair — including roots with no
            # structural descendants, which never appear as the head of a
            # two-ended relation.
            root_ids = {doc.root.node_id for doc in self.db.documents}
            relation = self.index.relations.get((label,))
            if relation is not None:
                self.stats.heap_page_reads += self.index.RELATION_OPEN_COST
                for head, _tail in relation.backward_pairs_for_value(None):
                    if head in root_ids:
                        if query.value is None or self.db.node(head).first_value() == query.value:
                            ids.add(head)
        else:
            tail_pattern = PathPattern(((label,),), anchored=False)
            for relation in self.index.relations_matching(tail_pattern):
                for _head, tail in relation.backward_pairs_for_value(query.value):
                    ids.add(tail)
        return [(identifier,) * len(path.needed_nodes) for identifier in sorted(ids)]

    def _segment_pairs(
        self, query: PathQuery, upper: TwigNode, lower: TwigNode
    ) -> list[tuple[int, int]]:
        """(upper id, lower id) pairs for the path segment between two anchors.

        The relation paths consulted must *start* at the upper anchor's
        label (join-index heads are the path starts), so the pattern is
        always matched anchored at the relation path's beginning.  When
        the segment starts at the twig root of an absolute query, heads
        are additionally restricted to document roots.
        """
        nodes = query.nodes
        start = query.position_of(upper)
        end = query.position_of(lower)
        segment_nodes = nodes[start : end + 1]
        segments, _anchored = split_segments(segment_nodes)
        pattern = PathPattern(segments, anchored=True)
        value = query.value if lower is query.leaf else None
        pairs: list[tuple[int, int]] = []
        for relation in self.index.relations_matching(pattern):
            pairs.extend(relation.backward_pairs_for_value(value))
        if start == 0 and query.pattern.anchored:
            root_ids = {doc.root.node_id for doc in self.db.documents}
            pairs = [pair for pair in pairs if pair[0] in root_ids]
        return pairs
