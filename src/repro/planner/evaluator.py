"""The twig query engine: strategy registry, execution and measurement.

:class:`TwigQueryEngine` owns a database, the indices built over it and
a stats collector.  It maps strategy names to
:class:`~repro.planner.strategies.EvaluationStrategy` instances,
building missing indices on demand, and returns
:class:`QueryResult` objects that carry both the answer and the logical
cost of producing it — the measurements every benchmark reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from ..errors import PlanningError
from ..obs.clock import now as _now
from ..indexes import INDEX_TYPES, PathIndex
from ..query.match import NaiveMatcher
from ..query.parser import parse_xpath
from ..query.twig import TwigPattern
from ..storage.stats import StatsCollector, weighted_cost
from ..xmltree.document import Document, XmlDatabase
from .strategies import (
    AccessSupportRelationsStrategy,
    DataGuidePlusEdgeStrategy,
    DataPathsStrategy,
    EdgeStrategy,
    EvaluationStrategy,
    IndexFabricPlusEdgeStrategy,
    JoinIndicesStrategy,
    RootPathsStrategy,
)

#: Strategy name -> (strategy class, index names it requires).
STRATEGY_TYPES: dict[str, type[EvaluationStrategy]] = {
    RootPathsStrategy.name: RootPathsStrategy,
    DataPathsStrategy.name: DataPathsStrategy,
    EdgeStrategy.name: EdgeStrategy,
    DataGuidePlusEdgeStrategy.name: DataGuidePlusEdgeStrategy,
    IndexFabricPlusEdgeStrategy.name: IndexFabricPlusEdgeStrategy,
    AccessSupportRelationsStrategy.name: AccessSupportRelationsStrategy,
    JoinIndicesStrategy.name: JoinIndicesStrategy,
}

#: Strategy names in the order the paper's figures list them.
DEFAULT_STRATEGIES = (
    "rootpaths",
    "datapaths",
    "edge",
    "dataguide_edge",
    "index_fabric_edge",
    "asr",
    "join_index",
)


@dataclass
class QueryResult:
    """The answer to one twig query plus its execution measurements."""

    strategy: str
    xpath: str
    ids: list[int]
    elapsed_seconds: float
    cost: dict[str, int] = field(default_factory=dict)
    #: True when the answer was served from a service-layer result cache
    #: (the cost counters then describe the original execution).
    cached: bool = False

    @property
    def cardinality(self) -> int:
        """Number of matching output nodes."""
        return len(self.ids)

    @property
    def logical_io(self) -> int:
        """B+-tree node reads plus heap page reads charged by the query."""
        return self.cost.get("btree_node_reads", 0) + self.cost.get("heap_page_reads", 0)

    @property
    def total_cost(self) -> int:
        """Weighted logical cost (the shared StatsCollector formula)."""
        return weighted_cost(self.cost)


class TwigQueryEngine:
    """Build indices over an :class:`XmlDatabase` and evaluate twig queries."""

    def __init__(
        self,
        db: XmlDatabase,
        stats: Optional[StatsCollector] = None,
        use_kernels: bool = True,
    ) -> None:
        self.db = db
        self.stats = stats if stats is not None else StatsCollector()
        #: Default for the strategies' columnar-kernel fast path; any
        #: :meth:`strategy` call can still override it per instance.
        self.use_kernels = bool(use_kernels)
        self.indexes: dict[str, PathIndex] = {}
        #: Options used for the most recent build of each index, replayed
        #: when an evicted index is rebuilt on demand (so ablation
        #: switches like ``store_full_idlist=False`` survive rebuilds).
        self.build_options: dict[str, dict[str, object]] = {}
        #: Monotonic count of index builds — a cheap change signal for
        #: the service layer's cache invalidation.
        self.build_count = 0
        #: Monotonic count of incremental maintenance passes (one per
        #: :meth:`add_document` with built indexes).  The service layer
        #: uses the distinction between this and ``build_count`` to keep
        #: plan caches across incremental updates while invalidating
        #: everything on rebuilds.
        self.update_count = 0

    # ------------------------------------------------------------------
    # Index management
    # ------------------------------------------------------------------
    def build_index(self, name: str, **options) -> PathIndex:
        """Build (or rebuild) one index by its short name.

        The options are recorded so a later on-demand rebuild (for
        example after the index was evicted) reuses them instead of
        silently reverting to defaults.
        """
        try:
            index_class = INDEX_TYPES[name]
        except KeyError:
            raise PlanningError(
                f"unknown index {name!r}; known: {sorted(INDEX_TYPES)}"
            ) from None
        index = index_class(stats=self.stats, **options)
        index.build(self.db)
        self.indexes[name] = index
        self.build_options[name] = dict(options)
        self.build_count += 1
        return index

    def build_indexes(self, names: Sequence[str]) -> None:
        """Build several indices."""
        for name in names:
            self.build_index(name)

    def ensure_indexes_for(self, strategy_name: str) -> None:
        """Build whatever indices the strategy needs and are missing.

        Missing indices are (re)built with the options recorded by their
        last explicit :meth:`build_index` call, defaults otherwise.
        """
        strategy_class = self._strategy_class(strategy_name)
        for index_name in strategy_class.required_indexes:
            if index_name not in self.indexes:
                self.build_index(index_name, **self.build_options.get(index_name, {}))

    def index_sizes_mb(self) -> dict[str, float]:
        """Sizes of every built index in MB (the Figure 9 row)."""
        return {name: index.estimated_size_mb() for name, index in self.indexes.items()}

    # ------------------------------------------------------------------
    # Document maintenance
    # ------------------------------------------------------------------
    def add_document(self, document: Document) -> Document:
        """Add a document and maintain every built index.

        The document is numbered into the database, then routed to each
        built index's :meth:`~repro.indexes.base.PathIndex.update` —
        incremental insertion where the index supports it, a full
        rebuild otherwise — so no index keeps answering from the
        pre-add snapshot.  The write work is charged to the shared
        stats collector in the maintenance-cost currency
        (:func:`~repro.storage.stats.maintenance_cost`).
        """
        added = self.db.add_document(document)
        self.maintain_indexes(added)
        return added

    def remove_document(self, ref: Union[Document, str]) -> Document:
        """Remove a document (by object or unique name), maintaining indexes.

        The database detaches the document and reclaims its node-id
        span and tag refcounts
        (:meth:`~repro.xmltree.document.XmlDatabase.remove_document`);
        every built index then forgets it through
        :meth:`~repro.indexes.base.PathIndex.remove` — incremental
        deletion for ROOTPATHS, DATAPATHS, Edge and DataGuide, a full
        rebuild over the remaining documents for the rest.  Delete work
        is charged in the same maintenance-cost currency as adds.
        Returns the detached document.
        """
        removed = self.db.remove_document(ref)
        self.maintain_indexes(removed, removal=True)
        return removed

    def replace_document(
        self, ref: Union[Document, str], replacement: Document
    ) -> Document:
        """Replace one document: remove ``ref``, add ``replacement``.

        The replacement is numbered at the current id watermark (fresh
        ids), exactly as a remove followed by an add — which is what
        this is, through the same maintenance dispatcher both times.
        Returns the added replacement.
        """
        self.remove_document(ref)
        return self.add_document(replacement)

    def maintain_indexes(
        self, document: Document, removal: bool = False
    ) -> dict[str, bool]:
        """The maintenance dispatcher: one document add or removal.

        Routes the mutation to every built index —
        :meth:`~repro.indexes.base.PathIndex.update` for adds,
        :meth:`~repro.indexes.base.PathIndex.remove` for removals — and
        returns a map of index name to whether it was maintained
        incrementally (``True``) or fell back to a full rebuild
        (``False``).  Bumps :attr:`update_count` so service-layer
        generations notice the change even when the facade is bypassed.
        """
        maintained = {}
        for name in sorted(self.indexes):
            index = self.indexes[name]
            if removal:
                index.remove(self.db, document)
                maintained[name] = index.incremental_removal
            else:
                index.update(self.db, document)
                maintained[name] = index.incremental
        self.update_count += 1
        return maintained

    # ------------------------------------------------------------------
    # Query execution
    # ------------------------------------------------------------------
    def strategy(self, name: str, **options) -> EvaluationStrategy:
        """Instantiate a strategy, building its required indices if needed."""
        self.ensure_indexes_for(name)
        strategy_class = self._strategy_class(name)
        options.setdefault("use_kernels", self.use_kernels)
        return strategy_class(self.db, self.indexes, stats=self.stats, **options)

    def execute(
        self,
        query: Union[str, TwigPattern],
        strategy: str = "rootpaths",
        **strategy_options,
    ) -> QueryResult:
        """Evaluate a twig query with the given strategy.

        ``query`` is either an XPath-subset string or an already parsed
        :class:`TwigPattern`.
        """
        twig = parse_xpath(query) if isinstance(query, str) else query
        xpath = query if isinstance(query, str) else twig.to_xpath()
        runner = self.strategy(strategy, **strategy_options)
        return self.execute_prepared(runner, twig, xpath=xpath)

    def execute_prepared(
        self,
        runner: EvaluationStrategy,
        twig: TwigPattern,
        xpath: Optional[str] = None,
    ) -> QueryResult:
        """Evaluate an already-parsed twig with an existing strategy instance.

        This is the measurement core of :meth:`execute`; the service
        layer calls it directly to reuse cached twigs and per-strategy
        instances across queries.
        """
        before = self.stats.snapshot()
        started = _now()
        ids = runner.evaluate(twig)
        elapsed = _now() - started
        cost = self.stats.diff(before)
        return QueryResult(
            strategy=runner.name,
            xpath=xpath if xpath is not None else twig.to_xpath(),
            ids=ids,
            elapsed_seconds=elapsed,
            cost=cost,
        )

    def execute_all(
        self,
        query: Union[str, TwigPattern],
        strategies: Sequence[str] = DEFAULT_STRATEGIES,
    ) -> dict[str, QueryResult]:
        """Run one query under several strategies (a figure's data points)."""
        return {name: self.execute(query, strategy=name) for name in strategies}

    def oracle_ids(self, query: Union[str, TwigPattern]) -> list[int]:
        """Ground-truth answer from the naive matcher (no index involved)."""
        twig = parse_xpath(query) if isinstance(query, str) else query
        return NaiveMatcher(self.db).match_ids(twig)

    # ------------------------------------------------------------------
    @staticmethod
    def _strategy_class(name: str) -> type[EvaluationStrategy]:
        try:
            return STRATEGY_TYPES[name]
        except KeyError:
            raise PlanningError(
                f"unknown strategy {name!r}; known: {sorted(STRATEGY_TYPES)}"
            ) from None
