"""Twig evaluation plans: analysis, joining, strategies, plan choice, engine."""

from .analysis import AnalyzedPath, TwigAnalysis, split_segments, subpath_below
from .evaluator import (
    DEFAULT_STRATEGIES,
    QueryResult,
    STRATEGY_TYPES,
    TwigQueryEngine,
)
from .joiner import BranchRelation, build_join_plan, join_branches
from .optimizer import (
    AUTO_CANDIDATES,
    DataPathsPlanChoice,
    PROBE_COST,
    StrategyChoice,
    choose_datapaths_plan,
    choose_strategy,
    estimate_branch_cardinalities,
    estimate_strategy_costs,
)
from .strategies import (
    AccessSupportRelationsStrategy,
    DataGuidePlusEdgeStrategy,
    DataPathsStrategy,
    EdgeStrategy,
    EvaluationStrategy,
    IndexFabricPlusEdgeStrategy,
    JoinIndicesStrategy,
    RootPathsStrategy,
)

__all__ = [
    "AUTO_CANDIDATES",
    "AccessSupportRelationsStrategy",
    "AnalyzedPath",
    "BranchRelation",
    "DEFAULT_STRATEGIES",
    "DataGuidePlusEdgeStrategy",
    "DataPathsPlanChoice",
    "DataPathsStrategy",
    "EdgeStrategy",
    "EvaluationStrategy",
    "IndexFabricPlusEdgeStrategy",
    "JoinIndicesStrategy",
    "PROBE_COST",
    "QueryResult",
    "RootPathsStrategy",
    "STRATEGY_TYPES",
    "StrategyChoice",
    "TwigAnalysis",
    "TwigQueryEngine",
    "build_join_plan",
    "choose_datapaths_plan",
    "choose_strategy",
    "estimate_branch_cardinalities",
    "estimate_strategy_costs",
    "join_branches",
    "split_segments",
    "subpath_below",
]
