"""Lossy compression schemes for ROOTPATHS and DATAPATHS (Section 4).

Three schemes from the paper are modelled:

* **IdList differential encoding** (lossless, Section 4.1) lives in
  :mod:`repro.paths.idlist` and is applied by default when indices
  estimate their size.
* **SchemaPath dictionary compression** (lossy, Section 4.2):
  :class:`SchemaPathDictionary` replaces each distinct schema path with
  a small integer id.  The resulting index can no longer answer
  patterns with a leading ``//`` because the id is indivisible.
* **HeadId pruning** (lossy, Section 4.3): :class:`HeadIdPruner` keeps
  only DATAPATHS rows whose head corresponds to a branch point of some
  query in a known workload, shrinking the index at the cost of
  disabling index-nested-loop joins for out-of-workload branch points.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from .schema_paths import LabelPath


class SchemaPathDictionary:
    """Dictionary-encodes whole schema paths as integer ids (Section 4.2)."""

    def __init__(self) -> None:
        self._path_to_id: dict[LabelPath, int] = {}
        self._id_to_path: list[LabelPath] = []

    def __len__(self) -> int:
        return len(self._id_to_path)

    def __contains__(self, path: Sequence[str]) -> bool:
        return tuple(path) in self._path_to_id

    def intern(self, path: Sequence[str]) -> int:
        """Return the id for ``path``, assigning one if unseen."""
        key = tuple(path)
        path_id = self._path_to_id.get(key)
        if path_id is None:
            self._id_to_path.append(key)
            path_id = len(self._id_to_path)
            self._path_to_id[key] = path_id
        return path_id

    def id_of(self, path: Sequence[str]) -> Optional[int]:
        """Id of ``path`` or ``None`` when the exact path never occurs."""
        return self._path_to_id.get(tuple(path))

    def path_of(self, path_id: int) -> LabelPath:
        """The schema path for an id."""
        return self._id_to_path[path_id - 1]

    def estimated_size_bytes(self) -> int:
        """Space of the dictionary itself (id + label bytes per entry)."""
        return sum(4 + sum(len(label) + 1 for label in path) for path in self._id_to_path)


class HeadIdPruner:
    """Workload-driven pruning of DATAPATHS heads (Section 4.3).

    The pruner is configured with the set of *branch-point labels* of a
    workload (for example ``{"site", "open_auction", "item"}``).  A
    DATAPATHS row is kept when its head node carries one of those
    labels or is the virtual root (the rows solving the FreeIndex
    problem are always kept).
    """

    def __init__(self, branch_point_labels: Iterable[str]) -> None:
        self.branch_point_labels = frozenset(branch_point_labels)

    @classmethod
    def from_workload(cls, twigs: Iterable) -> "HeadIdPruner":
        """Build a pruner from an iterable of parsed twig patterns.

        Rows are kept for heads that can serve as BoundIndex probe points
        for the workload: the twig roots, the branching nodes, and — for
        branching twigs — each root-to-leaf path's *join point* (its
        deepest node on the output path), which is where the
        index-nested-loop plans of Section 5.2.3 anchor their probes.
        """
        labels: set[str] = set()
        for twig in twigs:
            labels.add(twig.root.label)
            for node in twig.iter_nodes():
                if len(node.children) > 1:
                    labels.add(node.label)
            leaves = [n for n in twig.iter_nodes() if not n.children]
            if len(leaves) <= 1:
                continue
            trunk = {id(n) for n in twig.output_path()}
            for leaf in leaves:
                join_point = twig.root
                for node in leaf.path_from_root():
                    if id(node) in trunk:
                        join_point = node
                labels.add(join_point.label)
        return cls(labels)

    def keeps_label(self, label: str) -> bool:
        """True when rows headed at nodes with ``label`` are retained."""
        return label in self.branch_point_labels

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HeadIdPruner({sorted(self.branch_point_labels)!r})"
