"""Data-path encoding: schema paths, the 4-ary relation, IdLists, compression.

Implements Section 3.1 (the unified relational representation of data
paths that defines the index family) and Section 4 (lossless and lossy
compression of IdLists, SchemaPaths and HeadIds).
"""

from .compression import HeadIdPruner, SchemaPathDictionary
from .fourary import (
    PathRow,
    count_datapaths_rows,
    count_rootpaths_rows,
    distinct_schema_paths,
    iter_datapaths_rows,
    iter_rootpaths_rows,
)
from .idlist import (
    compression_ratio,
    decode_deltas,
    encode_deltas,
    encoded_size_bytes,
    present_ids,
    prune_idlist,
    raw_size_bytes,
    varint_size,
)
from .schema_paths import (
    LabelPath,
    PathPattern,
    iter_rooted_label_paths,
    match_positions,
    matches,
    matching_schema_paths,
    render_designators,
    reverse_path,
)

__all__ = [
    "HeadIdPruner",
    "LabelPath",
    "PathPattern",
    "PathRow",
    "SchemaPathDictionary",
    "compression_ratio",
    "count_datapaths_rows",
    "count_rootpaths_rows",
    "decode_deltas",
    "distinct_schema_paths",
    "encode_deltas",
    "encoded_size_bytes",
    "iter_datapaths_rows",
    "iter_rooted_label_paths",
    "iter_rootpaths_rows",
    "match_positions",
    "matches",
    "matching_schema_paths",
    "present_ids",
    "prune_idlist",
    "raw_size_bytes",
    "render_designators",
    "reverse_path",
    "varint_size",
]
