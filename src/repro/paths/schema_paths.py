"""Schema paths: label sequences, reversal, rendering and pattern matching.

A *schema path* (Section 3.1) is the sequence of element tags and
attribute names along a data path, excluding leaf values.  The library
represents a schema path as a tuple of label strings; the storage layer
encodes labels as tag ids when building B+-tree keys and the
:class:`~repro.xmltree.dictionary.TagDictionary` renders them as the
paper's one-character designators for display.

The module also implements matching of *segmented* path patterns
(PCsubpath segments separated by ``//``) against concrete label paths,
including the enumeration of every possible placement.  This matcher is
shared by the ROOTPATHS/DATAPATHS strategies (to verify the part of a
twig path above the last ``//`` and to locate branch-point positions in
IdLists), by the DataGuide, ASR and Join-Index strategies (to find the
schema paths a recursive pattern matches), and by the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

LabelPath = tuple[str, ...]


def reverse_path(path: Sequence[str]) -> LabelPath:
    """The reversed label path (``BUAF`` -> ``FAUB`` in the paper's figures)."""
    return tuple(reversed(tuple(path)))


def render_designators(path: Sequence[str], tags) -> str:
    """Render a label path with one-character designators (Figure 2 style)."""
    return tags.encode_path(path)


@dataclass(frozen=True)
class PathPattern:
    """A path pattern: label segments separated by descendant gaps.

    ``segments`` is a non-empty list of label tuples.  Consecutive
    segments are separated by an ancestor-descendant gap of one or more
    edges.  ``anchored`` means the first segment must start at the
    beginning of the label path (the document root); otherwise the first
    segment may start anywhere (a leading ``//``).  The final segment is
    always anchored at the end of the label path by construction of the
    callers (patterns are matched against paths that end at the node of
    interest).
    """

    segments: tuple[LabelPath, ...]
    anchored: bool = True

    def __post_init__(self) -> None:
        if not self.segments or any(not s for s in self.segments):
            raise ValueError("PathPattern requires non-empty segments")

    @property
    def labels(self) -> LabelPath:
        """All labels of the pattern in order (ignoring gaps)."""
        return tuple(label for segment in self.segments for label in segment)

    @property
    def length(self) -> int:
        """Number of labels in the pattern."""
        return len(self.labels)

    @property
    def minimum_path_length(self) -> int:
        """Shortest label path that could match.

        The descendant axis includes direct children, so segments may be
        adjacent; the minimum is simply the number of pattern labels.
        """
        return self.length

    @property
    def is_single_segment(self) -> bool:
        """True when the pattern is a plain PCsubpath (no internal ``//``)."""
        return len(self.segments) == 1

    @property
    def trailing_segment(self) -> LabelPath:
        """The last segment — the part a reversed-schema-path prefix scan uses."""
        return self.segments[-1]


def match_positions(pattern: PathPattern, path: Sequence[str]) -> list[tuple[int, ...]]:
    """Every placement of ``pattern`` in ``path`` that ends at the last label.

    A placement assigns an index in ``path`` to every pattern label such
    that segment labels are contiguous, segments appear in order with at
    least one edge between them, the first segment starts at index 0
    when the pattern is anchored, and the final segment ends at
    ``len(path) - 1``.

    Returns a list of tuples of path indexes, one tuple per placement
    (one index per pattern label, in pattern order).
    """
    path = tuple(path)
    if pattern.length > len(path):
        return []
    placements: list[tuple[int, ...]] = []
    _place(pattern.segments, 0, path, pattern.anchored, (), placements)
    return placements


def _place(
    segments: Sequence[LabelPath],
    segment_index: int,
    path: LabelPath,
    anchored: bool,
    acc: tuple[int, ...],
    out: list[tuple[int, ...]],
    start_at: int = 0,
) -> None:
    if segment_index == len(segments):
        # All segments placed; final segment must have ended at the path end.
        if acc and acc[-1] == len(path) - 1:
            out.append(acc)
        return
    segment = segments[segment_index]
    is_first = segment_index == 0
    is_last = segment_index == len(segments) - 1
    if is_first and anchored:
        candidate_starts = [0] if start_at == 0 else []
    elif is_last:
        # The last segment must end exactly at the path end.
        start = len(path) - len(segment)
        candidate_starts = [start] if start >= start_at else []
    else:
        candidate_starts = range(start_at, len(path) - len(segment) + 1)
    for start in candidate_starts:
        if start < start_at or start + len(segment) > len(path):
            continue
        if tuple(path[start : start + len(segment)]) != segment:
            continue
        positions = acc + tuple(range(start, start + len(segment)))
        # The descendant axis admits direct children, so the next segment
        # may begin immediately after this one.
        _place(
            segments,
            segment_index + 1,
            path,
            anchored,
            positions,
            out,
            start_at=start + len(segment),
        )


def matches(pattern: PathPattern, path: Sequence[str]) -> bool:
    """True when ``pattern`` has at least one placement in ``path``."""
    return bool(match_positions(pattern, path))


def matching_schema_paths(
    pattern: PathPattern, schema_paths: Sequence[Sequence[str]]
) -> list[LabelPath]:
    """The subset of ``schema_paths`` the pattern matches.

    Used by DataGuide / ASR / Join-Index strategies to decide which
    per-path structures a recursive (``//``) query must visit — the
    paper's Section 5.2.6 observation that those approaches touch one
    relation per matching subpath.
    """
    return [tuple(p) for p in schema_paths if matches(pattern, tuple(p))]


def iter_rooted_label_paths(db) -> Iterator[tuple[LabelPath, tuple[int, ...]]]:
    """Yield ``(labels, ids)`` for the root-to-node path of every structural node.

    The virtual root is excluded from both tuples; ids are document-order
    node ids, labels are tags/attribute names.
    """
    for document in db.documents:
        stack: list[tuple] = [(document.root, (document.root.label,), (document.root.node_id,))]
        while stack:
            node, labels, ids = stack.pop()
            yield labels, ids
            for child in reversed(node.structural_children()):
                stack.append((child, labels + (child.label,), ids + (child.node_id,)))
