"""Enumeration of the 4-ary relational representation of data paths.

Section 3.1 represents every data path of the XML database as a row
``(HeadId, SchemaPath, LeafValue, IdList)``:

* ``HeadId`` — id of the node the data path starts at,
* ``SchemaPath`` — the label sequence along the path (head label included),
* ``LeafValue`` — the string value when the path is extended to a leaf,
  else ``NULL``,
* ``IdList`` — the node ids along the path *excluding* the head
  (Figure 2), or — in the ROOTPATHS adaptation where the head column is
  dropped — including the root (Figure 4).

This module provides generators for both adaptations:

* :func:`iter_rootpaths_rows` — rows for root-to-node path prefixes
  (Figure 4), used by ROOTPATHS, DataGuide, Index Fabric, ASR and the
  Join-Index baselines,
* :func:`iter_datapaths_rows` — rows for *all* subpaths, one per
  (ancestor-or-self head, node) pair (Figure 5), used by DATAPATHS.

Each yielded :class:`PathRow` carries the forward schema path; callers
reverse it when building keys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from ..xmltree.document import Document, VIRTUAL_ROOT_ID, XmlDatabase
from ..xmltree.nodes import Node
from .schema_paths import LabelPath


@dataclass(frozen=True)
class PathRow:
    """One row of the 4-ary relation (forward schema path)."""

    head_id: int
    schema_path: LabelPath
    leaf_value: Optional[str]
    id_list: tuple[int, ...]

    @property
    def tail_id(self) -> int:
        """Id of the last node on the path (the node the row describes)."""
        return self.id_list[-1] if self.id_list else self.head_id


def iter_rootpaths_rows(
    db: XmlDatabase,
    include_values: bool = True,
    documents: Optional[Sequence[Document]] = None,
) -> Iterator[PathRow]:
    """Rows for every root-to-node path prefix (Figure 4 adaptation).

    ``HeadId`` is the virtual root for every row (and therefore not
    interesting); ``IdList`` contains the full path from the document
    root down to the node.  For each node with value children a second
    row per distinct value is emitted with ``LeafValue`` set.

    ``documents`` restricts enumeration to a subset of the database's
    documents — incremental index maintenance enumerates only the rows
    a newly added document contributes.
    """
    for document in db.documents if documents is None else documents:
        stack: list[tuple[Node, LabelPath, tuple[int, ...]]] = [
            (document.root, (document.root.label,), (document.root.node_id,))
        ]
        while stack:
            node, labels, ids = stack.pop()
            yield PathRow(VIRTUAL_ROOT_ID, labels, None, ids)
            if include_values:
                for value in _node_values(node):
                    yield PathRow(VIRTUAL_ROOT_ID, labels, value, ids)
            for child in reversed(node.structural_children()):
                stack.append(
                    (child, labels + (child.label,), ids + (child.node_id,))
                )


def iter_datapaths_rows(
    db: XmlDatabase,
    include_values: bool = True,
    documents: Optional[Sequence[Document]] = None,
) -> Iterator[PathRow]:
    """Rows for every subpath of every root-to-leaf path (Figure 5).

    For every structural node ``d`` and every ancestor-or-self head
    ``h`` of ``d``, one row is emitted whose schema path runs from ``h``
    to ``d`` (head label included) and whose IdList contains the ids
    strictly below ``h`` down to ``d``.  Additionally, rows with the
    virtual root as head reproduce the ROOTPATHS rows so a single
    DATAPATHS index also solves the FreeIndex problem (Section 3.3,
    footnote 4).

    ``documents`` restricts enumeration to a subset of the database's
    documents (incremental maintenance), as for
    :func:`iter_rootpaths_rows`.
    """
    for document in db.documents if documents is None else documents:
        stack: list[tuple[Node, LabelPath, tuple[int, ...]]] = [
            (document.root, (document.root.label,), (document.root.node_id,))
        ]
        while stack:
            node, labels, ids = stack.pop()
            values = _node_values(node) if include_values else []
            # Head = virtual root: schema path from the document root.
            yield PathRow(VIRTUAL_ROOT_ID, labels, None, ids)
            for value in values:
                yield PathRow(VIRTUAL_ROOT_ID, labels, value, ids)
            # Heads at every ancestor-or-self position.
            for start in range(len(ids)):
                head_id = ids[start]
                sub_labels = labels[start:]
                sub_ids = ids[start + 1 :]
                yield PathRow(head_id, sub_labels, None, sub_ids)
                for value in values:
                    yield PathRow(head_id, sub_labels, value, sub_ids)
            for child in reversed(node.structural_children()):
                stack.append(
                    (child, labels + (child.label,), ids + (child.node_id,))
                )


def _node_values(node: Node) -> list[str]:
    """Distinct leaf values directly below ``node`` (usually zero or one)."""
    values: list[str] = []
    for child in node.children:
        if child.is_value and child.label not in values:
            values.append(child.label)
    return values


def count_rootpaths_rows(db: XmlDatabase) -> int:
    """Number of rows :func:`iter_rootpaths_rows` would yield."""
    return sum(1 for _ in iter_rootpaths_rows(db))


def count_datapaths_rows(db: XmlDatabase) -> int:
    """Number of rows :func:`iter_datapaths_rows` would yield."""
    return sum(1 for _ in iter_datapaths_rows(db))


def distinct_schema_paths(db: XmlDatabase) -> list[LabelPath]:
    """All distinct rooted schema paths in the database, in first-seen order.

    The paper cites 235 distinct schema paths for DBLP and 902 for
    XMark (Section 4.2); this is the path set the DataGuide, ASR and
    Join-Index structures enumerate.
    """
    seen: dict[LabelPath, None] = {}
    for row in iter_rootpaths_rows(db, include_values=False):
        seen.setdefault(row.schema_path, None)
    return list(seen)
