"""IdLists and their differential (delta) encoding.

The IdList column of the 4-ary relation holds the node identifiers
along a data path (Section 3.1).  Section 4.1 observes that, because
ids along a path are strongly correlated (they are assigned in
document order), storing each id as an offset from the previous one —
the differential encoding used by compressed IR inverted indices —
losslessly shrinks the column by roughly 30 %.

The encoding here is byte-oriented: each delta is stored as a
variable-length integer (7 bits per byte), so the byte counts reported
by :func:`encoded_size_bytes` drive the Figure 9 / Section 5.2.5 space
experiments.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

IdList = tuple[int, ...]


def present_ids(ids: Sequence[Optional[int]]) -> list[int]:
    """The ids actually stored in a (possibly pruned) IdList.

    Workload-based pruning (:func:`prune_idlist`) replaces eliminated
    positions with ``None`` NULLs, which occupy no id slot on disk.
    Every space computation must size IdLists through this filter so the
    Figure 9 numbers are consistent across the index family.
    """
    return [identifier for identifier in ids if identifier is not None]


def varint_size(value: int) -> int:
    """Bytes needed to store ``value`` as an unsigned 7-bit-per-byte varint."""
    if value < 0:
        # Deltas can be negative when a path jumps across subtrees; store
        # them zig-zag encoded (sign folded into the low bit).
        value = (-value << 1) | 1
    else:
        value <<= 1
    size = 1
    while value >= 0x80:
        value >>= 7
        size += 1
    return size


def encode_deltas(ids: Sequence[int]) -> list[int]:
    """The differential encoding of an id list: first id, then deltas."""
    ids = list(ids)
    if not ids:
        return []
    deltas = [ids[0]]
    for previous, current in zip(ids, ids[1:]):
        deltas.append(current - previous)
    return deltas


def decode_deltas(deltas: Sequence[int]) -> IdList:
    """Invert :func:`encode_deltas`."""
    if not deltas:
        return ()
    ids = [deltas[0]]
    for delta in deltas[1:]:
        ids.append(ids[-1] + delta)
    return tuple(ids)


def raw_size_bytes(ids: Sequence[int], bytes_per_id: int = 4) -> int:
    """Size of an uncompressed id list (fixed-width ids)."""
    return bytes_per_id * len(ids) + 1


def encoded_size_bytes(ids: Sequence[int]) -> int:
    """Size of the differentially encoded id list (varint deltas)."""
    return sum(varint_size(d) for d in encode_deltas(ids)) + 1


def compression_ratio(id_lists: Iterable[Sequence[int]]) -> float:
    """Overall compressed/raw size ratio across many id lists.

    The paper reports that lossless compression reduced index size by
    about 30 %, i.e. a ratio around 0.7 for the IdList column.
    """
    raw = 0
    compressed = 0
    for ids in id_lists:
        raw += raw_size_bytes(ids)
        compressed += encoded_size_bytes(ids)
    if raw == 0:
        return 1.0
    return compressed / raw


def prune_idlist(ids: Sequence[int], keep_positions: Sequence[int]) -> tuple:
    """Lossy workload-based pruning (Section 4.1).

    Positions not in ``keep_positions`` are replaced by ``None`` — the
    paper's "a node that is never returned ... and is not a branching
    point ... can be eliminated from the IdList (i.e., replaced by a
    NULL)".
    """
    keep = set(keep_positions)
    return tuple(node_id if i in keep else None for i, node_id in enumerate(ids))
