"""A seeded DBLP-like document generator.

The paper's second dataset is a 50 MB DBLP bibliography — a *shallow*
document (publications directly below the root, fields directly below
each publication) that contrasts with the deep XMark tree.  This module
synthesises a bibliography with the same shape and with year values in
the three selectivity classes of Figure 7:

* ``year = 1950`` — exactly one publication (highly selective, Q1d),
* ``year = 1979`` — a moderate share (Q2d),
* ``year = 1998`` — a large share (Q3d).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..xmltree.document import Document
from ..xmltree.nodes import Node, NodeKind

_FIRST_NAMES = ("Alice", "Bob", "Carol", "David", "Erika", "Frank", "Grace", "Henry")
_LAST_NAMES = ("Smith", "Jones", "Chen", "Gehrke", "Korn", "Koudas", "Miller", "Zhang")
_VENUES = ("SIGMOD", "VLDB", "ICDE", "PODS", "EDBT", "WebDB")


@dataclass(frozen=True)
class DblpConfig:
    """Knobs of the DBLP-like generator."""

    scale: float = 1.0
    seed: int = 19980507
    inproceedings: int = 2600
    articles: int = 1300

    def scaled(self, base: int) -> int:
        """A count scaled by the configured scale factor (at least 1)."""
        return max(1, int(round(base * self.scale)))


def generate_dblp(scale: float = 1.0, seed: int = 19980507, name: str = "dblp") -> Document:
    """Generate a DBLP-like bibliography at the given scale."""
    config = DblpConfig(scale=scale, seed=seed)
    return generate_dblp_from_config(config, name=name)


def generate_dblp_from_config(config: DblpConfig, name: str = "dblp") -> Document:
    """Generate a DBLP-like bibliography from an explicit configuration."""
    rng = random.Random(config.seed)
    root = Node(NodeKind.ELEMENT, "dblp")
    year_1950_planted = False
    for number in range(config.scaled(config.inproceedings)):
        entry = root.add_child(Node(NodeKind.ELEMENT, "inproceedings"))
        _attribute(entry, "key", f"conf/x/{number}")
        for _ in range(rng.randrange(1, 4)):
            _element(entry, "author", _person(rng))
        _element(entry, "title", f"Paper number {number} on XML twig matching")
        if not year_1950_planted:
            year = "1950"
            year_1950_planted = True
        else:
            roll = rng.random()
            if roll < 0.16:
                year = "1979"
            elif roll < 0.66:
                year = "1998"
            else:
                year = str(rng.randrange(1980, 1998))
        _element(entry, "year", year)
        _element(entry, "booktitle", rng.choice(_VENUES))
        _element(entry, "pages", f"{rng.randrange(1, 400)}-{rng.randrange(400, 800)}")
    for number in range(config.scaled(config.articles)):
        entry = root.add_child(Node(NodeKind.ELEMENT, "article"))
        _attribute(entry, "key", f"journals/x/{number}")
        for _ in range(rng.randrange(1, 3)):
            _element(entry, "author", _person(rng))
        _element(entry, "title", f"Journal paper {number} on path indexing")
        _element(entry, "year", str(rng.randrange(1985, 2004)))
        _element(entry, "journal", rng.choice(("TODS", "VLDBJ", "TKDE")))
        _element(entry, "volume", str(rng.randrange(1, 30)))
    return Document(root, name=name)


def _person(rng: random.Random) -> str:
    return f"{rng.choice(_FIRST_NAMES)} {rng.choice(_LAST_NAMES)}"


def _element(parent: Node, tag: str, value: str) -> Node:
    node = parent.add_child(Node(NodeKind.ELEMENT, tag))
    node.add_child(Node(NodeKind.VALUE, value))
    return node


def _attribute(parent: Node, name: str, value: str) -> Node:
    node = parent.add_child(Node(NodeKind.ATTRIBUTE, name))
    node.add_child(Node(NodeKind.VALUE, value))
    return node
