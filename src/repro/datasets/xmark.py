"""A seeded XMark-like document generator.

The paper evaluates on a 100 MB scaled XMark document — a deep,
auction-site schema.  The original generator (and a 100 MB file) is not
available offline, so this module synthesises a document with the same
element hierarchy the paper's workload touches and with value
distributions that reproduce the *selectivity classes* of Figures 7/8:

* ``/site/regions/<region>/item`` across the six XMark regions (so a
  recursive ``//item`` pattern matches six schema paths, the situation
  Section 5.2.6 analyses),
* ``item/quantity`` with one highly selective value (``5``), a
  moderately selective value (``2``) and an unselective value (``1``),
* ``people/person/profile/@income`` with a unique value
  (``46814.17``) and an unselective value (``9876.00``),
* one ``person/name`` equal to ``Hagen Artosi``,
* ``open_auction/@increase`` with a selective (``75.00``) and an
  unselective (``3.00``) value, ``bidder/@increase``,
  ``annotation/author/@person`` (three auctions carry
  ``person22082``), and a ``time`` child per auction,
* ``item/incategory/category`` with a selective ``category440``,
* ``item/location`` with both ``united states`` and ``United States``
  spellings (two different selectivities, as in Q7x vs Q14x),
* ``item/mailbox/mail/{date,to,from}``.

Absolute cardinalities scale linearly with ``scale``; the defaults keep
index construction fast on a laptop while preserving the ratios between
the selective / moderate / unselective classes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..xmltree.document import Document
from ..xmltree.nodes import Node, NodeKind


#: The six XMark regions; item volume is skewed towards namerica.
REGIONS = (
    ("namerica", 0.40),
    ("europe", 0.25),
    ("asia", 0.15),
    ("africa", 0.07),
    ("australia", 0.06),
    ("samerica", 0.07),
)


@dataclass(frozen=True)
class XMarkConfig:
    """Knobs of the XMark-like generator."""

    scale: float = 1.0
    seed: int = 20050405
    items: int = 1100
    persons: int = 500
    auctions: int = 650
    mails_per_item_max: int = 3
    categories: int = 120

    def scaled(self, base: int) -> int:
        """A count scaled by the configured scale factor (at least 1)."""
        return max(1, int(round(base * self.scale)))


def generate_xmark(
    scale: float = 1.0, seed: int = 20050405, name: str = "xmark"
) -> Document:
    """Generate an XMark-like document at the given scale."""
    config = XMarkConfig(scale=scale, seed=seed)
    return generate_xmark_from_config(config, name=name)


def generate_xmark_from_config(config: XMarkConfig, name: str = "xmark") -> Document:
    """Generate an XMark-like document from an explicit configuration."""
    rng = random.Random(config.seed)
    site = Node(NodeKind.ELEMENT, "site")
    _add_regions(site, config, rng)
    _add_people(site, config, rng)
    _add_open_auctions(site, config, rng)
    return Document(site, name=name)


# ----------------------------------------------------------------------
# Regions and items
# ----------------------------------------------------------------------
def _add_regions(site: Node, config: XMarkConfig, rng: random.Random) -> None:
    regions = site.add_child(Node(NodeKind.ELEMENT, "regions"))
    total_items = config.scaled(config.items)
    # Exact planted values for the highly selective predicates.
    quantity_five_planted = False
    category_440_target = max(1, int(round(total_items * 0.02)))
    category_440_emitted = 0
    item_number = 0
    for region_name, share in REGIONS:
        region = regions.add_child(Node(NodeKind.ELEMENT, region_name))
        region_items = max(1, int(round(total_items * share)))
        for _ in range(region_items):
            item_number += 1
            item = region.add_child(Node(NodeKind.ELEMENT, "item"))
            _element(item, "name", f"item {item_number}")
            # Quantity: one '5' in namerica, '2' moderate, '1' unselective.
            if region_name == "namerica" and not quantity_five_planted:
                quantity = "5"
                quantity_five_planted = True
            else:
                roll = rng.random()
                if roll < 0.28:
                    quantity = "2"
                elif roll < 0.83:
                    quantity = "1"
                else:
                    quantity = "3"
            _element(item, "quantity", quantity)
            # Location: two spellings with different selectivities.
            roll = rng.random()
            if roll < 0.30:
                location = "united states"
            elif roll < 0.72:
                location = "United States"
            elif roll < 0.85:
                location = "germany"
            else:
                location = "japan"
            _element(item, "location", location)
            _element(item, "payment", rng.choice(["Cash", "Creditcard", "Money order"]))
            incategory = item.add_child(Node(NodeKind.ELEMENT, "incategory"))
            if category_440_emitted < category_440_target and rng.random() < 0.05:
                category = "category440"
                category_440_emitted += 1
            else:
                category = f"category{rng.randrange(config.categories)}"
            _element(incategory, "category", category)
            mailbox = item.add_child(Node(NodeKind.ELEMENT, "mailbox"))
            for _mail_number in range(rng.randrange(config.mails_per_item_max + 1)):
                mail = mailbox.add_child(Node(NodeKind.ELEMENT, "mail"))
                _element(mail, "date", f"{rng.randrange(1, 29):02d}/{rng.randrange(1, 13):02d}/2000")
                _element(mail, "to", f"person{rng.randrange(config.scaled(config.persons))}")
                _element(mail, "from", f"person{rng.randrange(config.scaled(config.persons))}")


# ----------------------------------------------------------------------
# People
# ----------------------------------------------------------------------
def _add_people(site: Node, config: XMarkConfig, rng: random.Random) -> None:
    people = site.add_child(Node(NodeKind.ELEMENT, "people"))
    total_persons = config.scaled(config.persons)
    hagen_planted = False
    income_unique_planted = False
    for person_number in range(total_persons):
        person = people.add_child(Node(NodeKind.ELEMENT, "person"))
        _attribute(person, "id", f"person{person_number}")
        if not hagen_planted:
            name = "Hagen Artosi"
            hagen_planted = True
        else:
            name = f"Person {person_number}"
        _element(person, "name", name)
        _element(person, "emailaddress", f"mailto:person{person_number}@example.com")
        profile = person.add_child(Node(NodeKind.ELEMENT, "profile"))
        if not income_unique_planted:
            income = "46814.17"
            income_unique_planted = True
        elif rng.random() < 0.20:
            income = "9876.00"
        else:
            income = f"{rng.randrange(10_000, 99_999)}.{rng.randrange(10, 99)}"
        _attribute(profile, "income", income)
        _element(profile, "education", rng.choice(["High School", "College", "Graduate School"]))


# ----------------------------------------------------------------------
# Open auctions
# ----------------------------------------------------------------------
def _add_open_auctions(site: Node, config: XMarkConfig, rng: random.Random) -> None:
    open_auctions = site.add_child(Node(NodeKind.ELEMENT, "open_auctions"))
    total_auctions = config.scaled(config.auctions)
    total_persons = config.scaled(config.persons)
    person22082_target = min(3, total_auctions)
    person22082_emitted = 0
    for auction_number in range(total_auctions):
        auction = open_auctions.add_child(Node(NodeKind.ELEMENT, "open_auction"))
        # @increase on the auction: '75.00' selective, '3.00' unselective.
        roll = rng.random()
        if roll < 0.01:
            increase = "75.00"
        elif roll < 0.55:
            increase = "3.00"
        else:
            increase = "1.50"
        _attribute(auction, "increase", increase)
        _element(auction, "current", f"{rng.randrange(10, 500)}.00")
        bidder = auction.add_child(Node(NodeKind.ELEMENT, "bidder"))
        _attribute(bidder, "increase", "3.00" if rng.random() < 0.55 else "6.00")
        _element(bidder, "date", f"{rng.randrange(1, 29):02d}/{rng.randrange(1, 13):02d}/2001")
        annotation = auction.add_child(Node(NodeKind.ELEMENT, "annotation"))
        author = annotation.add_child(Node(NodeKind.ELEMENT, "author"))
        if person22082_emitted < person22082_target and (
            rng.random() < 0.01 or total_auctions - auction_number <= (
                person22082_target - person22082_emitted
            )
        ):
            _attribute(author, "person", "person22082")
            person22082_emitted += 1
        else:
            _attribute(author, "person", f"person{rng.randrange(total_persons)}")
        _element(annotation, "description", f"auction {auction_number}")
        _element(auction, "time", f"{rng.randrange(0, 24):02d}:{rng.randrange(0, 60):02d}")
        _element(auction, "itemref", f"item{rng.randrange(config.scaled(config.items))}")


# ----------------------------------------------------------------------
def _element(parent: Node, tag: str, value: str) -> Node:
    node = parent.add_child(Node(NodeKind.ELEMENT, tag))
    node.add_child(Node(NodeKind.VALUE, value))
    return node


def _attribute(parent: Node, name: str, value: str) -> Node:
    node = parent.add_child(Node(NodeKind.ATTRIBUTE, name))
    node.add_child(Node(NodeKind.VALUE, value))
    return node
