"""Datasets: the Figure 1 book, and seeded XMark-like / DBLP-like generators.

The paper's original 100 MB XMark and 50 MB DBLP documents are not
available offline; these generators produce documents with the same
schema paths and the same selectivity classes so that every workload
query exercises the code paths the paper measures (see DESIGN.md §4 for
the substitution rationale).
"""

from .books import BOOK_XML, FIGURE_1_QUERY, book_document, build_book_with_builder
from .dblp import DblpConfig, generate_dblp, generate_dblp_from_config
from .xmark import REGIONS, XMarkConfig, generate_xmark, generate_xmark_from_config

__all__ = [
    "BOOK_XML",
    "DblpConfig",
    "FIGURE_1_QUERY",
    "REGIONS",
    "XMarkConfig",
    "book_document",
    "build_book_with_builder",
    "generate_dblp",
    "generate_dblp_from_config",
    "generate_xmark",
    "generate_xmark_from_config",
]
