"""The running example of Figure 1: a small book document.

Used throughout the tests, the quickstart example and the docstrings.
The content mirrors Figure 1(a): a book titled "XML" with three
authors (jane poe, john doe, jane doe), a year, and a chapter with a
section.
"""

from __future__ import annotations

from ..xmltree.document import Document, TreeBuilder
from ..xmltree.parser import parse_string

BOOK_XML = """\
<book>
  <title>XML</title>
  <allauthors>
    <author><fn>jane</fn><ln>poe</ln></author>
    <author><fn>john</fn><ln>doe</ln></author>
    <author><fn>jane</fn><ln>doe</ln></author>
  </allauthors>
  <year>2000</year>
  <chapter>
    <title>XML</title>
    <section>
      <head>Origins</head>
    </section>
  </chapter>
</book>
"""

#: The twig pattern of Figure 1(c).
FIGURE_1_QUERY = "/book[title='XML']//author[fn='jane' and ln='doe']"


def book_document(name: str = "figure1-book") -> Document:
    """The Figure 1 document, parsed."""
    return parse_string(BOOK_XML, name=name)


def build_book_with_builder(name: str = "figure1-book") -> Document:
    """The same document constructed through :class:`TreeBuilder`.

    Exercises the programmatic construction path; tests assert it is
    structurally identical to the parsed version.
    """
    builder = TreeBuilder("book")
    builder.child("title", text="XML")
    with builder.element("allauthors"):
        for first, last in (("jane", "poe"), ("john", "doe"), ("jane", "doe")):
            with builder.element("author"):
                builder.child("fn", text=first)
                builder.child("ln", text=last)
    builder.child("year", text="2000")
    with builder.element("chapter"):
        builder.child("title", text="XML")
        with builder.element("section"):
            builder.child("head", text="Origins")
    return builder.build(name=name)
