"""Base classes and shared result types for the XML path index family.

Section 3.1 defines the family over the 4-ary relation
``(HeadId, SchemaPath, LeafValue, IdList)``: an index in the family
chooses (1) a subset of schema paths to store, (2) a sublist of the
IdList to return, and (3) which columns to index.  Figure 3 lists the
members; :class:`FamilyDescriptor` captures that row of the figure for
each implementation so the framework itself is inspectable at runtime.

Every concrete index implements :class:`PathIndex`:

* ``build(db)`` — construct the index from an :class:`XmlDatabase`,
* ``update(db, document)`` — absorb one newly added document; indexes
  that support true incremental insertion (ROOTPATHS, DATAPATHS, Edge,
  DataGuide) extend their structures in place, the rest fall back to a
  full rebuild (the default ``_update``),
* ``remove(db, document)`` — forget one just-removed document; the same
  four indexes delete exactly the rows the document contributed
  (B+-tree ``delete`` per row, IdList shrink, exact catalog-statistic
  decrements), the rest fall back to a full rebuild over the
  post-removal database (the default ``_remove``),
* ``estimated_size_bytes()`` — the space number reported in Figure 9,
* index-specific lookup methods used by the evaluation strategies in
  :mod:`repro.planner.strategies`.

See ``docs/ARCHITECTURE.md`` ("Indexes") for how the maintenance family
fits the serving stack.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional, Sequence

from ..errors import IndexNotBuiltError
from ..storage.stats import GLOBAL_STATS, PAGE_READ_WEIGHT, StatsCollector
from ..xmltree.document import Document, XmlDatabase

#: Per-lookup descent charge assumed for an index that cannot report a
#: tree height (a shallow three-level tree), in weighted-cost currency.
DEFAULT_DESCENT_COST = 3 * PAGE_READ_WEIGHT


@dataclass(frozen=True)
class FamilyDescriptor:
    """One row of Figure 3: how an index instantiates the framework."""

    schema_path_subset: str
    id_list_sublist: str
    indexed_columns: tuple[str, ...]

    def __str__(self) -> str:  # pragma: no cover - display helper
        return (
            f"paths={self.schema_path_subset}; ids={self.id_list_sublist}; "
            f"indexed={', '.join(self.indexed_columns)}"
        )


@dataclass(frozen=True)
class PathMatch:
    """One data path returned by an index lookup.

    ``labels`` is the forward schema path of the matched row and
    ``ids`` the node ids aligned with it.  For ROOTPATHS rows the path
    starts at the document root; for DATAPATHS BoundIndex rows it starts
    at the head node (head label included, head id excluded — the ids
    tuple is then one shorter than the labels tuple and callers use
    :meth:`id_at` which accounts for the offset).
    """

    labels: tuple[str, ...]
    ids: tuple[int, ...]
    value: Optional[str] = None
    head_id: Optional[int] = None

    @property
    def tail_id(self) -> int:
        """Id of the node at the end of the path."""
        return self.ids[-1]

    def id_at(self, label_position: int) -> Optional[int]:
        """Node id at a label position (``None`` for the head of a
        DATAPATHS row, whose id is ``head_id``)."""
        offset = len(self.labels) - len(self.ids)
        index = label_position - offset
        if index < 0:
            return self.head_id
        return self.ids[index]


class PathIndex(abc.ABC):
    """Abstract base class for every index in the family."""

    #: Short name used by the registry, the benches and the figures.
    name: str = "abstract"
    #: The Figure 3 row for this index.
    descriptor: FamilyDescriptor = FamilyDescriptor("-", "-", ())
    #: True when :meth:`update` inserts the new document's keys in place;
    #: False when it falls back to a full rebuild (the base ``_update``).
    incremental: bool = False
    #: True when :meth:`remove` deletes the removed document's keys in
    #: place; False when it falls back to a full rebuild (``_remove``).
    incremental_removal: bool = False

    def __init__(self, stats: Optional[StatsCollector] = None) -> None:
        self.stats = stats if stats is not None else GLOBAL_STATS
        self._built = False
        self.db: Optional[XmlDatabase] = None

    # ------------------------------------------------------------------
    def build(self, db: XmlDatabase) -> "PathIndex":
        """Build the index over ``db`` and return ``self``."""
        self.db = db
        self._build(db)
        self._built = True
        return self

    @abc.abstractmethod
    def _build(self, db: XmlDatabase) -> None:
        """Index-specific construction.

        Implementations must reset any per-build state (entry counters,
        statistics, auxiliary dictionaries) at the start, because a
        rebuild — including the fall-back path of :meth:`update` —
        reuses the same index object.
        """

    # ------------------------------------------------------------------
    def update(self, db: XmlDatabase, document: Document) -> "PathIndex":
        """Absorb one document that was just added to ``db``.

        ``document`` must already be part of ``db`` (its nodes carry
        their final ids).  Indexes with ``incremental = True`` insert
        exactly the rows the new document contributes — B+-tree inserts
        of its path/edge keys, IdList extension, tag-dictionary growth
        for labels first seen here; the rest fall back to the default
        ``_update``, a full rebuild over the whole database.  Either
        way the index answers queries over the post-add snapshot when
        this returns.
        """
        self._require_built()
        self.db = db
        self._update(db, document)
        return self

    def _update(self, db: XmlDatabase, document: Document) -> None:
        """Index-specific maintenance; the default is a full rebuild."""
        self.build(db)

    # ------------------------------------------------------------------
    def remove(self, db: XmlDatabase, document: Document) -> "PathIndex":
        """Forget one document that was just removed from ``db``.

        ``document`` must already be detached from ``db`` but keep its
        tree and node ids (exactly what
        :meth:`~repro.xmltree.document.XmlDatabase.remove_document`
        returns).  Indexes with ``incremental_removal = True`` delete
        exactly the rows the document once contributed — one B+-tree
        ``delete`` per path/edge key, with catalog statistics
        decremented to what a from-scratch build over the remaining
        documents would count; the rest fall back to the default
        ``_remove``, a full rebuild over the post-removal database.
        Either way the index answers queries over the post-removal
        snapshot when this returns.
        """
        self._require_built()
        self.db = db
        self._remove(db, document)
        return self

    def _remove(self, db: XmlDatabase, document: Document) -> None:
        """Index-specific removal; the default is a full rebuild."""
        self.build(db)

    def _require_built(self) -> XmlDatabase:
        if not self._built or self.db is None:
            raise IndexNotBuiltError(f"{self.name} index has not been built")
        return self.db

    @property
    def is_built(self) -> bool:
        """True once :meth:`build` has completed."""
        return self._built

    # ------------------------------------------------------------------
    def lookup_descent_cost(self) -> int:
        """Weighted cost of one lookup's descent into this index.

        Expressed in the :func:`~repro.storage.stats.weighted_cost`
        currency (page reads x weight), with no I/O charged — the
        optimizer's per-probe charge when ranking strategies against
        each other.  Indexes backed by a B+-tree in ``self._tree``
        report their actual height; others assume a shallow tree.
        """
        height = getattr(getattr(self, "_tree", None), "height", None)
        if height is not None:
            return max(1, height) * PAGE_READ_WEIGHT
        return DEFAULT_DESCENT_COST

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def estimated_size_bytes(self) -> int:
        """Approximate on-disk size (drives the Figure 9 experiment)."""

    def estimated_size_mb(self) -> float:
        """Size in megabytes (the unit of Figure 9)."""
        return self.estimated_size_bytes() / (1024.0 * 1024.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "built" if self._built else "empty"
        return f"{type(self).__name__}({status})"


def labels_to_tag_ids(db: XmlDatabase, labels: Sequence[str]) -> Optional[tuple[int, ...]]:
    """Translate a label path to tag ids, ``None`` when a label is unknown.

    Unknown labels mean the query path cannot match anything in the
    database, so callers treat ``None`` as an empty result.
    """
    ids = []
    for label in labels:
        tag_id = db.tags.id_of(label)
        if tag_id is None:
            return None
        ids.append(tag_id)
    return tuple(ids)
