"""The XML path index family (Section 3) and its baselines (Section 5.1.2).

Exports every concrete index plus :data:`INDEX_TYPES`, a registry
mapping the short names used in the figures and the benchmark harness
to the implementing classes.
"""

from .asr import AccessSupportRelation, AccessSupportRelationsIndex
from .base import FamilyDescriptor, PathIndex, PathMatch
from .dataguide import DataGuideIndex
from .datapaths import DataPathsIndex
from .edge import EdgeIndex
from .index_fabric import IndexFabricIndex
from .join_index import JoinIndexRelation, JoinIndicesIndex
from .rootpaths import RootPathsIndex

#: Registry of index short-name -> class, used by the engine and benches.
INDEX_TYPES: dict[str, type[PathIndex]] = {
    RootPathsIndex.name: RootPathsIndex,
    DataPathsIndex.name: DataPathsIndex,
    EdgeIndex.name: EdgeIndex,
    DataGuideIndex.name: DataGuideIndex,
    IndexFabricIndex.name: IndexFabricIndex,
    AccessSupportRelationsIndex.name: AccessSupportRelationsIndex,
    JoinIndicesIndex.name: JoinIndicesIndex,
}

__all__ = [
    "AccessSupportRelation",
    "AccessSupportRelationsIndex",
    "DataGuideIndex",
    "DataPathsIndex",
    "EdgeIndex",
    "FamilyDescriptor",
    "INDEX_TYPES",
    "IndexFabricIndex",
    "JoinIndexRelation",
    "JoinIndicesIndex",
    "PathIndex",
    "PathMatch",
    "RootPathsIndex",
]
