"""The ROOTPATHS index (Section 3.2).

ROOTPATHS is a B+-tree on the concatenation
``LeafValue · ReverseSchemaPath`` over the rows of the 4-ary relation
whose HeadId is the (virtual) root — i.e. the prefixes of the
root-to-leaf data paths — returning the complete IdList.

Design points reproduced from the paper:

* *prefix paths* are stored in addition to full root-to-leaf paths so
  queries that stop above a leaf (``/book``) are answered directly;
* the SchemaPath is stored **reversed**, so a PCsubpath with a leading
  ``//`` becomes a B+-tree *prefix* scan — a single index lookup;
* the **full IdList** is stored, so the ids of branch points are
  available without joins (this is what makes twig queries cheap);
* IdLists are differentially encoded for the space numbers
  (Section 4.1), and SchemaPaths can optionally be dictionary-encoded
  (Section 4.2) at the cost of losing ``//`` support.

Ablation switches (used by ``benchmarks/bench_ablations.py``):

``store_full_idlist=False``
    store only the last id, mimicking the Index-Fabric/DataGuide
    behaviour inside the same key layout;
``reverse_schema_path=False``
    index the forward schema path; ``//`` lookups then degrade to a
    full index scan.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from ..errors import UnsupportedLookupError
from ..paths.compression import SchemaPathDictionary
from ..paths.fourary import iter_rootpaths_rows
from ..paths.idlist import encoded_size_bytes, present_ids, raw_size_bytes
from ..storage.btree import BPlusTree
from ..storage.keys import encode_key
from ..storage.stats import StatsCollector
from ..xmltree.document import XmlDatabase
from .base import FamilyDescriptor, PathIndex, PathMatch, labels_to_tag_ids


class RootPathsIndex(PathIndex):
    """B+-tree on ``LeafValue · ReverseSchemaPath`` returning full IdLists."""

    name = "rootpaths"
    descriptor = FamilyDescriptor(
        schema_path_subset="root-to-leaf path prefixes",
        id_list_sublist="full IdList",
        indexed_columns=("LeafValue", "reverse SchemaPath"),
    )
    #: ``update()`` inserts the new document's rows in place.
    incremental = True
    #: ``remove()`` deletes the removed document's rows in place.
    incremental_removal = True

    def __init__(
        self,
        stats: Optional[StatsCollector] = None,
        order: int = 128,
        store_full_idlist: bool = True,
        reverse_schema_path: bool = True,
        differential_idlists: bool = True,
        schema_path_dictionary: bool = False,
    ) -> None:
        super().__init__(stats)
        self.order = order
        self.store_full_idlist = store_full_idlist
        self.reverse_schema_path = reverse_schema_path
        self.differential_idlists = differential_idlists
        self.schema_path_dictionary = schema_path_dictionary
        self._tree: Optional[BPlusTree] = None
        self._path_dictionary = SchemaPathDictionary() if schema_path_dictionary else None
        self.entry_count = 0
        self.value_counts: dict[tuple[str, Optional[str]], int] = {}

    # ------------------------------------------------------------------
    # Construction and maintenance
    # ------------------------------------------------------------------
    def _build(self, db: XmlDatabase) -> None:
        self._tree = BPlusTree(order=self.order, stats=self.stats, name=self.name)
        self._path_dictionary = (
            SchemaPathDictionary() if self.schema_path_dictionary else None
        )
        self.entry_count = 0
        self.value_counts = {}
        self._tree.bulk_load(self._entry_for_row(db, row) for row in iter_rootpaths_rows(db))

    def _update(self, db: XmlDatabase, document) -> None:
        """Incremental insertion (Section 3.2 layout, maintained in place).

        Only the rows contributed by ``document`` are enumerated; each
        becomes one B+-tree ``insert``.  Tags (and, under Section 4.2
        compression, whole schema paths) first seen in the new document
        grow the dictionaries exactly as a full build would, and the
        catalog statistics in ``value_counts`` stay exact.
        """
        assert self._tree is not None
        for row in iter_rootpaths_rows(db, documents=(document,)):
            self._tree.insert(*self._entry_for_row(db, row))

    def _remove(self, db: XmlDatabase, document) -> None:
        """Incremental deletion of one removed document's rows.

        The detached document still carries its node ids, so the exact
        ``(key, payload)`` entries it contributed at build/update time
        are recomputed and deleted one B+-tree ``delete`` each —
        shrinking the stored IdList set — while ``entry_count`` and the
        ``value_counts`` catalog statistics are decremented to what a
        from-scratch build over the remaining documents would count.
        Dictionaries never shrink (ids are positional), which only
        costs a few bytes of dead designators, not correctness:
        lookups translate through the database dictionary, which
        reports fully released tags as unknown.
        """
        assert self._tree is not None
        for row in iter_rootpaths_rows(db, documents=(document,)):
            key, payload, stat_key = self._row_entry(db, row)
            removed = self._tree.delete(key, value=payload)
            self.entry_count -= removed
            if removed and stat_key in self.value_counts:
                remaining = self.value_counts[stat_key] - removed
                if remaining > 0:
                    self.value_counts[stat_key] = remaining
                else:
                    del self.value_counts[stat_key]

    def _entry_for_row(self, db: XmlDatabase, row) -> tuple:
        """The ``(key, payload)`` entry one 4-ary row contributes.

        Also maintains ``entry_count`` and the ``value_counts`` catalog
        statistics, so build and incremental update cannot drift.
        """
        key, payload, stat_key = self._row_entry(db, row)
        self.entry_count += 1
        self.value_counts[stat_key] = self.value_counts.get(stat_key, 0) + 1
        return key, payload

    def _row_entry(self, db: XmlDatabase, row) -> tuple:
        """Map one 4-ary row to ``(key, payload, stat_key)``, statelessly.

        Shared by build, incremental insert and incremental delete so
        the three paths cannot disagree about what a row looks like in
        the tree.
        """
        key_labels = self._key_labels(row.schema_path)
        tag_ids = tuple(db.tags.intern(label) for label in key_labels)
        if self.schema_path_dictionary and self._path_dictionary is not None:
            path_component: tuple = (self._path_dictionary.intern(row.schema_path),)
        else:
            path_component = tag_ids
        key = encode_key((row.leaf_value, *path_component))
        ids = row.id_list if self.store_full_idlist else row.id_list[-1:]
        stat_key = (row.schema_path[-1], row.leaf_value)
        return key, (row.schema_path, ids, row.leaf_value), stat_key

    def _key_labels(self, labels: Sequence[str]) -> tuple[str, ...]:
        if self.reverse_schema_path:
            return tuple(reversed(tuple(labels)))
        return tuple(labels)

    # ------------------------------------------------------------------
    # Lookups (the FreeIndex problem)
    # ------------------------------------------------------------------
    def lookup(
        self,
        segment_labels: Sequence[str],
        value: Optional[str] = None,
        anchored: bool = False,
    ) -> Iterator[PathMatch]:
        """All root paths ending with ``segment_labels`` (single lookup).

        ``anchored`` restricts matches to paths that *are exactly* the
        segment (a fully specified, root-anchored PCsubpath); otherwise
        the segment may sit at any depth (a leading ``//``).
        """
        db = self._require_built()
        assert self._tree is not None
        tag_ids = labels_to_tag_ids(db, self._key_labels(segment_labels))
        if tag_ids is None:
            return
        if self.schema_path_dictionary:
            yield from self._lookup_with_dictionary(segment_labels, value, anchored)
            return
        if not self.reverse_schema_path and not anchored:
            raise UnsupportedLookupError(
                "forward-schema-path ROOTPATHS cannot answer '//' lookups with "
                "a prefix scan; rebuild with reverse_schema_path=True"
            )
        prefix = encode_key((value, *tag_ids))
        for _key, payload in self._tree.scan_prefix(prefix):
            labels, ids, leaf_value = payload
            if anchored and len(labels) != len(segment_labels):
                continue
            yield PathMatch(labels=labels, ids=ids, value=leaf_value, head_id=None)

    def lookup_payloads(
        self,
        segment_labels: Sequence[str],
        value: Optional[str] = None,
        anchored: bool = False,
    ) -> list[tuple]:
        """Batch :meth:`lookup` returning raw stored payloads.

        The columnar kernels consume ``(schema_path, ids, leaf_value)``
        payload tuples directly instead of per-row
        :class:`~repro.indexes.base.PathMatch` objects.  Charges exactly
        the counters a fully consumed :meth:`lookup` would (same key
        prefix, same batch leaf walk via
        :meth:`~repro.storage.btree.BPlusTree.scan_prefix_items`).
        """
        db = self._require_built()
        assert self._tree is not None
        tag_ids = labels_to_tag_ids(db, self._key_labels(segment_labels))
        if tag_ids is None:
            return []
        if self.schema_path_dictionary:
            return [
                (match.labels, match.ids, match.value)
                for match in self._lookup_with_dictionary(
                    segment_labels, value, anchored
                )
            ]
        if not self.reverse_schema_path and not anchored:
            raise UnsupportedLookupError(
                "forward-schema-path ROOTPATHS cannot answer '//' lookups with "
                "a prefix scan; rebuild with reverse_schema_path=True"
            )
        prefix = encode_key((value, *tag_ids))
        items = self._tree.scan_prefix_items(prefix)
        if anchored:
            wanted = len(segment_labels)
            return [
                payload for _key, payload in items if len(payload[0]) == wanted
            ]
        return [payload for _key, payload in items]

    def _lookup_with_dictionary(
        self, segment_labels: Sequence[str], value: Optional[str], anchored: bool
    ) -> Iterator[PathMatch]:
        """Lookup under SchemaPath dictionary compression (Section 4.2).

        The path id is indivisible, so only fully specified root-anchored
        paths can be answered; a ``//`` pattern raises
        :class:`UnsupportedLookupError` — the loss of functionality the
        paper describes.
        """
        assert self._tree is not None and self._path_dictionary is not None
        if not anchored:
            raise UnsupportedLookupError(
                "SchemaPath dictionary compression cannot answer '//' lookups"
            )
        path_id = self._path_dictionary.id_of(tuple(segment_labels))
        if path_id is None:
            return
        key = encode_key((value, path_id))
        for payload in self._tree.search(key):
            labels, ids, leaf_value = payload
            yield PathMatch(labels=labels, ids=ids, value=leaf_value, head_id=None)

    def count(
        self,
        segment_labels: Sequence[str],
        value: Optional[str] = None,
        anchored: bool = False,
    ) -> int:
        """Number of matching root paths (used by tests and statistics)."""
        return sum(1 for _ in self.lookup(segment_labels, value, anchored))

    def estimate_matches(
        self, leaf_label: str, value: Optional[str] = None
    ) -> int:
        """Catalog-statistics estimate of paths ending at ``leaf_label``
        with the given value — no I/O is charged (the optimizer's input)."""
        if value is not None:
            return self.value_counts.get((leaf_label, value), 0)
        return self.value_counts.get((leaf_label, None), 0)

    # ------------------------------------------------------------------
    # Space
    # ------------------------------------------------------------------
    def estimated_size_bytes(self) -> int:
        self._require_built()
        assert self._tree is not None
        db = self.db
        assert db is not None

        def key_size(key) -> int:
            # First component: leaf value; remaining: schema path designators
            # (about one byte per tag with a small dictionary) or a path id.
            total = 0
            for component in key:
                if component[0] == 0:
                    total += 1
                elif component[0] == 1:
                    total += 2 if not self.schema_path_dictionary else 3
                else:
                    total += len(component[1]) + 1
            return total

        def value_size(payload) -> int:
            _labels, ids, _value = payload
            if self.differential_idlists:
                return encoded_size_bytes(present_ids(ids))
            return raw_size_bytes(present_ids(ids))

        size = self._tree.estimated_size_bytes(
            key_size_of=key_size, value_size_of=value_size, prefix_compression=True
        )
        size += db.tags.estimated_size_bytes()
        if self._path_dictionary is not None:
            size += self._path_dictionary.estimated_size_bytes()
        return size
