"""The (strong) DataGuide baseline, simulated with a B+-tree.

A DataGuide [Goldman & Widom 1997] summarises every distinct rooted
schema path and maps it to the ids of the elements reached by that
path.  In the paper's framework (Figure 3) it stores root-to-leaf path
*prefixes*, returns only the last id, and indexes the SchemaPath column
only — values are not part of the structure, which is why the
DataGuide+Edge strategy must join a separate value-index lookup against
the DataGuide result (Section 5.2.1).

As in the paper, the structure is simulated with a regular B+-tree
keyed by the (forward) schema path.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..paths.fourary import iter_rootpaths_rows
from ..paths.schema_paths import LabelPath, PathPattern, matching_schema_paths
from ..storage.btree import BPlusTree
from ..storage.keys import encode_key
from ..storage.stats import StatsCollector
from ..xmltree.document import XmlDatabase
from .base import FamilyDescriptor, PathIndex, labels_to_tag_ids


class DataGuideIndex(PathIndex):
    """B+-tree on the rooted SchemaPath returning the last id of the path."""

    name = "dataguide"
    descriptor = FamilyDescriptor(
        schema_path_subset="root-to-leaf path prefixes",
        id_list_sublist="only last ID",
        indexed_columns=("SchemaPath",),
    )
    #: ``update()`` extends the summary (new entries and, when the new
    #: document introduces unseen rooted paths, new skeleton paths).
    incremental = True
    #: ``remove()`` deletes the removed document's entries and shrinks
    #: the skeleton when a rooted path loses its last occurrence.
    incremental_removal = True

    def __init__(self, stats: Optional[StatsCollector] = None, order: int = 128) -> None:
        super().__init__(stats)
        self.order = order
        self._tree: Optional[BPlusTree] = None
        self._distinct_paths: list[LabelPath] = []
        self._seen_paths: set[LabelPath] = set()
        #: Occurrences per distinct rooted path — the refcounts that let
        #: removals retire a skeleton path exactly when its last node
        #: disappears.
        self._path_counts: dict[LabelPath, int] = {}
        self.entry_count = 0

    # ------------------------------------------------------------------
    def _build(self, db: XmlDatabase) -> None:
        self._tree = BPlusTree(order=self.order, stats=self.stats, name=self.name)
        self._distinct_paths = []
        self._seen_paths = set()
        self._path_counts = {}
        self.entry_count = 0
        entries = []
        for row in iter_rootpaths_rows(db, include_values=False):
            entries.append(self._entry_for_row(db, row))
        self._tree.bulk_load(entries)

    def _update(self, db: XmlDatabase, document) -> None:
        """DataGuide summary extension for one new document.

        Every rooted path prefix of the new document contributes one
        B+-tree entry; rooted schema paths never seen before also extend
        the DataGuide skeleton (``distinct_paths``), so later recursive
        pattern matching enumerates them too.
        """
        assert self._tree is not None
        for row in iter_rootpaths_rows(db, include_values=False, documents=(document,)):
            self._tree.insert(*self._entry_for_row(db, row))

    def _remove(self, db: XmlDatabase, document) -> None:
        """DataGuide summary shrink for one removed document.

        Deletes the removed document's entries (one per structural
        node) and decrements the per-path refcounts; a rooted path
        whose count reaches zero is retired from the skeleton, so
        recursive pattern matching stops enumerating (and probing) it —
        exactly the skeleton a from-scratch build over the remaining
        documents would produce.
        """
        assert self._tree is not None
        for row in iter_rootpaths_rows(db, include_values=False, documents=(document,)):
            tag_ids = tuple(db.tags.intern(label) for label in row.schema_path)
            removed = self._tree.delete(encode_key(tag_ids), value=row.id_list[-1])
            self.entry_count -= removed
            if not removed:
                continue
            remaining = self._path_counts.get(row.schema_path, 0) - removed
            if remaining > 0:
                self._path_counts[row.schema_path] = remaining
            else:
                self._path_counts.pop(row.schema_path, None)
                self._seen_paths.discard(row.schema_path)
                self._distinct_paths.remove(row.schema_path)

    def _entry_for_row(self, db: XmlDatabase, row) -> tuple:
        """One summary entry; grows the skeleton on first-seen paths."""
        tag_ids = tuple(db.tags.intern(label) for label in row.schema_path)
        self.entry_count += 1
        self._path_counts[row.schema_path] = (
            self._path_counts.get(row.schema_path, 0) + 1
        )
        if row.schema_path not in self._seen_paths:
            self._seen_paths.add(row.schema_path)
            self._distinct_paths.append(row.schema_path)
        return encode_key(tag_ids), row.id_list[-1]

    # ------------------------------------------------------------------
    def lookup_path(self, labels: Sequence[str]) -> list[int]:
        """Ids of elements reached by exactly the rooted path ``labels``."""
        db = self._require_built()
        assert self._tree is not None
        tag_ids = labels_to_tag_ids(db, labels)
        if tag_ids is None:
            return []
        return self._tree.search(encode_key(tag_ids))

    def distinct_paths(self) -> list[LabelPath]:
        """Every distinct rooted schema path (the DataGuide's skeleton)."""
        self._require_built()
        return list(self._distinct_paths)

    def paths_matching(self, pattern: PathPattern) -> list[LabelPath]:
        """Distinct rooted paths that a (possibly recursive) pattern matches.

        Recursive queries must enumerate and probe each matching path —
        one lookup per path — which is the multiple-lookup overhead the
        paper attributes to path-id-style structures.
        """
        self._require_built()
        return matching_schema_paths(pattern, self._distinct_paths)

    # ------------------------------------------------------------------
    def estimated_size_bytes(self) -> int:
        self._require_built()
        assert self._tree is not None

        def key_size(key) -> int:
            return 2 * len(key)

        return self._tree.estimated_size_bytes(
            key_size_of=key_size, prefix_compression=True
        )
