"""Join Indices baseline [Valduriez 1987], adapted to XML paths.

A join index precomputes the join between the two endpoints of a path:
for every distinct schema path it stores ``(head id, tail id)`` pairs.
Because only the endpoints are kept, recovering an intermediate node of
a path requires composing two join indices (head-to-intermediate joined
with intermediate-to-tail), and supporting both directions of lookup
requires **two** B+-trees per path — which is why Figure 9 shows Join
Indices as the largest structure and Section 5.2.6 reports them slower
than ASR and DATAPATHS.

As with ASR, the schema is assumed known and all paths present in the
data are materialised: every distinct schema path between a node and a
descendant (the same path set DATAPATHS enumerates, grouped by label
path) gets

* a *forward* B+-tree  ``head id -> (tail id, leaf value)``, and
* a *backward* B+-tree ``(leaf value, tail id) -> head id``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..paths.fourary import iter_datapaths_rows
from ..paths.schema_paths import LabelPath, PathPattern, matching_schema_paths
from ..storage.btree import BPlusTree
from ..storage.keys import encode_key
from ..storage.stats import StatsCollector
from ..xmltree.document import VIRTUAL_ROOT_ID, XmlDatabase
from .base import FamilyDescriptor, PathIndex


@dataclass
class JoinIndexRelation:
    """The pair of B+-trees materialised for one schema path."""

    path: LabelPath
    forward: BPlusTree
    backward: BPlusTree
    pair_count: int = 0

    def tails_for_head(self, head_id: int) -> list[tuple[int, Optional[str]]]:
        """Forward lookup: ``(tail id, value)`` pairs below ``head_id``."""
        return self.forward.search(encode_key((head_id,)))

    def heads_for_value(self, value: Optional[str]) -> list[int]:
        """Backward lookup by leaf value: head ids whose path tail holds it."""
        return [
            head_id
            for _key, head_id in self.backward.scan_prefix(encode_key((value,)))
        ]

    def backward_pairs_for_value(self, value: Optional[str]) -> list[tuple[int, int]]:
        """Backward lookup returning ``(head id, tail id)`` pairs.

        ``value=None`` returns the structural pairs (no value condition).
        """
        return [
            (head_id, key[1][1])
            for key, head_id in self.backward.scan_prefix(encode_key((value,)))
        ]

    def all_pairs(self) -> list[tuple[int, int, Optional[str]]]:
        """Every ``(head, tail, value)`` pair (full scan of the forward tree)."""
        return [
            (key[0][1], tail, value)
            for key, (tail, value) in self.forward.scan_all()
        ]


class JoinIndicesIndex(PathIndex):
    """Two B+-trees per distinct schema path, endpoints only."""

    name = "join_index"
    descriptor = FamilyDescriptor(
        schema_path_subset="all paths, one binary relation per path",
        id_list_sublist="first and last ID only",
        indexed_columns=("HeadId (forward)", "LeafValue, TailId (backward)"),
    )

    # Endpoint relations are rebuilt wholesale; no incremental path.
    incremental = False
    incremental_removal = False

    #: Fixed logical charge for opening a relation, as for ASR.
    RELATION_OPEN_COST = 2

    def __init__(self, stats: Optional[StatsCollector] = None, order: int = 128) -> None:
        super().__init__(stats)
        self.order = order
        self.relations: dict[LabelPath, JoinIndexRelation] = {}

    # ------------------------------------------------------------------
    def _build(self, db: XmlDatabase) -> None:
        # No incremental ``update()``: like ASR, join indices are one
        # relation pair per schema path, so document adds fall back to
        # the base-class full rebuild.
        self.relations = {}
        for row in iter_datapaths_rows(db, include_values=True):
            if row.head_id == VIRTUAL_ROOT_ID:
                # Rooted pairs are covered by the rows headed at the
                # document root element; the virtual-root duplicates are
                # a DATAPATHS-specific convenience.
                continue
            relation = self.relations.get(row.schema_path)
            if relation is None:
                relation = JoinIndexRelation(
                    path=row.schema_path,
                    forward=BPlusTree(self.order, self.stats, "ji_forward"),
                    backward=BPlusTree(self.order, self.stats, "ji_backward"),
                )
                self.relations[row.schema_path] = relation
            tail_id = row.id_list[-1] if row.id_list else row.head_id
            relation.forward.insert(
                encode_key((row.head_id,)), (tail_id, row.leaf_value)
            )
            relation.backward.insert(
                encode_key((row.leaf_value, tail_id)), row.head_id
            )
            relation.pair_count += 1

    # ------------------------------------------------------------------
    @property
    def relation_count(self) -> int:
        """Number of materialised path relations."""
        return len(self.relations)

    def relations_matching(self, pattern: PathPattern) -> list[JoinIndexRelation]:
        """Join indices whose schema path the pattern matches.

        The pattern here describes a path from a *head label* downwards
        (head label included), so it is matched against the stored
        subpath label sequences.  Each returned relation is charged the
        per-relation open cost.
        """
        self._require_built()
        paths = matching_schema_paths(pattern, list(self.relations))
        for _ in paths:
            self.stats.heap_page_reads += self.RELATION_OPEN_COST
        return [self.relations[path] for path in paths]

    def relation_for(self, path: Sequence[str]) -> Optional[JoinIndexRelation]:
        """The join index for an exact schema path, if materialised."""
        self._require_built()
        relation = self.relations.get(tuple(path))
        if relation is not None:
            self.stats.heap_page_reads += self.RELATION_OPEN_COST
        return relation

    # ------------------------------------------------------------------
    def estimated_size_bytes(self) -> int:
        self._require_built()

        def key_size(key) -> int:
            total = 0
            for component in key:
                if component[0] == 0:
                    total += 1
                elif component[0] == 1:
                    total += 4
                else:
                    total += len(component[1]) + 1
            return total

        total = 0
        for relation in self.relations.values():
            total += relation.forward.estimated_size_bytes(
                key_size_of=key_size, prefix_compression=True
            )
            total += relation.backward.estimated_size_bytes(
                key_size_of=key_size, prefix_compression=True
            )
            total += 256  # two catalog entries per path
        return total
