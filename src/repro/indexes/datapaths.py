"""The DATAPATHS index (Section 3.3).

DATAPATHS is a B+-tree on ``HeadId · LeafValue · ReverseSchemaPath``
over *all* subpaths of root-to-leaf paths, returning the complete
IdList.  It solves both indexing problems of Section 2.3 in one lookup:

* **FreeIndex** — probe with the virtual root as HeadId (footnote 4),
* **BoundIndex** — probe with a concrete node id as HeadId, enabling
  the index-nested-loop join strategy that Section 5.2.3 shows winning
  when one branch is selective and the others are not.

Lossy compression options:

* ``schema_path_dictionary`` (Section 4.2) replaces the reverse schema
  path with an indivisible path id — ``//`` lookups become unsupported;
* ``head_pruner`` (Section 4.3) keeps only rows whose head label is a
  workload branch point (plus the virtual-root rows), shrinking the
  index but disabling BoundIndex probes at other nodes.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from ..errors import UnsupportedLookupError
from ..paths.compression import HeadIdPruner, SchemaPathDictionary
from ..paths.fourary import iter_datapaths_rows
from ..paths.idlist import encoded_size_bytes, present_ids, raw_size_bytes
from ..storage.btree import BPlusTree
from ..storage.keys import encode_key
from ..storage.stats import StatsCollector
from ..xmltree.document import VIRTUAL_ROOT_ID, XmlDatabase
from .base import FamilyDescriptor, PathIndex, PathMatch, labels_to_tag_ids


class DataPathsIndex(PathIndex):
    """B+-tree on ``HeadId · LeafValue · ReverseSchemaPath`` over all subpaths."""

    name = "datapaths"
    descriptor = FamilyDescriptor(
        schema_path_subset="all paths",
        id_list_sublist="full IdList",
        indexed_columns=("LeafValue", "HeadId", "reverse SchemaPath"),
    )
    #: ``update()`` inserts the new document's subpath rows in place.
    incremental = True
    #: ``remove()`` deletes the removed document's subpath rows in place.
    incremental_removal = True

    def __init__(
        self,
        stats: Optional[StatsCollector] = None,
        order: int = 128,
        differential_idlists: bool = True,
        schema_path_dictionary: bool = False,
        head_pruner: Optional[HeadIdPruner] = None,
    ) -> None:
        super().__init__(stats)
        self.order = order
        self.differential_idlists = differential_idlists
        self.schema_path_dictionary = schema_path_dictionary
        self.head_pruner = head_pruner
        self._tree: Optional[BPlusTree] = None
        self._path_dictionary = SchemaPathDictionary() if schema_path_dictionary else None
        self.entry_count = 0
        self.pruned_count = 0
        self.value_counts: dict[tuple[str, Optional[str]], int] = {}

    # ------------------------------------------------------------------
    # Construction and maintenance
    # ------------------------------------------------------------------
    def _build(self, db: XmlDatabase) -> None:
        self._tree = BPlusTree(order=self.order, stats=self.stats, name=self.name)
        self._path_dictionary = (
            SchemaPathDictionary() if self.schema_path_dictionary else None
        )
        self.entry_count = 0
        self.pruned_count = 0
        self.value_counts = {}
        self._tree.bulk_load(self._iter_entries(db, iter_datapaths_rows(db)))

    def _update(self, db: XmlDatabase, document) -> None:
        """Incremental insertion of the new document's subpath rows.

        Each row (every (ancestor-or-self head, node) pair of the new
        document, plus its virtual-root rows) becomes one B+-tree
        ``insert``; head pruning, dictionary growth and the catalog
        statistics behave exactly as in a full build.
        """
        assert self._tree is not None
        rows = iter_datapaths_rows(db, documents=(document,))
        for key, payload in self._iter_entries(db, rows):
            self._tree.insert(key, payload)

    def _remove(self, db: XmlDatabase, document) -> None:
        """Incremental deletion of one removed document's subpath rows.

        Re-enumerates every row the detached document contributed
        (same enumeration as build and update — the document keeps its
        node ids) and deletes the corresponding entry; head pruning is
        replayed so pruned rows decrement the pruning counter instead,
        and the virtual-root catalog statistics are decremented to what
        a from-scratch build over the remaining documents would count.
        """
        assert self._tree is not None
        for row in iter_datapaths_rows(db, documents=(document,)):
            mapped = self._map_row(db, row)
            if mapped is None:
                self.pruned_count -= 1
                continue
            key, payload, stat_key = mapped
            removed = self._tree.delete(key, value=payload)
            self.entry_count -= removed
            if removed and stat_key is not None and stat_key in self.value_counts:
                remaining = self.value_counts[stat_key] - removed
                if remaining > 0:
                    self.value_counts[stat_key] = remaining
                else:
                    del self.value_counts[stat_key]

    def _iter_entries(self, db: XmlDatabase, rows) -> "Iterator[tuple]":
        """Map 4-ary rows to ``(key, payload)`` entries.

        Shared by build and incremental update; maintains the entry and
        pruning counters and the ``value_counts`` statistics.
        """
        for row in rows:
            mapped = self._map_row(db, row)
            if mapped is None:
                self.pruned_count += 1
                continue
            key, payload, stat_key = mapped
            self.entry_count += 1
            if stat_key is not None:
                self.value_counts[stat_key] = self.value_counts.get(stat_key, 0) + 1
            yield key, payload

    def _map_row(self, db: XmlDatabase, row):
        """One row's ``(key, payload, stat_key)``, or ``None`` when pruned.

        Stateless and shared by build, incremental insert and
        incremental delete.  The head's label is read from the schema
        path itself (its first component) rather than via ``db.node`` —
        a removed document's head ids are no longer resolvable in the
        database, but its rows must map to exactly the entries they
        produced at insert time.
        """
        if self.head_pruner is not None and row.head_id != VIRTUAL_ROOT_ID:
            if not self.head_pruner.keeps_label(row.schema_path[0]):
                return None
        reverse_labels = tuple(reversed(row.schema_path))
        tag_ids = tuple(db.tags.intern(label) for label in reverse_labels)
        if self.schema_path_dictionary and self._path_dictionary is not None:
            path_component: tuple = (self._path_dictionary.intern(row.schema_path),)
        else:
            path_component = tag_ids
        key = encode_key((row.head_id, row.leaf_value, *path_component))
        stat_key = None
        if row.head_id == VIRTUAL_ROOT_ID:
            stat_key = (row.schema_path[-1], row.leaf_value)
        return key, (row.schema_path, row.id_list, row.leaf_value, row.head_id), stat_key

    # ------------------------------------------------------------------
    # FreeIndex lookups
    # ------------------------------------------------------------------
    def free_lookup(
        self,
        segment_labels: Sequence[str],
        value: Optional[str] = None,
        anchored: bool = False,
    ) -> Iterator[PathMatch]:
        """FreeIndex probe: subpath matches anywhere, via the virtual root."""
        yield from self.bound_lookup(
            VIRTUAL_ROOT_ID, segment_labels, value=value, anchored=anchored
        )

    # ------------------------------------------------------------------
    # BoundIndex lookups
    # ------------------------------------------------------------------
    def bound_lookup(
        self,
        head_id: int,
        segment_labels: Sequence[str],
        value: Optional[str] = None,
        anchored: bool = False,
    ) -> Iterator[PathMatch]:
        """BoundIndex probe: matches of the PCsubpath rooted at ``head_id``.

        ``segment_labels`` are the labels of the subpath *below* the
        head for a concrete head (the head's own label is part of the
        stored schema path and not of the probe), or the full rooted
        labels when ``head_id`` is the virtual root.

        ``anchored`` means the subpath attaches to the head by a chain
        of parent-child edges only (no leading ``//``): the stored
        schema path must then be exactly ``head label + segment`` (or
        the segment itself for virtual-root probes).
        """
        db = self._require_built()
        assert self._tree is not None
        if self.head_pruner is not None and head_id != VIRTUAL_ROOT_ID:
            head_label = db.node(head_id).label
            if not self.head_pruner.keeps_label(head_label):
                raise UnsupportedLookupError(
                    f"DATAPATHS rows headed at {head_label!r} were pruned by the "
                    "workload-based HeadId pruning (Section 4.3)"
                )
        reverse_labels = tuple(reversed(tuple(segment_labels)))
        tag_ids = labels_to_tag_ids(db, reverse_labels)
        if tag_ids is None:
            return
        if self.schema_path_dictionary:
            yield from self._bound_lookup_dictionary(
                head_id, tuple(segment_labels), value, anchored
            )
            return
        expected_length = self._expected_anchored_length(head_id, len(tuple(segment_labels)))
        prefix = encode_key((head_id, value, *tag_ids))
        for _key, payload in self._tree.scan_prefix(prefix):
            labels, ids, leaf_value, row_head = payload
            if anchored and len(labels) != expected_length:
                continue
            yield PathMatch(labels=labels, ids=ids, value=leaf_value, head_id=row_head)

    def free_lookup_payloads(
        self,
        segment_labels: Sequence[str],
        value: Optional[str] = None,
        anchored: bool = False,
    ) -> list[tuple]:
        """Batch :meth:`free_lookup` returning raw stored payloads."""
        return self.bound_lookup_payloads(
            VIRTUAL_ROOT_ID, segment_labels, value=value, anchored=anchored
        )

    def bound_lookup_payloads(
        self,
        head_id: int,
        segment_labels: Sequence[str],
        value: Optional[str] = None,
        anchored: bool = False,
    ) -> list[tuple]:
        """Batch :meth:`bound_lookup` returning raw stored payloads.

        Payloads are the stored ``(schema_path, ids, leaf_value,
        head_id)`` tuples, consumed by the columnar kernels without
        per-row :class:`~repro.indexes.base.PathMatch` construction.
        Cost counters match a fully consumed :meth:`bound_lookup`
        exactly (same prefix, same batch leaf walk).
        """
        db = self._require_built()
        assert self._tree is not None
        if self.head_pruner is not None and head_id != VIRTUAL_ROOT_ID:
            head_label = db.node(head_id).label
            if not self.head_pruner.keeps_label(head_label):
                raise UnsupportedLookupError(
                    f"DATAPATHS rows headed at {head_label!r} were pruned by the "
                    "workload-based HeadId pruning (Section 4.3)"
                )
        reverse_labels = tuple(reversed(tuple(segment_labels)))
        tag_ids = labels_to_tag_ids(db, reverse_labels)
        if tag_ids is None:
            return []
        if self.schema_path_dictionary:
            return [
                (match.labels, match.ids, match.value, match.head_id)
                for match in self._bound_lookup_dictionary(
                    head_id, tuple(segment_labels), value, anchored
                )
            ]
        prefix = encode_key((head_id, value, *tag_ids))
        items = self._tree.scan_prefix_items(prefix)
        if anchored:
            wanted = self._expected_anchored_length(
                head_id, len(tuple(segment_labels))
            )
            return [
                payload for _key, payload in items if len(payload[0]) == wanted
            ]
        return [payload for _key, payload in items]

    def _expected_anchored_length(self, head_id: int, segment_length: int) -> int:
        if head_id == VIRTUAL_ROOT_ID:
            return segment_length
        return segment_length + 1

    def _bound_lookup_dictionary(
        self,
        head_id: int,
        segment_labels: tuple[str, ...],
        value: Optional[str],
        anchored: bool,
    ) -> Iterator[PathMatch]:
        assert self._tree is not None and self._path_dictionary is not None
        if not anchored:
            raise UnsupportedLookupError(
                "SchemaPath dictionary compression cannot answer '//' lookups"
            )
        db = self._require_built()
        if head_id == VIRTUAL_ROOT_ID:
            full_path = segment_labels
        else:
            full_path = (db.node(head_id).label,) + segment_labels
        path_id = self._path_dictionary.id_of(full_path)
        if path_id is None:
            return
        key = encode_key((head_id, value, path_id))
        for payload in self._tree.search(key):
            labels, ids, leaf_value, row_head = payload
            yield PathMatch(labels=labels, ids=ids, value=leaf_value, head_id=row_head)

    # ------------------------------------------------------------------
    def count_bound(
        self,
        head_id: int,
        segment_labels: Sequence[str],
        value: Optional[str] = None,
        anchored: bool = False,
    ) -> int:
        """Number of BoundIndex matches (mainly for tests)."""
        return sum(1 for _ in self.bound_lookup(head_id, segment_labels, value, anchored))

    def estimate_matches(self, leaf_label: str, value: Optional[str] = None) -> int:
        """Catalog estimate of FreeIndex matches ending at ``leaf_label``."""
        return self.value_counts.get((leaf_label, value), 0)

    # ------------------------------------------------------------------
    # Space
    # ------------------------------------------------------------------
    def estimated_size_bytes(self) -> int:
        self._require_built()
        assert self._tree is not None
        db = self.db
        assert db is not None

        def key_size(key) -> int:
            total = 0
            for index, component in enumerate(key):
                if component[0] == 0:
                    total += 1
                elif component[0] == 1:
                    # HeadId is a 4-byte id; schema path components are
                    # short designators (or a path id under compression).
                    total += 4 if index == 0 else 2
                else:
                    total += len(component[1]) + 1
            return total

        def value_size(payload) -> int:
            _labels, ids, _value, _head = payload
            if self.differential_idlists:
                return encoded_size_bytes(present_ids(ids))
            return raw_size_bytes(present_ids(ids))

        size = self._tree.estimated_size_bytes(
            key_size_of=key_size, value_size_of=value_size, prefix_compression=True
        )
        size += db.tags.estimated_size_bytes()
        if self._path_dictionary is not None:
            size += self._path_dictionary.estimated_size_bytes()
        return size
