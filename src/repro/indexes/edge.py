"""The Edge table baseline with Lore-style value / link indices.

The paper assumes XML data is stored in an Edge table [Florescu &
Kossmann] and compares against the most useful indices reported there
and in Lore's query optimizer work (Section 5.1.2):

* **value index** — ``(tag, value)``  -> element/attribute id,
* **tag index** — ``tag`` -> element/attribute id (used when a query
  step carries no value condition),
* **forward link index** — ``(parent id, tag)`` -> child id,
* **backward (reverse) link index** — ``child id`` -> parent id.

Evaluating a path of length *k* with these indices requires a join per
step, which is exactly why the Edge strategy degrades with path length
and predicate unselectivity in Figures 11-13.
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..storage.btree import BPlusTree
from ..storage.heap import HeapFile
from ..storage.keys import encode_key
from ..storage.stats import StatsCollector
from ..xmltree.document import VIRTUAL_ROOT_ID, VIRTUAL_ROOT_LABEL, XmlDatabase
from .base import FamilyDescriptor, PathIndex


class EdgeIndex(PathIndex):
    """Edge table + value, tag, forward-link and backward-link B+-trees."""

    name = "edge"
    descriptor = FamilyDescriptor(
        schema_path_subset="paths of length 1",
        id_list_sublist="only last ID",
        indexed_columns=("HeadId", "SchemaPath", "LeafValue"),
    )
    #: ``update()`` appends the new document's edges in place.
    incremental = True
    #: ``remove()`` deletes the removed document's edges in place.
    incremental_removal = True

    def __init__(self, stats: Optional[StatsCollector] = None, order: int = 128) -> None:
        super().__init__(stats)
        self.order = order
        self.heap: Optional[HeapFile] = None
        self._value_index: Optional[BPlusTree] = None
        self._tag_index: Optional[BPlusTree] = None
        self._forward_index: Optional[BPlusTree] = None
        self._backward_index: Optional[BPlusTree] = None
        self.edge_count = 0

    # ------------------------------------------------------------------
    def _build(self, db: XmlDatabase) -> None:
        self.heap = HeapFile(stats=self.stats, name="edge_table")
        self._value_index = BPlusTree(self.order, self.stats, "edge_value")
        self._tag_index = BPlusTree(self.order, self.stats, "edge_tag")
        self._forward_index = BPlusTree(self.order, self.stats, "edge_forward")
        self._backward_index = BPlusTree(self.order, self.stats, "edge_backward")
        self.edge_count = 0
        for node in db.iter_structural():
            self._insert_node(node)

    def _update(self, db: XmlDatabase, document) -> None:
        """Incremental insertion: one Edge-table row (plus the value,
        tag and link index entries) per structural node of the new
        document — the per-edge layout makes Edge the cheapest index to
        maintain."""
        for node in document.iter_structural():
            self._insert_node(node)

    def _remove(self, db: XmlDatabase, document) -> None:
        """Incremental deletion of one removed document's edges.

        Every structural node's tag, value and link index entries are
        deleted by the exact keys :meth:`_insert_node` produced, and the
        document's heap rows — contiguous, because adds append in
        document order — are filtered out of the pages its id span
        touches.
        """
        assert self.heap is not None
        deleted_nodes = 0
        for node in document.iter_structural():
            self._delete_node_entries(node, document)
            deleted_nodes += 1
        first_id, end_id = document.first_id, document.end_id
        self.heap.delete_where(lambda row: first_id <= row[1] < end_id)
        self.edge_count -= deleted_nodes

    def _parent_edge(self, node, document=None):
        """The ``(parent_id, parent_label)`` an Edge row records.

        A document root's parent is the database's virtual root at
        insert time; after removal the root is detached (``parent is
        None``), so the virtual-root identity is reconstructed instead
        of read from the tree.
        """
        parent = node.parent
        if parent is not None:
            return parent.node_id, parent.label
        if document is not None and node is document.root:
            return VIRTUAL_ROOT_ID, VIRTUAL_ROOT_LABEL
        return None, None

    def _insert_node(self, node) -> None:
        """Append one structural node's Edge row and index entries."""
        assert (
            self.heap is not None
            and self._value_index is not None
            and self._tag_index is not None
            and self._forward_index is not None
            and self._backward_index is not None
        )
        parent_id, parent_label = self._parent_edge(node)
        value = node.first_value()
        self.heap.append((parent_id, node.node_id, node.label, value))
        self.edge_count += 1
        self._tag_index.insert(encode_key((node.label,)), node.node_id)
        if value is not None:
            self._value_index.insert(encode_key((node.label, value)), node.node_id)
        if parent_id is not None:
            self._forward_index.insert(
                encode_key((parent_id, node.label)), node.node_id
            )
            self._backward_index.insert(
                encode_key((node.node_id,)), (parent_id, parent_label)
            )

    def _delete_node_entries(self, node, document) -> None:
        """Delete one structural node's index entries (mirror of insert)."""
        assert (
            self._value_index is not None
            and self._tag_index is not None
            and self._forward_index is not None
            and self._backward_index is not None
        )
        parent_id, parent_label = self._parent_edge(node, document)
        value = node.first_value()
        self._tag_index.delete(encode_key((node.label,)), value=node.node_id)
        if value is not None:
            self._value_index.delete(
                encode_key((node.label, value)), value=node.node_id
            )
        if parent_id is not None:
            self._forward_index.delete(
                encode_key((parent_id, node.label)), value=node.node_id
            )
            self._backward_index.delete(encode_key((node.node_id,)))

    # ------------------------------------------------------------------
    # Lookup primitives used by the Edge / DG+Edge / IF+Edge strategies
    # ------------------------------------------------------------------
    def nodes_with_value(self, label: str, value: str) -> list[int]:
        """Ids of nodes labelled ``label`` whose direct value equals ``value``."""
        self._require_built()
        assert self._value_index is not None
        return self._value_index.search(encode_key((label, value)))

    def nodes_with_label(self, label: str) -> list[int]:
        """Ids of nodes labelled ``label`` (the tag index)."""
        self._require_built()
        assert self._tag_index is not None
        return self._tag_index.search(encode_key((label,)))

    def parent_of(self, node_id: int) -> Optional[tuple[int, str]]:
        """``(parent id, parent label)`` via the backward link index."""
        self._require_built()
        assert self._backward_index is not None
        results = self._backward_index.search(encode_key((node_id,)))
        return results[0] if results else None

    def children_of(self, node_id: int, label: str) -> list[int]:
        """Child ids with a given tag via the forward link index."""
        self._require_built()
        assert self._forward_index is not None
        return self._forward_index.search(encode_key((node_id, label)))

    def ancestors_of(self, node_id: int) -> Iterator[tuple[int, str]]:
        """Walk the backward links to the root, yielding ``(id, label)``.

        Each step is an index probe; recursive (``//``) steps through
        the Edge table cost one probe per ancestor level, which is what
        makes the Edge approach unattractive for recursion.
        """
        current = node_id
        while True:
            parent = self.parent_of(current)
            if parent is None:
                return
            yield parent
            current = parent[0]

    def value_of(self, node_id: int) -> Optional[str]:
        """Direct value of a node, fetched from the Edge heap row."""
        db = self._require_built()
        return db.node(node_id).first_value()

    # ------------------------------------------------------------------
    def estimated_size_bytes(self) -> int:
        self._require_built()
        assert (
            self.heap is not None
            and self._value_index is not None
            and self._tag_index is not None
            and self._forward_index is not None
            and self._backward_index is not None
        )

        def key_size(key) -> int:
            total = 0
            for component in key:
                if component[0] == 0:
                    total += 1
                elif component[0] == 1:
                    total += 4
                else:
                    total += len(component[1]) + 1
            return total

        total = self.heap.estimated_size_bytes()
        for tree in (
            self._value_index,
            self._tag_index,
            self._forward_index,
            self._backward_index,
        ):
            total += tree.estimated_size_bytes(
                key_size_of=key_size, prefix_compression=True
            )
        return total
