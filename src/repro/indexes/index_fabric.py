"""The Index Fabric baseline, simulated with a B+-tree (Section 5.1.2).

The Index Fabric [Cooper et al. 2001] indexes whole root-to-leaf paths
*together with* the leaf value (a layered Patricia trie in the original
proposal; the paper — and therefore this reproduction — simulates it
with a regular B+-tree because commercial systems do not provide
Patricia tries).  In the family framework (Figure 3) it stores
root-to-leaf paths, returns only the first or last id, and indexes
``SchemaPath, LeafValue``.

Strengths and weaknesses reproduced here:

* a fully specified root-to-leaf path with a value condition is a
  single exact lookup (best case in Figure 11);
* branching queries need the Edge table to recover branch-point ids
  (the IF+Edge strategy), because no IdList is stored;
* paths that stop above a leaf and paths with a leading ``//`` are not
  supported directly — the strategy falls back to other access paths.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..paths.fourary import iter_rootpaths_rows
from ..paths.schema_paths import LabelPath, PathPattern, matching_schema_paths
from ..storage.btree import BPlusTree
from ..storage.keys import encode_key
from ..storage.stats import StatsCollector
from ..xmltree.document import XmlDatabase
from .base import FamilyDescriptor, PathIndex, labels_to_tag_ids


class IndexFabricIndex(PathIndex):
    """B+-tree on ``SchemaPath · LeafValue`` for root-to-leaf paths."""

    name = "index_fabric"
    descriptor = FamilyDescriptor(
        schema_path_subset="root-to-leaf paths",
        id_list_sublist="only first or last ID",
        indexed_columns=("SchemaPath", "LeafValue"),
    )

    # Raw-path keys cannot be patched in place; rebuild on maintenance.
    incremental = False
    incremental_removal = False

    def __init__(
        self,
        stats: Optional[StatsCollector] = None,
        order: int = 128,
        return_first: bool = False,
    ) -> None:
        super().__init__(stats)
        self.order = order
        self.return_first = return_first
        self._tree: Optional[BPlusTree] = None
        self._leaf_paths: list[LabelPath] = []
        self.entry_count = 0

    # ------------------------------------------------------------------
    def _build(self, db: XmlDatabase) -> None:
        # No incremental ``update()``: the simulated fabric is rebuilt in
        # full when a document is added (the base-class fall-back), as
        # the layered-trie original would re-layer anyway.
        self._tree = BPlusTree(order=self.order, stats=self.stats, name=self.name)
        self.entry_count = 0
        seen_paths: dict[LabelPath, None] = {}
        entries = []
        for row in iter_rootpaths_rows(db, include_values=True):
            if row.leaf_value is None:
                continue
            tag_ids = tuple(db.tags.intern(label) for label in row.schema_path)
            stored = row.id_list[0] if self.return_first else row.id_list[-1]
            entries.append((encode_key((*tag_ids, row.leaf_value)), stored))
            self.entry_count += 1
            seen_paths.setdefault(row.schema_path, None)
        self._tree.bulk_load(entries)
        self._leaf_paths = list(seen_paths)

    # ------------------------------------------------------------------
    def lookup(self, labels: Sequence[str], value: str) -> list[int]:
        """Ids for a fully specified root-to-leaf path with a value."""
        db = self._require_built()
        assert self._tree is not None
        tag_ids = labels_to_tag_ids(db, labels)
        if tag_ids is None:
            return []
        return self._tree.search(encode_key((*tag_ids, value)))

    def leaf_paths(self) -> list[LabelPath]:
        """Distinct root-to-leaf schema paths present in the fabric."""
        self._require_built()
        return list(self._leaf_paths)

    def paths_matching(self, pattern: PathPattern) -> list[LabelPath]:
        """Root-to-leaf paths a (possibly recursive) pattern matches."""
        self._require_built()
        return matching_schema_paths(pattern, self._leaf_paths)

    def supports(self, labels: Sequence[str], value: Optional[str]) -> bool:
        """True when the fabric can answer this probe directly.

        A probe is supported when it carries a value condition and its
        path reaches a leaf-valued path stored in the fabric.
        """
        self._require_built()
        return value is not None and tuple(labels) in set(self._leaf_paths)

    # ------------------------------------------------------------------
    def estimated_size_bytes(self) -> int:
        self._require_built()
        assert self._tree is not None

        def key_size(key) -> int:
            total = 0
            for component in key:
                if component[0] == 1:
                    total += 2
                elif component[0] == 2:
                    total += len(component[1]) + 1
                else:
                    total += 1
            return total

        return self._tree.estimated_size_bytes(
            key_size_of=key_size, prefix_compression=True
        )
