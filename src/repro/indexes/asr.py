"""Access Support Relations (ASR) baseline [Kemper & Moerkotte 1990].

An ASR materialises a path as a relation whose columns are the object
(here: node) ids along the path.  As in Section 5.1.2, all paths
present in the data are materialised — one relation per distinct rooted
schema path — because the workload is ad hoc.  Each relation keeps the
ids of *every* node on the path in separate columns (no IdList
compression, Section 5.2.6) plus the leaf value, and carries a B+-tree
on the value column.

Characteristics reproduced from the paper:

* a branch lookup that matches a single schema path touches one
  relation (fast, comparable to DATAPATHS),
* a recursive (``//``) pattern that matches *k* schema paths must
  access *k* relations — cost linear in *k* rather than logarithmic in
  the data size (Figure 13),
* managing one table + index per schema path (902 for XMark, 235 for
  DBLP in the paper) is the manageability cost called out in
  Section 5.2.6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..paths.fourary import iter_rootpaths_rows
from ..paths.schema_paths import LabelPath, PathPattern, matching_schema_paths
from ..storage.btree import BPlusTree
from ..storage.heap import HeapFile
from ..storage.keys import encode_key
from ..storage.stats import StatsCollector
from ..xmltree.document import XmlDatabase
from .base import FamilyDescriptor, PathIndex


@dataclass
class AccessSupportRelation:
    """One materialised path: a heap of id tuples plus a value index."""

    path: LabelPath
    heap: HeapFile
    value_index: BPlusTree
    row_count: int = 0

    def rows_with_value(self, value: str) -> list[tuple]:
        """Rows whose leaf value equals ``value`` (via the value index)."""
        return self.value_index.search(encode_key((value,)))

    def scan(self) -> list[tuple]:
        """All rows of the relation (sequential scan)."""
        return list(self.heap.scan())


class AccessSupportRelationsIndex(PathIndex):
    """One relation per distinct rooted schema path."""

    name = "asr"
    descriptor = FamilyDescriptor(
        schema_path_subset="all rooted paths, one relation per path",
        id_list_sublist="all ids, one column per node",
        indexed_columns=("LeafValue per relation",),
    )

    # Per-path relations are rebuilt wholesale; no incremental path.
    incremental = False
    incremental_removal = False

    #: Fixed logical charge for opening a relation (catalog lookup + root
    #: page), modelling why touching many small relations is linear in
    #: their number rather than logarithmic in the data size.
    RELATION_OPEN_COST = 2

    def __init__(self, stats: Optional[StatsCollector] = None, order: int = 128) -> None:
        super().__init__(stats)
        self.order = order
        self.relations: dict[LabelPath, AccessSupportRelation] = {}

    # ------------------------------------------------------------------
    def _build(self, db: XmlDatabase) -> None:
        # No incremental ``update()``: adding a document can create new
        # schema paths (new relations plus catalog churn), so ASR takes
        # the base-class full-rebuild fall-back — the manageability cost
        # Section 5.2.6 calls out.
        self.relations = {}
        for row in iter_rootpaths_rows(db, include_values=True):
            relation = self.relations.get(row.schema_path)
            if relation is None:
                relation = AccessSupportRelation(
                    path=row.schema_path,
                    heap=HeapFile(stats=self.stats, name=f"asr:{'/'.join(row.schema_path)}"),
                    value_index=BPlusTree(self.order, self.stats, "asr_value"),
                )
                self.relations[row.schema_path] = relation
            stored = (*row.id_list, row.leaf_value)
            relation.heap.append(stored)
            relation.row_count += 1
            if row.leaf_value is not None:
                relation.value_index.insert(encode_key((row.leaf_value,)), stored)

    # ------------------------------------------------------------------
    @property
    def relation_count(self) -> int:
        """Number of materialised relations (the paper's 902 / 235)."""
        return len(self.relations)

    def relations_matching(self, pattern: PathPattern) -> list[AccessSupportRelation]:
        """Relations whose schema path the pattern matches.

        Charges the per-relation open cost for each returned relation.
        """
        self._require_built()
        paths = matching_schema_paths(pattern, list(self.relations))
        for _ in paths:
            self.stats.heap_page_reads += self.RELATION_OPEN_COST
        return [self.relations[path] for path in paths]

    def relation_for(self, path: Sequence[str]) -> Optional[AccessSupportRelation]:
        """The relation for an exact schema path, if materialised."""
        self._require_built()
        relation = self.relations.get(tuple(path))
        if relation is not None:
            self.stats.heap_page_reads += self.RELATION_OPEN_COST
        return relation

    # ------------------------------------------------------------------
    def estimated_size_bytes(self) -> int:
        self._require_built()
        total = 0
        for relation in self.relations.values():
            # Ids are stored uncompressed in separate columns.
            total += relation.heap.estimated_size_bytes()
            total += relation.value_index.estimated_size_bytes(
                key_size_of=lambda key: sum(
                    len(c[1]) + 1 if c[0] == 2 else 4 for c in key
                ),
                prefix_compression=True,
            )
            # Catalog entry per relation.
            total += 128
        return total
