"""XML tree substrate: node model, documents, parsing, tag dictionary.

This package implements the paper's data model (Section 2.1): an XML
database is a forest of rooted, ordered, labeled trees whose non-leaf
nodes (elements and attributes) carry unique numeric identifiers and
whose leaves are string values.
"""

from .dictionary import TagDictionary
from .document import (
    Document,
    TreeBuilder,
    VIRTUAL_ROOT_ID,
    VIRTUAL_ROOT_LABEL,
    XmlDatabase,
    build_database,
)
from .nodes import Node, NodeKind
from .parser import parse_file, parse_string, serialize

__all__ = [
    "Document",
    "Node",
    "NodeKind",
    "TagDictionary",
    "TreeBuilder",
    "VIRTUAL_ROOT_ID",
    "VIRTUAL_ROOT_LABEL",
    "XmlDatabase",
    "build_database",
    "parse_file",
    "parse_string",
    "serialize",
]
