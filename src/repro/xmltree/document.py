"""Document and database containers for the XML tree model.

A :class:`Document` wraps a single rooted tree.  An :class:`XmlDatabase`
is the forest the paper indexes: it owns the node-id space, the tag
dictionary, and (as in Section 3.3, footnote 4) a *virtual root* that is
the parent of every document root so that the DATAPATHS index can solve
the FreeIndex problem by using the virtual root as the HeadId.

The database is mutable in both directions: :meth:`XmlDatabase.add_document`
numbers a new document at the id watermark, and
:meth:`XmlDatabase.remove_document` detaches one, reclaiming its node-id
span and its tag-dictionary refcounts.  Ids of removed nodes are never
reused — the watermark only grows — so surviving documents keep their
ids and incremental index maintenance can delete exactly the removed
document's rows (see ``docs/ARCHITECTURE.md``, "Mutation and the
generation model").
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Union

from ..errors import DocumentError
from .dictionary import TagDictionary
from .nodes import Node, NodeKind

#: Label used for the virtual root that parents all document roots.
VIRTUAL_ROOT_LABEL = "#root"

#: Node id reserved for the virtual root.
VIRTUAL_ROOT_ID = 0


class Document:
    """A single XML document: one rooted, ordered, labeled tree."""

    def __init__(self, root: Node, name: str = "") -> None:
        if not root.is_structural:
            raise DocumentError("document root must be an element")
        self.root = root
        self.name = name
        #: Half-open node-id span ``[first_id, end_id)`` assigned by
        #: :meth:`XmlDatabase.add_document`; ``None`` until added.
        self.first_id: Optional[int] = None
        self.end_id: Optional[int] = None

    def iter_nodes(self) -> Iterator[Node]:
        """All nodes of the document in document order."""
        return self.root.iter_subtree()

    def iter_structural(self) -> Iterator[Node]:
        """All element and attribute nodes in document order."""
        return (n for n in self.iter_nodes() if n.is_structural)

    def count_nodes(self) -> int:
        """Number of nodes (including value leaves) in the document."""
        return sum(1 for _ in self.iter_nodes())

    def clone(self) -> "Document":
        """A deep, unattached copy of this document's tree.

        Node kinds and labels are copied; ids, parents and depths are
        left for :meth:`XmlDatabase.add_document` to assign, so the
        clone can be added to a *different* database — trees are never
        shared between databases.  The replicated-shard tier uses this
        to write one logical document through to every replica.
        """
        copied_root = Node(self.root.kind, self.root.label)
        stack = [(self.root, copied_root)]
        while stack:
            original, copy = stack.pop()
            for child in original.children:
                stack.append((child, copy.add_child(Node(child.kind, child.label))))
        return Document(copied_root, name=self.name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Document(name={self.name!r}, root={self.root.label!r})"


class XmlDatabase:
    """The XML database: a forest of documents sharing one id space.

    The database assigns document-order (pre-order, depth-first) numeric
    identifiers to structural nodes, starting at 1, exactly as in
    Figure 1(b) of the paper.  Value nodes receive ids too (they are
    needed by the Edge-table baseline) but ids of value leaves are never
    part of IdLists.

    A virtual root (id 0) parents every document root so paths "starting
    at the root" have a well defined HeadId even across documents.
    """

    def __init__(self) -> None:
        self.virtual_root = Node(NodeKind.ELEMENT, VIRTUAL_ROOT_LABEL, VIRTUAL_ROOT_ID)
        self.documents: list[Document] = []
        self.tags = TagDictionary()
        self._nodes_by_id: dict[int, Node] = {VIRTUAL_ROOT_ID: self.virtual_root}
        self._next_id = 1
        self._removed_count = 0

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def add_document(self, document: Document) -> Document:
        """Add ``document`` to the database, numbering its nodes.

        Node ids are assigned in document order continuing from the last
        id used by previously added documents.
        """
        document.root.parent = self.virtual_root
        document.root.depth = 1
        self.virtual_root.children.append(document.root)
        document.first_id = self._next_id
        self._renumber(document.root)
        document.end_id = self._next_id
        self.documents.append(document)
        return document

    def add_tree(self, root: Node, name: str = "") -> Document:
        """Wrap ``root`` in a :class:`Document` and add it."""
        return self.add_document(Document(root, name=name))

    def skip_ids(self, count: int) -> None:
        """Advance the id watermark by ``count`` without assigning ids.

        Ids are never reused, so to every reader a skipped stretch is
        indistinguishable from ids that once belonged to a removed
        document.  This is what lets a replayed write log reproduce
        removal gaps without materializing the removed documents (see
        the replica re-sync path's compacted oplog): documents added
        after the skip are numbered exactly as the original database
        numbered them.
        """
        if count < 1:
            raise DocumentError(
                f"can only skip a positive id count, got {count}"
            )
        self._next_id += count

    def _renumber(self, root: Node) -> None:
        stack = [root]
        while stack:
            node = stack.pop()
            node.node_id = self._next_id
            self._next_id += 1
            self._nodes_by_id[node.node_id] = node
            if node.is_structural:
                self.tags.acquire(node.label)
            if node.parent is not None and node.parent is not self.virtual_root:
                node.depth = node.parent.depth + 1
            stack.extend(reversed(node.children))

    # ------------------------------------------------------------------
    # Removal and replacement
    # ------------------------------------------------------------------
    def resolve_document(self, ref: "Union[Document, str]") -> Document:
        """The live document ``ref`` names.

        ``ref`` is either a :class:`Document` currently in the database
        or a document name that identifies exactly one live document.

        Raises
        ------
        DocumentError
            If the document is not in the database, the name is
            unknown, or the name is ambiguous.
        """
        if isinstance(ref, Document):
            if not any(document is ref for document in self.documents):
                raise DocumentError(
                    f"document {ref.name!r} is not part of this database"
                )
            return ref
        matches = [document for document in self.documents if document.name == ref]
        if not matches:
            raise DocumentError(f"no document named {ref!r}")
        if len(matches) > 1:
            raise DocumentError(
                f"document name {ref!r} is ambiguous ({len(matches)} matches); "
                "pass the Document object instead"
            )
        return matches[0]

    def remove_document(self, ref: "Union[Document, str]") -> Document:
        """Detach one document, reclaiming its id span and tag refcounts.

        The document's nodes are dropped from the id map (their ids are
        retired, never reused — the watermark keeps growing), its tags
        are released from the dictionary's live counts, and its root is
        unlinked from the virtual root.  The returned document keeps
        its tree, its node ids and its recorded ``[first_id, end_id)``
        span intact, which is exactly what incremental index
        maintenance needs to delete the rows it once inserted.
        """
        document = self.resolve_document(ref)
        for node in document.iter_nodes():
            self._nodes_by_id.pop(node.node_id, None)
            if node.is_structural:
                self.tags.release(node.label)
        self.virtual_root.children.remove(document.root)
        document.root.parent = None
        self.documents.remove(document)
        self._removed_count += 1
        return document

    def replace_document(
        self, ref: "Union[Document, str]", replacement: Document
    ) -> Document:
        """Remove ``ref`` and add ``replacement`` in its stead.

        The replacement is numbered at the current watermark (fresh
        ids), exactly as if it had been removed and re-added — there is
        no in-place renumbering.  Returns the added replacement.
        """
        self.remove_document(ref)
        return self.add_document(replacement)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def node(self, node_id: int) -> Node:
        """Return the node with the given id.

        Raises
        ------
        DocumentError
            If no node with that id exists.
        """
        try:
            return self._nodes_by_id[node_id]
        except KeyError:
            raise DocumentError(f"no node with id {node_id}") from None

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._nodes_by_id

    def iter_nodes(self) -> Iterator[Node]:
        """All nodes of all documents in document order (virtual root excluded)."""
        for document in self.documents:
            yield from document.iter_nodes()

    def iter_structural(self) -> Iterator[Node]:
        """All element and attribute nodes in document order."""
        return (n for n in self.iter_nodes() if n.is_structural)

    def iter_by_label(self, label: str) -> Iterator[Node]:
        """All structural nodes carrying the given tag or attribute name."""
        return (n for n in self.iter_structural() if n.label == label)

    @property
    def revision(self) -> tuple[int, int, int]:
        """O(1) change fingerprint: (live documents, id watermark, removals).

        Any document addition advances the watermark and any removal
        advances the removal counter, so caches can detect staleness
        without walking the trees.  Index ``1`` (the watermark) is the
        next unassigned node id; the sharded tier reads it directly.
        """
        return (len(self.documents), self._next_id, self._removed_count)

    @property
    def node_count(self) -> int:
        """Number of structural nodes in the database."""
        return sum(1 for _ in self.iter_structural())

    @property
    def value_count(self) -> int:
        """Number of value leaves in the database."""
        return sum(1 for n in self.iter_nodes() if n.is_value)

    @property
    def max_depth(self) -> int:
        """Depth of the deepest structural node (document roots are depth 1)."""
        return max((n.depth for n in self.iter_structural()), default=0)

    def estimated_data_size_bytes(self) -> int:
        """A rough serialized-size estimate of the database.

        Used to report index sizes relative to the data size as the
        paper does in Section 5.2.5 ("1.4 times the data size").
        """
        total = 0
        for node in self.iter_nodes():
            if node.is_value:
                total += len(node.label) + 1
            else:
                # open tag + close tag
                total += 2 * len(node.label) + 5
        return total

    def document_spans(self) -> list[tuple[str, int, int]]:
        """Per-document ``(name, first_id, end_id)`` spans, arrival order.

        :meth:`add_document` numbers each document's nodes contiguously
        (pre-order, continuing from the previous watermark), so every
        document owns one half-open id interval ``[first_id, end_id)``,
        recorded at add time — removals leave the surviving documents'
        spans untouched (their ids never shift), they just drop the
        removed document's span from this list.  The sharded tier uses
        these spans to translate a shard-local id space into the id
        space a single database holding the same documents (in the same
        arrival order) would have assigned, and to scope query answers
        to named documents.
        """
        return [
            (document.name, document.first_id, document.end_id)
            for document in self.documents
        ]

    # ------------------------------------------------------------------
    # Statistics helpers used by the planner and the benches
    # ------------------------------------------------------------------
    def label_counts(self) -> dict[str, int]:
        """Mapping of tag/attribute name to number of occurrences."""
        counts: dict[str, int] = {}
        for node in self.iter_structural():
            counts[node.label] = counts.get(node.label, 0) + 1
        return counts

    def distinct_schema_path_count(self) -> int:
        """Number of distinct root-to-node label paths in the database."""
        seen: set[tuple[str, ...]] = set()
        for node in self.iter_structural():
            seen.add(tuple(node.root_path_labels()))
        return len(seen)


# ----------------------------------------------------------------------
# Programmatic tree construction
# ----------------------------------------------------------------------
class TreeBuilder:
    """A small fluent helper for building trees in code and in tests.

    Example
    -------
    >>> b = TreeBuilder("book")
    >>> b.child("title", text="XML")
    >>> with b.element("author"):
    ...     b.child("fn", text="jane")
    ...     b.child("ln", text="doe")
    >>> doc_root = b.root
    """

    def __init__(self, root_tag: str) -> None:
        self.root = Node(NodeKind.ELEMENT, root_tag)
        self._stack = [self.root]

    @property
    def current(self) -> Node:
        """The element new children are currently appended to."""
        return self._stack[-1]

    def child(self, tag: str, text: Optional[str] = None) -> Node:
        """Append a child element, optionally with a text value leaf."""
        node = self.current.add_child(Node(NodeKind.ELEMENT, tag))
        if text is not None:
            node.add_child(Node(NodeKind.VALUE, text))
        return node

    def attribute(self, name: str, value: str) -> Node:
        """Append an attribute node with its value leaf."""
        node = self.current.add_child(Node(NodeKind.ATTRIBUTE, name))
        node.add_child(Node(NodeKind.VALUE, value))
        return node

    def text(self, value: str) -> Node:
        """Append a text value leaf to the current element."""
        return self.current.add_child(Node(NodeKind.VALUE, value))

    def element(self, tag: str) -> "_BuilderScope":
        """Open a nested element usable as a context manager."""
        node = self.current.add_child(Node(NodeKind.ELEMENT, tag))
        return _BuilderScope(self, node)

    def build(self, name: str = "") -> Document:
        """Finish and return the built document."""
        return Document(self.root, name=name)


class _BuilderScope:
    """Context manager returned by :meth:`TreeBuilder.element`."""

    def __init__(self, builder: TreeBuilder, node: Node) -> None:
        self._builder = builder
        self.node = node

    def __enter__(self) -> Node:
        self._builder._stack.append(self.node)
        return self.node

    def __exit__(self, *exc: object) -> None:
        self._builder._stack.pop()


def build_database(documents: Iterable[Document]) -> XmlDatabase:
    """Convenience constructor: a database from an iterable of documents."""
    db = XmlDatabase()
    for document in documents:
        db.add_document(document)
    return db
