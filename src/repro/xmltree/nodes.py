"""Node model for the XML database.

The paper (Section 2.1) models an XML database as a forest of rooted,
ordered, labeled trees.  Non-leaf nodes are elements and attributes,
labeled with tags or attribute names; leaf nodes are string values.
Each non-leaf node carries a unique numeric identifier (Figure 1(b)).

This module defines :class:`Node`, the single concrete node type used for
elements, attributes and values, plus the :class:`NodeKind` enumeration
that distinguishes the three roles.
"""

from __future__ import annotations

import enum
from typing import Iterator, Optional


class NodeKind(enum.Enum):
    """The three node roles in the paper's data model."""

    ELEMENT = "element"
    ATTRIBUTE = "attribute"
    VALUE = "value"


class Node:
    """A single node in the XML database tree.

    Parameters
    ----------
    kind:
        Whether this node is an element, attribute, or leaf value.
    label:
        The element tag or attribute name for structural nodes, or the
        string content for value nodes.
    node_id:
        Unique numeric identifier.  Value nodes share the document-order
        numbering but are never returned as structural matches; the paper
        only shows ids next to non-leaf nodes, and indices store ids of
        structural nodes only.
    """

    __slots__ = ("kind", "label", "node_id", "parent", "children", "depth")

    def __init__(self, kind: NodeKind, label: str, node_id: int = -1) -> None:
        self.kind = kind
        self.label = label
        self.node_id = node_id
        self.parent: Optional[Node] = None
        self.children: list[Node] = []
        self.depth: int = 0

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def add_child(self, child: "Node") -> "Node":
        """Append ``child`` to this node and return the child."""
        child.parent = self
        child.depth = self.depth + 1
        self.children.append(child)
        return child

    # ------------------------------------------------------------------
    # Classification helpers
    # ------------------------------------------------------------------
    @property
    def is_element(self) -> bool:
        """True when this node is an element."""
        return self.kind is NodeKind.ELEMENT

    @property
    def is_attribute(self) -> bool:
        """True when this node is an attribute."""
        return self.kind is NodeKind.ATTRIBUTE

    @property
    def is_value(self) -> bool:
        """True when this node is a leaf string value."""
        return self.kind is NodeKind.VALUE

    @property
    def is_structural(self) -> bool:
        """True for elements and attributes (the nodes that carry ids in
        the paper's figures and that indices return)."""
        return self.kind is not NodeKind.VALUE

    # ------------------------------------------------------------------
    # Navigation
    # ------------------------------------------------------------------
    def structural_children(self) -> list["Node"]:
        """Children that are elements or attributes (no value leaves)."""
        return [c for c in self.children if c.is_structural]

    def value_children(self) -> list["Node"]:
        """Children that are leaf value nodes."""
        return [c for c in self.children if c.is_value]

    def first_value(self) -> Optional[str]:
        """The string content directly below this node, if any.

        Elements such as ``<title>XML</title>`` have exactly one value
        child; elements with element children usually have none.
        """
        for child in self.children:
            if child.is_value:
                return child.label
        return None

    def iter_subtree(self) -> Iterator["Node"]:
        """Yield this node and every descendant in document order."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def ancestors(self) -> Iterator["Node"]:
        """Yield ancestors from the parent up to the root."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def root_path_labels(self) -> list[str]:
        """Labels on the path from the document root down to this node."""
        labels = [self.label]
        labels.extend(a.label for a in self.ancestors())
        labels.reverse()
        return labels

    def is_descendant_of(self, other: "Node") -> bool:
        """True when ``other`` is a proper ancestor of this node."""
        return any(a is other for a in self.ancestors())

    # ------------------------------------------------------------------
    # Dunder methods
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Node({self.kind.value}, {self.label!r}, id={self.node_id})"

    def __eq__(self, other: object) -> bool:
        return self is other

    def __hash__(self) -> int:
        return id(self)
