"""Parsing XML text into the library's node model.

Two entry points are provided:

* :func:`parse_string` / :func:`parse_file` — parse arbitrary XML using
  the standard library's :mod:`xml.etree.ElementTree` and convert the
  result into :class:`~repro.xmltree.nodes.Node` trees.  Attributes
  become attribute nodes with value leaves; element text becomes value
  leaves, matching the paper's data model (Section 2.1).
* :func:`serialize` — the inverse, mainly used by tests and examples.

Whitespace-only text is dropped: the paper's model has values only at
leaves and the datasets it uses (DBLP, XMark) are data-centric.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import IO, Union

from ..errors import XmlParseError
from .document import Document
from .nodes import Node, NodeKind


def parse_string(text: str, name: str = "") -> Document:
    """Parse an XML string into a :class:`Document`."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise XmlParseError(str(exc)) from exc
    return Document(_convert(root), name=name)


def parse_file(source: Union[str, IO[bytes], IO[str]], name: str = "") -> Document:
    """Parse an XML file (path or file object) into a :class:`Document`."""
    try:
        tree = ET.parse(source)
    except (ET.ParseError, OSError) as exc:
        raise XmlParseError(str(exc)) from exc
    return Document(_convert(tree.getroot()), name=name)


def _convert(element: ET.Element) -> Node:
    """Convert an ElementTree element into a Node subtree."""
    node = Node(NodeKind.ELEMENT, _local_name(element.tag))
    for attr_name, attr_value in element.attrib.items():
        attr = node.add_child(Node(NodeKind.ATTRIBUTE, _local_name(attr_name)))
        attr.add_child(Node(NodeKind.VALUE, attr_value))
    text = (element.text or "").strip()
    if text:
        node.add_child(Node(NodeKind.VALUE, text))
    for child in element:
        node.add_child(_convert(child))
        tail = (child.tail or "").strip()
        if tail:
            node.add_child(Node(NodeKind.VALUE, tail))
    return node


def _local_name(name: str) -> str:
    """Strip a ``{namespace}`` prefix, if any."""
    if name.startswith("{"):
        return name.split("}", 1)[1]
    return name


def serialize(document: Document, indent: str = "  ") -> str:
    """Serialize a :class:`Document` back to XML text.

    The output is intended for inspection and round-trip tests; it is
    not a byte-exact reproduction of arbitrary input (whitespace was
    normalised during parsing).
    """
    lines: list[str] = []
    _serialize_node(document.root, lines, 0, indent)
    return "\n".join(lines)


def _serialize_node(node: Node, lines: list[str], level: int, indent: str) -> None:
    pad = indent * level
    if node.is_value:
        lines.append(f"{pad}{_escape(node.label)}")
        return
    attrs = [c for c in node.children if c.is_attribute]
    others = [c for c in node.children if not c.is_attribute]
    attr_text = "".join(
        f' {a.label}="{_escape(a.first_value() or "")}"' for a in attrs
    )
    if not others:
        lines.append(f"{pad}<{node.label}{attr_text}/>")
        return
    if len(others) == 1 and others[0].is_value:
        lines.append(
            f"{pad}<{node.label}{attr_text}>{_escape(others[0].label)}</{node.label}>"
        )
        return
    lines.append(f"{pad}<{node.label}{attr_text}>")
    for child in others:
        _serialize_node(child, lines, level + 1, indent)
    lines.append(f"{pad}</{node.label}>")


def _escape(text: str) -> str:
    return (
        text.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace('"', "&quot;")
    )
