"""Tag dictionary and designator encoding.

Section 3.1 of the paper dictionary-encodes schema components (element
tags and attribute names) "using special characters (whose lengths
depend on the dictionary size) as designators".  Figure 2 shows ``book``
encoded as ``B``, ``allauthors`` as ``U`` and so on.

Two encodings are provided:

* an integer id per tag (:meth:`TagDictionary.intern`), which the
  library uses internally for schema paths (tuples of ints sort and
  prefix-match exactly like character strings do), and
* a printable *designator string* per tag
  (:meth:`TagDictionary.designator`), which reproduces the paper's
  figures and is used when rendering schema paths for humans and for
  the SQLite backend.

The paper notes that the cost of translating a tag name to the internal
representation is negligible because the table fits in a single page;
the same holds here.

Because documents can be **removed** as well as added, the dictionary
additionally reference-counts the tags the database itself holds
(:meth:`TagDictionary.acquire` / :meth:`TagDictionary.release`, one
count per structural node).  A tag whose count drops to zero keeps its
id — ids are positional and indexes may still carry entries mentioning
it — but :meth:`TagDictionary.id_of` reports it as unknown, so query
translation short-circuits to an empty answer exactly as it would
against a database that never contained the tag.  Index-side interning
(:meth:`TagDictionary.intern`) never touches the counts: refcounts
track document content, not how many indexes mention a tag.
"""

from __future__ import annotations

import string
from typing import Iterable, Iterator


_DESIGNATOR_ALPHABET = string.ascii_uppercase + string.ascii_lowercase + string.digits


class TagDictionary:
    """Bidirectional mapping between tag names, integer ids and designators.

    Ids are assigned in first-seen order starting at 1 (0 is reserved
    for the virtual root label).
    """

    def __init__(self) -> None:
        self._tag_to_id: dict[str, int] = {}
        self._id_to_tag: list[str] = []
        #: Live-occurrence refcounts, maintained only by acquire/release
        #: (document adds and removals); tags interned by indexes alone
        #: have no entry here and count as live.
        self._live_counts: dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._id_to_tag)

    def __contains__(self, tag: str) -> bool:
        return tag in self._tag_to_id

    def __iter__(self) -> Iterator[str]:
        return iter(self._id_to_tag)

    # ------------------------------------------------------------------
    # Interning
    # ------------------------------------------------------------------
    def intern(self, tag: str) -> int:
        """Return the id for ``tag``, assigning a new one if unseen."""
        tag_id = self._tag_to_id.get(tag)
        if tag_id is None:
            self._id_to_tag.append(tag)
            tag_id = len(self._id_to_tag)
            self._tag_to_id[tag] = tag_id
        return tag_id

    def intern_all(self, tags: Iterable[str]) -> list[int]:
        """Intern every tag in ``tags`` and return their ids in order."""
        return [self.intern(t) for t in tags]

    # ------------------------------------------------------------------
    # Live-occurrence reference counting (document adds and removals)
    # ------------------------------------------------------------------
    def acquire(self, tag: str) -> int:
        """Intern ``tag`` and count one live occurrence of it.

        Called once per structural node a document add contributes;
        the id is stable across acquire/release cycles.
        """
        tag_id = self.intern(tag)
        self._live_counts[tag] = self._live_counts.get(tag, 0) + 1
        return tag_id

    def release(self, tag: str) -> int:
        """Drop one live occurrence of ``tag`` (a document removal).

        Returns the remaining live count.  At zero the tag keeps its id
        (indexes may still mention it) but :meth:`id_of` reports it as
        unknown, matching a database that never held the tag.
        """
        count = self._live_counts.get(tag, 0)
        if count <= 0:
            raise KeyError(f"tag {tag!r} has no live occurrences to release")
        count -= 1
        self._live_counts[tag] = count
        return count

    def live_count(self, tag: str) -> int:
        """Number of live occurrences recorded for ``tag``.

        Tags never acquired (interned by an index only, or unknown)
        report zero.
        """
        return self._live_counts.get(tag, 0)

    def _is_live(self, tag: str) -> bool:
        """Refcounted tags are live above zero; untracked tags always."""
        count = self._live_counts.get(tag)
        return count is None or count > 0

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def id_of(self, tag: str) -> int | None:
        """The id of ``tag`` or ``None`` when no live node carries it.

        A missing tag — never seen, or acquired and since fully
        released by document removals — means no node in the database
        carries it, so a query mentioning it has an empty result;
        callers use ``None`` as that signal instead of raising.
        """
        tag_id = self._tag_to_id.get(tag)
        if tag_id is None or not self._is_live(tag):
            return None
        return tag_id

    def tag_of(self, tag_id: int) -> str:
        """The tag name for an id previously returned by :meth:`intern`."""
        return self._id_to_tag[tag_id - 1]

    # ------------------------------------------------------------------
    # Designators (paper Figure 2 style)
    # ------------------------------------------------------------------
    def designator(self, tag: str) -> str:
        """A short printable designator for ``tag``.

        The first 62 tags get a single character; later tags get two or
        more characters, mirroring the paper's remark that designator
        length depends on the dictionary size.
        """
        tag_id = self.intern(tag) - 1
        base = len(_DESIGNATOR_ALPHABET)
        chars = [_DESIGNATOR_ALPHABET[tag_id % base]]
        tag_id //= base
        while tag_id:
            chars.append(_DESIGNATOR_ALPHABET[tag_id % base])
            tag_id //= base
        return "".join(reversed(chars))

    def encode_path(self, tags: Iterable[str], separator: str = "") -> str:
        """Encode a label path as a designator string (``BUAF`` style)."""
        return separator.join(self.designator(t) for t in tags)

    def path_ids(self, tags: Iterable[str]) -> tuple[int, ...]:
        """Encode a label path as a tuple of tag ids."""
        return tuple(self.intern(t) for t in tags)

    def decode_path_ids(self, tag_ids: Iterable[int]) -> list[str]:
        """Decode a tuple of tag ids back into tag names."""
        return [self.tag_of(i) for i in tag_ids]

    def estimated_size_bytes(self) -> int:
        """Approximate space for the translation table (paper: one page).

        Only live tags are charged: removals reclaim the space a
        rebuilt-from-scratch dictionary over the remaining documents
        would not spend.
        """
        return sum(len(t) + 8 for t in self._id_to_tag if self._is_live(t))
