"""An in-memory B+-tree with composite keys, duplicates and prefix scans.

This is the "relational access method" every index in the paper's
family is realised with (Section 3: "we only consider relational
adaptations (using B+-trees)").  The tree supports:

* duplicate keys (an index entry per matching data path),
* exact-match lookups,
* range scans,
* **prefix scans** over composite keys — the operation that lets a
  reversed SchemaPath answer ``//`` (suffix) queries with a single
  lookup (Section 3.2),
* deletion of individual entries (used by the update extension),
* logical-I/O accounting via :class:`~repro.storage.stats.StatsCollector`,
* an on-disk size estimate with optional key prefix compression,
  mirroring the paper's note that DB2 prefix-compresses index keys.

Keys handed to the tree must already be encoded with
:func:`repro.storage.keys.encode_key`; values are arbitrary Python
objects (the library stores tuple row-ids or packed IdLists).
"""

from __future__ import annotations

import bisect
from typing import Any, Iterable, Iterator, Optional

from ..errors import StorageError
from .keys import EncodedKey, is_prefix
from .stats import GLOBAL_STATS, StatsCollector

__all__ = ["BPlusTree"]


class _Leaf:
    __slots__ = ("keys", "values", "next")

    def __init__(self) -> None:
        self.keys: list[EncodedKey] = []
        self.values: list[Any] = []
        self.next: Optional[_Leaf] = None


class _Internal:
    __slots__ = ("keys", "children")

    def __init__(self) -> None:
        # keys[i] is the smallest key in children[i + 1]
        self.keys: list[EncodedKey] = []
        self.children: list[Any] = []


class BPlusTree:
    """B+-tree keyed by encoded composite keys.

    Parameters
    ----------
    order:
        Maximum number of entries per node.  The default (128) models a
        few-KB page of small composite keys.
    stats:
        Counter sink; defaults to the module-global collector.
    name:
        Identifier used in ``repr`` and error messages.
    """

    def __init__(
        self,
        order: int = 128,
        stats: Optional[StatsCollector] = None,
        name: str = "btree",
    ) -> None:
        if order < 4:
            raise StorageError("B+-tree order must be at least 4")
        self.order = order
        self.stats = stats if stats is not None else GLOBAL_STATS
        self.name = name
        self._root: Any = _Leaf()
        self._height = 1
        self._size = 0

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        """Number of levels from root to leaves (a single leaf is height 1)."""
        return self._height

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BPlusTree(name={self.name!r}, entries={self._size}, height={self._height})"

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def insert(self, key: EncodedKey, value: Any) -> None:
        """Insert one entry; duplicate keys are allowed.

        Charges one ``btree_writes`` (per-entry CPU work) plus
        ``btree_page_writes`` at page granularity: the leaf the entry
        lands in, one page per node created by a split, and the new
        root when the tree grows — the write-side counters priced by
        :func:`~repro.storage.stats.maintenance_cost`.
        """
        self.stats.btree_writes += 1
        self.stats.btree_page_writes += 1  # the leaf holding the new entry
        split = self._insert(self._root, key, value)
        if split is not None:
            separator, right = split
            new_root = _Internal()
            new_root.keys = [separator]
            new_root.children = [self._root, right]
            self._root = new_root
            self._height += 1
            self.stats.btree_page_writes += 1  # the new root page
        self._size += 1

    def bulk_load(self, entries: Iterable[tuple[EncodedKey, Any]]) -> None:
        """Insert many entries.

        Entries do not have to be sorted; sorting them first keeps the
        tree balanced and is what a relational loader would do.
        """
        for key, value in sorted(entries, key=lambda kv: kv[0]):
            self.insert(key, value)

    def _insert(self, node: Any, key: EncodedKey, value: Any):
        if isinstance(node, _Leaf):
            index = bisect.bisect_right(node.keys, key)
            node.keys.insert(index, key)
            node.values.insert(index, value)
            if len(node.keys) > self.order:
                return self._split_leaf(node)
            return None
        index = bisect.bisect_right(node.keys, key)
        split = self._insert(node.children[index], key, value)
        if split is not None:
            separator, right = split
            node.keys.insert(index, separator)
            node.children.insert(index + 1, right)
            if len(node.children) > self.order:
                return self._split_internal(node)
        return None

    def _split_leaf(self, leaf: _Leaf):
        self.stats.btree_page_writes += 1  # the newly allocated right leaf
        middle = len(leaf.keys) // 2
        right = _Leaf()
        right.keys = leaf.keys[middle:]
        right.values = leaf.values[middle:]
        leaf.keys = leaf.keys[:middle]
        leaf.values = leaf.values[:middle]
        right.next = leaf.next
        leaf.next = right
        return right.keys[0], right

    def _split_internal(self, node: _Internal):
        self.stats.btree_page_writes += 1  # the newly allocated right node
        middle = len(node.keys) // 2
        separator = node.keys[middle]
        right = _Internal()
        right.keys = node.keys[middle + 1 :]
        right.children = node.children[middle + 1 :]
        node.keys = node.keys[:middle]
        node.children = node.children[: middle + 1]
        return separator, right

    # ------------------------------------------------------------------
    # Deletion (entry-level; used by the maintenance extension)
    # ------------------------------------------------------------------
    def delete(self, key: EncodedKey, value: Any = None) -> int:
        """Delete entries with ``key``.

        When ``value`` is given only entries whose value equals it are
        removed; otherwise every entry with the key is removed.  Returns
        the number of entries deleted.  Underfull nodes are not
        rebalanced — deletions here come from incremental index
        maintenance (``remove_document``) and lookups stay correct
        either way; the churn tests pin that every structural invariant
        (leaf chain order, uniform leaf depth, size accounting) holds
        through arbitrary delete/reinsert interleavings.

        Charges ``btree_deletes`` per removed entry (per-entry CPU
        work, the delete-side analogue of ``btree_writes``) plus one
        ``btree_page_writes`` per leaf actually modified — the counters
        :func:`~repro.storage.stats.maintenance_cost` prices.
        """
        leaf = self._find_leaf(key, count=False)
        removed = 0
        while leaf is not None:
            removed_here = 0
            index = bisect.bisect_left(leaf.keys, key)
            while index < len(leaf.keys) and leaf.keys[index] == key:
                if value is None or leaf.values[index] == value:
                    del leaf.keys[index]
                    del leaf.values[index]
                    removed += 1
                    removed_here += 1
                    self._size -= 1
                else:
                    index += 1
            if removed_here:
                self.stats.btree_page_writes += 1  # the modified leaf
            if leaf.keys and leaf.keys[-1] > key:
                break
            leaf = leaf.next
            if leaf is None or (leaf.keys and leaf.keys[0] > key):
                break
        self.stats.btree_deletes += max(removed, 1)
        return removed

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def _find_leaf(self, key: EncodedKey, count: bool = True) -> _Leaf:
        """Leaf that holds the *first* entry with ``key`` (duplicates may
        continue in following leaves).

        The descent uses ``bisect_left`` so that, when a separator equals
        the probe key, the left child — which may hold earlier duplicates
        — is visited first; forward leaf scans then cover the rest.
        """
        node = self._root
        if count:
            self.stats.btree_node_reads += 1
        while isinstance(node, _Internal):
            index = bisect.bisect_left(node.keys, key)
            node = node.children[index]
            if count:
                self.stats.btree_node_reads += 1
        return node

    def search(self, key: EncodedKey) -> list[Any]:
        """All values stored under exactly ``key``."""
        self.stats.index_lookups += 1
        return [value for _, value in self._scan_from(key, lambda k: k == key, key)]

    def scan_prefix(self, prefix: EncodedKey) -> Iterator[tuple[EncodedKey, Any]]:
        """All ``(key, value)`` entries whose key starts with ``prefix``.

        This is the single-lookup suffix match of Section 3.2: probing
        ``(leaf value, reversed subpath...)`` returns every data path
        ending in that subpath.
        """
        self.stats.index_lookups += 1
        yield from self._scan_from(prefix, lambda k: is_prefix(prefix, k), prefix)

    def scan_prefix_items(self, prefix: EncodedKey) -> list[tuple[EncodedKey, Any]]:
        """Materialised :meth:`scan_prefix` with identical cost accounting.

        The columnar kernels consume whole lookup results at once; this
        batch variant walks the same leaves and charges exactly the
        counters the generator would when fully consumed — one
        ``index_lookups``, the descent's ``btree_node_reads``, one
        ``btree_entries_scanned`` per entry examined (including the
        first non-matching one) and one ``btree_node_reads`` per leaf
        hop — without a generator resumption per entry.
        """
        stats = self.stats
        stats.index_lookups += 1
        leaf = self._find_leaf(prefix)
        index = bisect.bisect_left(leaf.keys, prefix)
        length = len(prefix)
        scanned = 0
        out: list[tuple[EncodedKey, Any]] = []
        append = out.append
        while True:
            keys = leaf.keys
            values = leaf.values
            count = len(keys)
            while index < count:
                key = keys[index]
                scanned += 1
                if key[:length] != prefix:
                    stats.btree_entries_scanned += scanned
                    return out
                append((key, values[index]))
                index += 1
            if leaf.next is None:
                stats.btree_entries_scanned += scanned
                return out
            leaf = leaf.next
            stats.btree_node_reads += 1
            index = 0

    def scan_range(
        self, low: EncodedKey, high: EncodedKey, include_high: bool = False
    ) -> Iterator[tuple[EncodedKey, Any]]:
        """Entries with ``low <= key < high`` (or ``<= high`` when asked)."""
        self.stats.index_lookups += 1
        if include_high:
            predicate = lambda k: k <= high  # noqa: E731 - tiny local predicate
        else:
            predicate = lambda k: k < high  # noqa: E731
        yield from self._scan_from(low, predicate, low)

    def scan_all(self) -> Iterator[tuple[EncodedKey, Any]]:
        """Every entry in key order (a full index scan)."""
        self.stats.index_lookups += 1
        node = self._root
        self.stats.btree_node_reads += 1
        while isinstance(node, _Internal):
            node = node.children[0]
            self.stats.btree_node_reads += 1
        leaf: Optional[_Leaf] = node
        while leaf is not None:
            for key, value in zip(leaf.keys, leaf.values):
                self.stats.btree_entries_scanned += 1
                yield key, value
            leaf = leaf.next
            if leaf is not None:
                self.stats.btree_node_reads += 1

    def _scan_from(self, start: EncodedKey, keep, lower_bound: EncodedKey):
        """Scan leaf entries from the first key >= ``lower_bound`` while
        ``keep(key)`` holds."""
        leaf = self._find_leaf(start)
        index = bisect.bisect_left(leaf.keys, lower_bound)
        while True:
            while index < len(leaf.keys):
                key = leaf.keys[index]
                self.stats.btree_entries_scanned += 1
                if not keep(key):
                    return
                yield key, leaf.values[index]
                index += 1
            if leaf.next is None:
                return
            leaf = leaf.next
            self.stats.btree_node_reads += 1
            index = 0

    def count_prefix(self, prefix: EncodedKey) -> int:
        """Number of entries whose key starts with ``prefix``."""
        return sum(1 for _ in self.scan_prefix(prefix))

    # ------------------------------------------------------------------
    # Space accounting
    # ------------------------------------------------------------------
    def estimated_size_bytes(
        self,
        key_size_of=None,
        value_size_of=None,
        prefix_compression: bool = False,
        entry_overhead: int = 8,
        node_overhead: int = 64,
    ) -> int:
        """Approximate on-disk size of the index.

        Parameters
        ----------
        key_size_of / value_size_of:
            Callables mapping an entry's key / value to a byte count.
            Defaults assume 8 bytes per key component and per value.
        prefix_compression:
            When true, a key is charged only for the components in which
            it differs from the previous key in order, modelling the
            prefix compression of indexed columns the paper relies on
            for space efficiency (Section 3.1).
        """
        if key_size_of is None:
            key_size_of = lambda key: 8 * len(key)  # noqa: E731
        if value_size_of is None:
            value_size_of = lambda value: 8  # noqa: E731

        total = 0
        previous_key: Optional[EncodedKey] = None
        node = self._root
        while isinstance(node, _Internal):
            node = node.children[0]
        leaf: Optional[_Leaf] = node
        leaves = 0
        while leaf is not None:
            leaves += 1
            for key, value in zip(leaf.keys, leaf.values):
                if prefix_compression and previous_key is not None:
                    common = 0
                    for a, b in zip(previous_key, key):
                        if a != b:
                            break
                        common += 1
                    charged = key[common:]
                    total += key_size_of(charged)
                else:
                    total += key_size_of(key)
                total += value_size_of(value) + entry_overhead
                previous_key = key
            leaf = leaf.next
        # Internal levels: roughly entries / order separators per level.
        internal_nodes = 0
        level_nodes = max(leaves, 1)
        while level_nodes > 1:
            level_nodes = max(1, (level_nodes + self.order - 1) // self.order)
            internal_nodes += level_nodes
        total += (leaves + internal_nodes) * node_overhead
        return total
