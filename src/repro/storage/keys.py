"""Sortable key encoding for composite B+-tree keys.

Index keys in this library are composites such as
``LeafValue · ReverseSchemaPath`` (ROOTPATHS, Section 3.2) or
``HeadId · LeafValue · ReverseSchemaPath`` (DATAPATHS, Section 3.3).
Components can be integers (node ids, tag ids), strings (leaf values)
or ``None`` (no leaf value).  Python cannot order values of mixed types,
so every component is wrapped in a small tagged tuple that makes the
composite keys totally ordered:

* ``None``            → ``(0,)``
* ``int`` / ``float`` → ``(1, value)``
* ``str``             → ``(2, value)``

Because the reverse schema path is the *last* part of every composite
key (exactly why the paper places it last), keys are variable length
and prefix scans over the encoded tuples implement the paper's
"B+-trees are very efficient for prefix matches" observation directly.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Union

from ..errors import KeyEncodingError

KeyComponent = Union[None, int, float, str]
EncodedComponent = tuple
EncodedKey = tuple


def encode_component(value: KeyComponent) -> EncodedComponent:
    """Encode one key component into a sortable tagged tuple."""
    if value is None:
        return (0,)
    if isinstance(value, bool):
        # bool is an int subclass but is almost certainly a caller bug.
        raise KeyEncodingError("boolean key components are not supported")
    if isinstance(value, (int, float)):
        return (1, value)
    if isinstance(value, str):
        return (2, value)
    raise KeyEncodingError(f"cannot encode key component of type {type(value)!r}")


def encode_key(components: Iterable[KeyComponent]) -> EncodedKey:
    """Encode a sequence of components into one sortable composite key."""
    return tuple(encode_component(c) for c in components)


def decode_component(component: EncodedComponent) -> KeyComponent:
    """Invert :func:`encode_component`."""
    if component[0] == 0:
        return None
    return component[1]


def decode_key(key: EncodedKey) -> tuple[KeyComponent, ...]:
    """Invert :func:`encode_key`."""
    return tuple(decode_component(c) for c in key)


def is_prefix(prefix: EncodedKey, key: EncodedKey) -> bool:
    """True when ``key`` starts with ``prefix`` component-wise."""
    return key[: len(prefix)] == prefix


def key_byte_size(components: Sequence[KeyComponent]) -> int:
    """Approximate on-disk byte size of a key, used for space accounting.

    Integers cost 4 bytes, floats 8, strings their length plus a length
    byte, and ``None`` a single byte.  This mirrors the simple fixed /
    varchar column sizes a relational system would use.
    """
    total = 0
    for component in components:
        if component is None:
            total += 1
        elif isinstance(component, int):
            total += 4
        elif isinstance(component, float):
            total += 8
        elif isinstance(component, str):
            total += len(component) + 1
        else:  # pragma: no cover - encode_component would have raised
            raise KeyEncodingError(f"cannot size component {component!r}")
    return total
