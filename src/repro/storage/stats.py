"""Logical cost accounting for the storage and execution layers.

The paper reports wall-clock times on DB2 running on 2002-era hardware.
Absolute times are not reproducible, so every component of this library
additionally reports *logical* work through a shared
:class:`StatsCollector`:

* ``btree_node_reads`` — internal + leaf B+-tree nodes visited,
* ``btree_entries_scanned`` — leaf entries touched during range scans,
* ``heap_page_reads`` — heap pages fetched by table scans,
* ``index_lookups`` — number of distinct index probes issued,
* ``join_probes`` / ``join_comparisons`` — work done by join operators,
* ``tuples_produced`` — tuples emitted by plan roots.

Benchmarks use these counters (together with wall-clock time) to check
that the *shape* of the paper's results holds: which strategy wins, by
roughly what factor, and where crossovers occur.

The write-side counters (``btree_writes``, ``btree_deletes``,
``btree_page_writes``, ``heap_page_writes``) price index maintenance —
builds, incremental inserts on ``add_document`` and incremental deletes
on ``remove_document`` — in the same currency, via
:func:`maintenance_cost`.  See ``docs/ARCHITECTURE.md`` ("The cost
currency") for how the two formulas relate.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, fields
from typing import Iterator, Mapping

#: Weight of one page-granularity read (B+-tree node or heap page) in the
#: aggregate cost proxy, relative to per-entry / per-comparison CPU work.
PAGE_READ_WEIGHT = 10

#: Weight of one page-granularity write in the maintenance cost proxy.
#: Writes are priced in the same currency as reads so the cost of
#: incremental index maintenance is directly comparable to (and
#: benchmarkable against) the cost of rebuilding an index from scratch.
PAGE_WRITE_WEIGHT = 10


#: The StatsCollector counters that record self-driving *activity*
#: (retries, failovers, revives, rebalances, moves) rather than logical
#: cost.  The observability scrape exports these — alongside the cost
#: counters — as ``repro_stats_<name>`` gauges; keeping the list here
#: means the metric surface and the dataclass cannot drift apart.
ACTIVITY_COUNTERS = (
    "documents_moved",
    "reads_retried",
    "replicas_failed",
    "replicas_revived",
    "auto_rebalances",
)


def weighted_cost(counters: Mapping[str, int]) -> int:
    """The aggregate cost proxy over a counter mapping.

    This is the single definition of the benchmark cost formula: both
    :meth:`StatsCollector.total_cost` and per-query cost dicts (see
    :class:`~repro.planner.evaluator.QueryResult`) are priced through it,
    so the weighting cannot drift between the two.  Write counters do
    not contribute — queries never write, and charging build work to
    the query that happened to trigger an on-demand build would skew
    every figure; maintenance work is priced separately by
    :func:`maintenance_cost` in the same currency.
    """
    return (
        PAGE_READ_WEIGHT
        * (counters.get("btree_node_reads", 0) + counters.get("heap_page_reads", 0))
        + counters.get("btree_entries_scanned", 0)
        + counters.get("join_comparisons", 0)
        + counters.get("join_probes", 0)
    )


def sum_snapshots(*snapshots: Mapping[str, int]) -> dict[str, int]:
    """Sum counter mappings key-wise into one counter dict.

    The single aggregation path for combining per-shard (or otherwise
    partitioned) cost measurements: :meth:`StatsCollector.merge`,
    :meth:`StatsCollector.__add__` and the scatter-gather result merge
    all reduce to it, so cross-shard totals cannot drift from
    single-collector arithmetic.  Unknown keys are carried through —
    callers may sum plain cost dicts that hold only a few counters.
    """
    total: dict[str, int] = {}
    for snapshot in snapshots:
        for key, value in snapshot.items():
            total[key] = total.get(key, 0) + value
    return total


def maintenance_cost(counters: Mapping[str, int]) -> int:
    """The aggregate cost proxy for index maintenance work.

    Expressed in the same weighted currency as :func:`weighted_cost`
    (pages dominate per-entry CPU work), so "incrementally insert one
    document", "incrementally remove one document" and "rebuild the
    index from scratch" are comparable numbers: page-granular B+-tree
    and heap writes carry :data:`PAGE_WRITE_WEIGHT`, per-entry insert
    work (``btree_writes``) and per-entry delete work
    (``btree_deletes``) count like a scanned entry.
    """
    return (
        PAGE_WRITE_WEIGHT
        * (counters.get("btree_page_writes", 0) + counters.get("heap_page_writes", 0))
        + counters.get("btree_writes", 0)
        + counters.get("btree_deletes", 0)
    )


@dataclass
class StatsCollector:
    """Mutable set of logical-cost counters shared by storage components."""

    btree_node_reads: int = 0
    btree_entries_scanned: int = 0
    btree_writes: int = 0
    btree_deletes: int = 0
    btree_page_writes: int = 0
    heap_page_reads: int = 0
    heap_page_writes: int = 0
    index_lookups: int = 0
    join_probes: int = 0
    join_comparisons: int = 0
    tuples_produced: int = 0
    #: Completed cross-shard document moves (online rebalancing).  Not a
    #: cost term of either formula — a move's real work is already
    #: charged as delete-side maintenance on the source shard and
    #: insert-side maintenance on the target shard — but carried here so
    #: movement activity aggregates through the same snapshot / merge /
    #: diff machinery as every other counter.
    documents_moved: int = 0
    #: Operations counters of the self-driving tier (replica failover
    #: and watermark-triggered auto-rebalance).  Like
    #: ``documents_moved`` they are activity records, not cost terms —
    #: the work a retry or a rebalance performs is already charged
    #: through the read/maintenance counters above — but carrying them
    #: here means failover and auto-rebalance activity flows through
    #: the same snapshot / merge / diff machinery as everything else.
    reads_retried: int = 0
    replicas_failed: int = 0
    replicas_revived: int = 0
    auto_rebalances: int = 0

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Zero every counter."""
        for f in fields(self):
            setattr(self, f.name, 0)

    def snapshot(self) -> dict[str, int]:
        """A plain-dict copy of all counters."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def total_logical_io(self) -> int:
        """Reads that would hit the buffer pool: B+-tree nodes + heap pages."""
        return self.btree_node_reads + self.heap_page_reads

    def total_cost(self) -> int:
        """An aggregate cost proxy used by the benchmark harness.

        Weighted so that page-granularity reads dominate per-entry and
        per-comparison CPU work, mirroring an I/O-bound cost model.
        The formula lives in :func:`weighted_cost`.
        """
        return weighted_cost(self.snapshot())

    def total_maintenance_cost(self) -> int:
        """Aggregate write-side cost proxy (index builds and updates).

        The formula lives in :func:`maintenance_cost` and shares the
        page weighting of :meth:`total_cost`, so maintenance work is
        benchmarkable against query work in one currency.
        """
        return maintenance_cost(self.snapshot())

    def diff(self, earlier: dict[str, int]) -> dict[str, int]:
        """Counter deltas relative to an earlier :meth:`snapshot`."""
        return {k: getattr(self, k) - v for k, v in earlier.items()}

    @contextlib.contextmanager
    def measure(self) -> Iterator[dict[str, int]]:
        """Context manager yielding a dict that is filled with the deltas
        of every counter when the block exits."""
        before = self.snapshot()
        result: dict[str, int] = {}
        yield result
        result.update(self.diff(before))

    def merge(self, *others: "StatsCollector") -> "StatsCollector":
        """Add the counters of ``others`` into this collector, in place.

        The mutating aggregation primitive behind cross-shard totals:
        a gather step merges every shard's collector into one summary
        collector.  Returns ``self`` so merges chain.  Shares the
        key-wise arithmetic of :func:`sum_snapshots` — the one
        aggregation code path — rather than re-implementing it.
        """
        combined = sum_snapshots(self.snapshot(), *(o.snapshot() for o in others))
        for f in fields(self):
            setattr(self, f.name, combined[f.name])
        return self

    def __add__(self, other: "StatsCollector") -> "StatsCollector":
        return StatsCollector().merge(self, other)


#: A module-level collector used when callers do not supply their own.
GLOBAL_STATS = StatsCollector()
