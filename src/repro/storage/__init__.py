"""Storage substrate: B+-tree access method, heap files, key encoding, stats.

These are the "access methods of the underlying database system" the
paper realises its index family with (Section 3 and 5.1.2).  All
components report logical work into a shared
:class:`~repro.storage.stats.StatsCollector` so that experiments can be
reproduced with deterministic cost counters as well as wall-clock time.
"""

from .btree import BPlusTree
from .heap import HeapFile
from .keys import (
    EncodedKey,
    KeyComponent,
    decode_component,
    decode_key,
    encode_component,
    encode_key,
    is_prefix,
    key_byte_size,
)
from .stats import GLOBAL_STATS, StatsCollector, sum_snapshots

__all__ = [
    "BPlusTree",
    "EncodedKey",
    "GLOBAL_STATS",
    "HeapFile",
    "KeyComponent",
    "StatsCollector",
    "decode_component",
    "decode_key",
    "encode_component",
    "encode_key",
    "is_prefix",
    "key_byte_size",
    "sum_snapshots",
]
