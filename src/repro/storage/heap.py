"""Heap-file table storage with page-granular read accounting.

Relations such as the Edge table, the 4-ary path relation, Access
Support Relations and Join Index tables are stored in :class:`HeapFile`
objects: append-only collections of fixed-capacity pages.  Scanning a
heap charges one ``heap_page_reads`` per page touched, which is the
logical analogue of the sequential I/O a relational system performs for
an unindexed access.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Optional

from .stats import GLOBAL_STATS, StatsCollector


class HeapFile:
    """An append-only row store split into pages.

    Parameters
    ----------
    rows_per_page:
        How many rows fit in a page.  Benches use the default; tests
        shrink it to exercise multi-page behaviour.
    """

    def __init__(
        self,
        rows_per_page: int = 64,
        stats: Optional[StatsCollector] = None,
        name: str = "heap",
    ) -> None:
        self.rows_per_page = max(1, rows_per_page)
        self.stats = stats if stats is not None else GLOBAL_STATS
        self.name = name
        self._pages: list[list[Any]] = []

    # ------------------------------------------------------------------
    def append(self, row: Any) -> tuple[int, int]:
        """Append ``row`` and return its ``(page_number, slot)`` row id."""
        if not self._pages or len(self._pages[-1]) >= self.rows_per_page:
            self._pages.append([])
            self.stats.heap_page_writes += 1
        page = self._pages[-1]
        page.append(row)
        return len(self._pages) - 1, len(page) - 1

    def extend(self, rows: Iterable[Any]) -> None:
        """Append many rows."""
        for row in rows:
            self.append(row)

    # ------------------------------------------------------------------
    def delete_where(self, predicate) -> int:
        """Remove every row for which ``predicate(row)`` is true.

        Pages are filtered in place; a page whose contents changed
        charges one ``heap_page_writes`` (and a read to inspect it —
        the scan half of a delete).  Emptied pages are kept so
        previously returned ``(page, slot)`` row ids of *surviving
        pages* stay stable; slots inside a modified page shift, which
        is fine for the Edge table because it is only ever scanned or
        reached through its secondary indexes, never by stored row id.
        Returns the number of rows removed.
        """
        removed = 0
        for page in self._pages:
            self.stats.heap_page_reads += 1
            kept = [row for row in page if not predicate(row)]
            if len(kept) != len(page):
                removed += len(page) - len(kept)
                page[:] = kept
                self.stats.heap_page_writes += 1
        return removed

    # ------------------------------------------------------------------
    def fetch(self, row_id: tuple[int, int]) -> Any:
        """Fetch one row by ``(page, slot)``, charging one page read."""
        page_number, slot = row_id
        self.stats.heap_page_reads += 1
        return self._pages[page_number][slot]

    def scan(self) -> Iterator[Any]:
        """Full scan in insertion order, charging a read per page."""
        for page in self._pages:
            self.stats.heap_page_reads += 1
            yield from page

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(len(page) for page in self._pages)

    @property
    def page_count(self) -> int:
        """Number of pages currently allocated."""
        return len(self._pages)

    def estimated_size_bytes(self, row_size_of=None, page_overhead: int = 32) -> int:
        """Approximate on-disk size of the heap."""
        if row_size_of is None:
            row_size_of = _default_row_size
        total = self.page_count * page_overhead
        for page in self._pages:
            for row in page:
                total += row_size_of(row)
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HeapFile(name={self.name!r}, rows={len(self)}, pages={self.page_count})"


def _default_row_size(row: Any) -> int:
    """Default byte-size model: 8 bytes per scalar field, strings by length."""
    if isinstance(row, (tuple, list)):
        return sum(_default_row_size(field) for field in row) + 4
    if row is None:
        return 1
    if isinstance(row, str):
        return len(row) + 1
    if isinstance(row, float):
        return 8
    if isinstance(row, int):
        return 4
    return 8
