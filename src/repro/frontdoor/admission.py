"""Admission control: per-tenant token buckets and a bounded queue.

Two gates stand between a decoded request and the engine:

* **quota** — a token bucket per tenant (rate/burst), refilled from the
  shared observability clock.  An empty bucket is a *fast* 429 with a
  ``retry_after`` hint; no queueing, no engine work.
* **concurrency** — at most ``max_concurrency`` flight leaders execute
  at once, with at most ``max_queue`` more waiting.  A request beyond
  both bounds is a *fast* 503: under overload the server sheds load in
  microseconds instead of growing an unbounded queue whose tail
  latency nobody survives.  (Coalesced followers never take a slot —
  they ride their leader's execution — which is what makes the
  hot-query qps multiply under the bench's skewed mix.)

Everything here runs on the event loop, single-threaded by
construction, so the counters need no locks; ``describe()`` reads of
plain ints from other threads are safe.  Draining flips one flag: new
arrivals get a 503 while admitted work (running *and* queued) finishes,
and :meth:`AdmissionController.drain` resolves once the last slot
empties.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Callable, Mapping, Optional, Union

from ..obs.clock import now as _now
from .models import DrainingError, QueueFullError, QuotaExceededError

__all__ = ["AdmissionController", "TokenBucket"]


class TokenBucket:
    """The classic rate limiter: ``burst`` capacity refilled at ``rate``/s.

    ``rate=None`` disables the bucket (always admits).  The clock is
    injectable so tests drive refill deterministically.
    """

    def __init__(
        self,
        rate: Optional[float],
        burst: Optional[float] = None,
        clock: Callable[[], float] = _now,
    ) -> None:
        if rate is not None and rate <= 0:
            raise ValueError(f"rate must be positive (or None for unlimited): {rate}")
        self.rate = rate
        self.burst = float(burst if burst is not None else (rate or 0) or 1.0)
        if self.burst <= 0:
            raise ValueError(f"burst must be positive: {burst}")
        self._clock = clock
        self.tokens = self.burst
        self._refilled_at = clock()
        self.admitted = 0
        self.rejected = 0

    def _refill(self) -> None:
        elapsed = self._clock() - self._refilled_at
        self._refilled_at += elapsed
        if self.rate is not None and elapsed > 0:
            self.tokens = min(self.burst, self.tokens + elapsed * self.rate)

    def try_acquire(self, amount: float = 1.0) -> bool:
        """Take ``amount`` tokens if available; never blocks."""
        if self.rate is None:
            self.admitted += 1
            return True
        self._refill()
        if self.tokens >= amount:
            self.tokens -= amount
            self.admitted += 1
            return True
        self.rejected += 1
        return False

    def retry_after(self, amount: float = 1.0) -> float:
        """Seconds until ``amount`` tokens will have refilled."""
        if self.rate is None:
            return 0.0
        self._refill()
        missing = max(0.0, amount - self.tokens)
        return missing / self.rate

    def describe(self) -> dict[str, object]:
        return {
            "rate": self.rate,
            "burst": self.burst,
            "tokens": round(self.tokens, 3),
            "admitted": self.admitted,
            "rejected": self.rejected,
        }


#: A tenant quota spec: an existing bucket, a rate, or a (rate, burst)
#: pair — normalized by :meth:`AdmissionController._make_bucket`.
QuotaSpec = Union[TokenBucket, float, tuple]


class AdmissionController:
    """Bounded admission: quota gate, then a concurrency gate.

    ``max_concurrency`` slots execute; up to ``max_queue`` more wait in
    FIFO order; everything else is shed immediately.  ``quotas`` maps
    tenant name to a quota spec; ``default_quota`` covers unnamed
    tenants (``None`` = unlimited).
    """

    def __init__(
        self,
        max_concurrency: int = 8,
        max_queue: int = 64,
        quotas: Optional[Mapping[str, QuotaSpec]] = None,
        default_quota: Optional[QuotaSpec] = None,
        clock: Callable[[], float] = _now,
    ) -> None:
        if max_concurrency < 1:
            raise ValueError(f"max_concurrency must be >= 1: {max_concurrency}")
        if max_queue < 0:
            raise ValueError(f"max_queue must be >= 0: {max_queue}")
        self.max_concurrency = max_concurrency
        self.max_queue = max_queue
        self._clock = clock
        self._default_quota = default_quota
        self.buckets: dict[str, TokenBucket] = {}
        for tenant, spec in (quotas or {}).items():
            self.buckets[tenant] = self._make_bucket(spec)
        self._in_flight = 0
        self._waiters: deque[asyncio.Future] = deque()
        self._draining = False
        self._drained: Optional[asyncio.Future] = None
        self.admitted = 0
        self.queued = 0
        self.queue_peak = 0
        self.rejected_quota = 0
        self.rejected_queue = 0
        self.rejected_draining = 0

    # ------------------------------------------------------------------
    # Quota gate
    # ------------------------------------------------------------------
    def _make_bucket(self, spec: QuotaSpec) -> TokenBucket:
        if isinstance(spec, TokenBucket):
            return spec
        if isinstance(spec, tuple):
            rate, burst = spec
            return TokenBucket(rate, burst, clock=self._clock)
        return TokenBucket(spec, clock=self._clock)

    def bucket_for(self, tenant: str) -> Optional[TokenBucket]:
        """The tenant's bucket, lazily created from the default quota."""
        bucket = self.buckets.get(tenant)
        if bucket is None and self._default_quota is not None:
            bucket = self._make_bucket(self._default_quota)
            self.buckets[tenant] = bucket
        return bucket

    def check_quota(self, tenant: str) -> None:
        """Charge one request to the tenant's bucket or raise 429."""
        bucket = self.bucket_for(tenant)
        if bucket is None:
            return
        if not bucket.try_acquire():
            self.rejected_quota += 1
            raise QuotaExceededError(
                f"tenant {tenant!r} exceeded its rate of {bucket.rate}/s",
                retry_after=bucket.retry_after(),
            )

    # ------------------------------------------------------------------
    # Concurrency gate
    # ------------------------------------------------------------------
    @property
    def in_flight(self) -> int:
        return self._in_flight

    @property
    def queue_depth(self) -> int:
        return len(self._waiters)

    @property
    def draining(self) -> bool:
        return self._draining

    async def acquire(self) -> None:
        """Take one execution slot, waiting in the bounded queue.

        Raises :class:`DrainingError` once :meth:`drain` was called and
        :class:`QueueFullError` when the queue is at capacity — both
        without yielding to the loop, so rejection latency is the cost
        of a counter check, not of the queue it refused to join.
        """
        if self._draining:
            self.rejected_draining += 1
            raise DrainingError("server is draining; not accepting new queries")
        if self._in_flight < self.max_concurrency:
            self._in_flight += 1
            self.admitted += 1
            return
        if len(self._waiters) >= self.max_queue:
            self.rejected_queue += 1
            raise QueueFullError(
                f"admission queue full ({self.max_queue} waiting, "
                f"{self._in_flight} executing)"
            )
        waiter: asyncio.Future = asyncio.get_running_loop().create_future()
        self._waiters.append(waiter)
        self.queued += 1
        self.queue_peak = max(self.queue_peak, len(self._waiters))
        try:
            # The releasing request transfers its slot by resolving the
            # future, so ``_in_flight`` never dips in between.
            await waiter
        except asyncio.CancelledError:
            if waiter.cancelled():
                # Abandoned before the hand-off: just leave the queue
                # (release() also skips cancelled waiters it finds).
                try:
                    self._waiters.remove(waiter)
                except ValueError:
                    pass
            else:
                # Cancelled after release() handed us the slot: give it
                # to the next waiter (or back to the pool).
                self.release()
            raise
        self.admitted += 1

    def release(self) -> None:
        """Return one slot: hand it to the next live waiter, else free it."""
        while self._waiters:
            waiter = self._waiters.popleft()
            if not waiter.cancelled():
                waiter.set_result(None)
                return
        self._in_flight -= 1
        if (
            self._draining
            and self._in_flight == 0
            and self._drained is not None
            and not self._drained.done()
        ):
            self._drained.set_result(None)

    # ------------------------------------------------------------------
    # Graceful drain
    # ------------------------------------------------------------------
    async def drain(self) -> None:
        """Stop admitting, then wait for running *and* queued work.

        Queued requests were already admitted past the shed point, so
        they run to completion; only new arrivals see 503s.  Idempotent
        and re-awaitable.
        """
        self._draining = True
        if self._in_flight == 0 and not self._waiters:
            return
        if self._drained is None:
            self._drained = asyncio.get_running_loop().create_future()
        await asyncio.shield(self._drained)

    def describe(self) -> dict[str, object]:
        return {
            "max_concurrency": self.max_concurrency,
            "max_queue": self.max_queue,
            "in_flight": self._in_flight,
            "queue_depth": len(self._waiters),
            "queue_peak": self.queue_peak,
            "admitted": self.admitted,
            "queued": self.queued,
            "rejected_quota": self.rejected_quota,
            "rejected_queue": self.rejected_queue,
            "rejected_draining": self.rejected_draining,
            "draining": self._draining,
            "tenants": {
                tenant: bucket.describe()
                for tenant, bucket in sorted(self.buckets.items())
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AdmissionController(in_flight={self._in_flight}/"
            f"{self.max_concurrency}, queued={len(self._waiters)}/"
            f"{self.max_queue}, draining={self._draining})"
        )
