"""Typed request/response models and errors of the front door.

The HTTP layer speaks JSON, but nothing past the socket handler does:
a body is validated into a :class:`QueryRequest` at the door (unknown
fields, wrong types and missing requireds are rejected with a ``400``
before any engine work), and every answer leaves as a
:class:`QueryResponse`.  This is the pydantic request-model idiom
(cf. ``/root/related/acl-org__acl-2023-miniconf``) rebuilt on stdlib
dataclasses, because the container bakes in no pydantic — the explicit
``from_dict`` validators play the role of pydantic's parsing layer.

Rejections are *typed*: every fast-reject raises a
:class:`RejectedError` subclass carrying its HTTP status (429 for
quota, 503 for a full admission queue or a draining server), so the
in-process client, the HTTP layer and the benchmarks all observe the
same admission decisions.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Mapping, Optional, Sequence

from ..errors import ReproError
from ..planner.evaluator import QueryResult

__all__ = [
    "BadRequestError",
    "DrainingError",
    "FrontDoorError",
    "QueryRequest",
    "QueryResponse",
    "QueueFullError",
    "QuotaExceededError",
    "RejectedError",
    "error_body",
]


class FrontDoorError(ReproError):
    """Base of every front-door failure; carries the HTTP status."""

    status = 500
    code = "internal-error"


class BadRequestError(FrontDoorError):
    """The request body failed validation (never reaches the engine)."""

    status = 400
    code = "bad-request"


class RejectedError(FrontDoorError):
    """Admission control refused the request (a *fast* reject).

    ``retry_after`` (seconds, optional) tells a well-behaved client
    when capacity is expected back; the HTTP layer exports it as a
    ``Retry-After`` header.
    """

    status = 429
    code = "rejected"

    def __init__(self, message: str, retry_after: Optional[float] = None) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class QuotaExceededError(RejectedError):
    """The tenant's token bucket is empty."""

    status = 429
    code = "quota-exceeded"


class QueueFullError(RejectedError):
    """The bounded admission queue is at capacity — shed, don't buffer."""

    status = 503
    code = "queue-full"


class DrainingError(RejectedError):
    """The server is draining for shutdown; no new work is admitted."""

    status = 503
    code = "draining"


def error_body(error: FrontDoorError) -> dict[str, object]:
    """The JSON body every error response carries."""
    body: dict[str, object] = {
        "error": error.code,
        "status": error.status,
        "message": str(error),
    }
    retry_after = getattr(error, "retry_after", None)
    if retry_after is not None:
        body["retry_after"] = round(float(retry_after), 3)
    return body


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise BadRequestError(message)


@dataclass(frozen=True)
class QueryRequest:
    """One validated query request.

    ``options`` are forwarded to the strategy verbatim (they enter the
    coalescing and result-cache keys, so only hashable values coalesce);
    ``documents`` scopes the query to named documents and is only
    meaningful against the sharded service.
    """

    xpath: str
    strategy: str = "auto"
    tenant: str = "default"
    use_result_cache: bool = True
    documents: Optional[tuple[str, ...]] = None
    query_id: Optional[str] = None
    options: Mapping[str, object] = field(default_factory=dict)

    #: Every field a request body may carry (anything else is a 400).
    FIELDS = (
        "xpath",
        "strategy",
        "tenant",
        "use_result_cache",
        "documents",
        "query_id",
        "options",
    )

    @classmethod
    def from_dict(cls, body: object) -> "QueryRequest":
        """Validate one decoded JSON body into a request.

        Typed rejection happens here, before any admission or engine
        work: unknown fields, missing ``xpath`` and wrong scalar types
        all raise :class:`BadRequestError` (HTTP 400).
        """
        _require(isinstance(body, Mapping), f"request body must be a JSON object, got {type(body).__name__}")
        unknown = sorted(set(body) - set(cls.FIELDS))
        _require(not unknown, f"unknown request field(s) {unknown}; expected a subset of {list(cls.FIELDS)}")
        _require("xpath" in body, "request is missing the required 'xpath' field")
        xpath = body["xpath"]
        _require(isinstance(xpath, str) and bool(xpath.strip()), "'xpath' must be a non-empty string")
        strategy = body.get("strategy", "auto")
        _require(isinstance(strategy, str) and bool(strategy), "'strategy' must be a non-empty string")
        tenant = body.get("tenant", "default")
        _require(isinstance(tenant, str) and bool(tenant), "'tenant' must be a non-empty string")
        use_result_cache = body.get("use_result_cache", True)
        _require(isinstance(use_result_cache, bool), "'use_result_cache' must be a boolean")
        documents = body.get("documents")
        if documents is not None:
            _require(
                isinstance(documents, Sequence)
                and not isinstance(documents, (str, bytes))
                and all(isinstance(name, str) for name in documents),
                "'documents' must be a list of document names",
            )
            documents = tuple(documents)
        query_id = body.get("query_id")
        _require(
            query_id is None or isinstance(query_id, str),
            "'query_id' must be a string",
        )
        options = body.get("options", {})
        _require(
            isinstance(options, Mapping)
            and all(isinstance(name, str) for name in options),
            "'options' must be an object with string keys",
        )
        return cls(
            xpath=xpath,
            strategy=strategy,
            tenant=tenant,
            use_result_cache=use_result_cache,
            documents=documents,
            query_id=query_id,
            options=dict(options),
        )

    def to_dict(self) -> dict[str, object]:
        """The JSON body shape (round-trips through :meth:`from_dict`)."""
        body = asdict(self)
        body["options"] = dict(self.options)
        if self.documents is not None:
            body["documents"] = list(self.documents)
        return {name: value for name, value in body.items() if value is not None}


@dataclass(frozen=True)
class QueryResponse:
    """One served answer, JSON-shaped.

    ``coalesced`` marks an answer fanned out from another request's
    execution (single-flight); ``cached`` is the engine-side result
    cache, exactly as :class:`~repro.planner.evaluator.QueryResult`
    reports it.  The two are independent: a coalesced answer may itself
    have been a cache hit for the flight leader.
    """

    xpath: str
    strategy: str
    ids: tuple[int, ...]
    cached: bool
    coalesced: bool
    elapsed_seconds: float
    total_cost: int
    query_id: Optional[str] = None
    tenant: str = "default"

    @classmethod
    def from_result(
        cls,
        request: QueryRequest,
        result: QueryResult,
        coalesced: bool,
        elapsed_seconds: float,
    ) -> "QueryResponse":
        return cls(
            xpath=result.xpath,
            strategy=result.strategy,
            ids=tuple(result.ids),
            cached=result.cached,
            coalesced=coalesced,
            elapsed_seconds=elapsed_seconds,
            total_cost=result.total_cost,
            query_id=request.query_id,
            tenant=request.tenant,
        )

    def to_dict(self) -> dict[str, object]:
        body = {
            "xpath": self.xpath,
            "strategy": self.strategy,
            "ids": list(self.ids),
            "cardinality": len(self.ids),
            "cached": self.cached,
            "coalesced": self.coalesced,
            "elapsed_seconds": self.elapsed_seconds,
            "total_cost": self.total_cost,
            "tenant": self.tenant,
        }
        if self.query_id is not None:
            body["query_id"] = self.query_id
        return body
