"""The concurrent front door: asyncio serving over a query service.

Two layers, separable on purpose:

* :class:`FrontDoor` — the transport-free core.  ``await
  handle(request)`` takes a validated :class:`QueryRequest` (or a raw
  dict) through quota, single-flight coalescing and bounded admission,
  runs the blocking service call on a worker thread, and returns a
  :class:`QueryResponse`.  Benchmarks and tests drive *this* with
  hundreds of simulated connections (asyncio tasks) — no sockets, no
  HTTP parsing in the measured path.
* :class:`FrontDoorServer` — a stdlib-only HTTP/1.1 + JSON skin over a
  front door (``asyncio.start_server``; no aiohttp/uvloop dependency
  creep).  ``POST /query`` serves requests; ``GET /healthz``,
  ``GET /metrics`` (Prometheus text) and ``GET /describe`` expose the
  observability surface; ``POST /drain`` gracefully drains.

Request flow (the order is the admission pipeline of
``docs/ARCHITECTURE.md``):

1. **validate** — malformed bodies are 400s before any accounting;
2. **quota** — the tenant's token bucket (fast 429, ``retry_after``);
3. **coalesce** — identical in-flight queries (same normalized xpath,
   strategy, options, scope, cache flag *and service generation*) join
   the running flight as followers and never touch the engine;
4. **admit** — flight leaders take one of ``max_concurrency`` slots or
   wait in the bounded queue (fast 503 beyond it);
5. **execute** — the blocking ``service.execute`` runs on the front
   door's thread pool, inside the caller's telemetry context, so the
   engine's ``query`` span lands under this request's trace.

Every follower gets a *private copy* of the flight's result, so the
fan-out can never alias one mutable answer across clients.
"""

from __future__ import annotations

import asyncio
import contextvars
import inspect
import json
from concurrent.futures import ThreadPoolExecutor
from typing import Mapping, Optional, Union

from ..errors import ReproError
from ..obs.clock import now as _now
from ..planner.evaluator import QueryResult
from ..query.parser import normalize_xpath
from ..service.base import ServingFacade
from .admission import AdmissionController, QuotaSpec
from .coalesce import SingleFlight
from .models import (
    BadRequestError,
    DrainingError,
    FrontDoorError,
    QueryRequest,
    QueryResponse,
    RejectedError,
    error_body,
)

__all__ = ["FrontDoor", "FrontDoorServer"]


class FrontDoor:
    """Quota + coalescing + bounded admission over a blocking service."""

    def __init__(
        self,
        service: ServingFacade,
        coalesce: bool = True,
        max_concurrency: int = 8,
        max_queue: int = 64,
        quotas: Optional[Mapping[str, QuotaSpec]] = None,
        default_quota: Optional[QuotaSpec] = None,
    ) -> None:
        self.service = service
        #: Share the service's hub so front-door spans, the engine's
        #: query spans and the admission events land in one trace tree.
        self.telemetry = service.telemetry
        self.coalesce = coalesce
        self.flights = SingleFlight()
        self.admission = AdmissionController(
            max_concurrency=max_concurrency,
            max_queue=max_queue,
            quotas=quotas,
            default_quota=default_quota,
        )
        #: One worker thread per execution slot: an admitted leader
        #: never queues invisibly inside the executor.
        self._executor = ThreadPoolExecutor(
            max_workers=max_concurrency, thread_name_prefix="frontdoor"
        )
        #: Whether the wrapped service takes a ``documents=`` scope
        #: (the sharded facade does, the single-engine one does not).
        self._supports_documents = (
            "documents" in inspect.signature(service.execute).parameters
        )
        self.requests_served = 0
        self.requests_rejected = 0

    # ------------------------------------------------------------------
    # The request pipeline
    # ------------------------------------------------------------------
    async def handle(
        self, request: Union[QueryRequest, Mapping]
    ) -> QueryResponse:
        """Serve one request; raises a :class:`FrontDoorError` on reject."""
        if not isinstance(request, QueryRequest):
            request = QueryRequest.from_dict(request)
        started = _now()
        attributes = {
            "tier": "frontdoor",
            "xpath": request.xpath,
            "tenant": request.tenant,
        }
        if request.query_id is not None:
            attributes["query_id"] = request.query_id
        try:
            with self.telemetry.span("frontdoor", **attributes) as root:
                response = await self._admit_and_run(request, started)
                root.annotate(
                    outcome="coalesced" if response.coalesced else "executed",
                    strategy=response.strategy,
                )
        except FrontDoorError as error:
            self.requests_rejected += 1
            self._record(request, started, outcome=error.code, served=False)
            raise
        self.requests_served += 1
        self._record(
            request,
            started,
            outcome="coalesced" if response.coalesced else "executed",
            served=True,
            cached=response.cached,
            strategy=response.strategy,
        )
        return response

    async def _admit_and_run(
        self, request: QueryRequest, started: float
    ) -> QueryResponse:
        if self.admission.draining:
            raise DrainingError("server is draining; not accepting new queries")
        if request.documents is not None and not self._supports_documents:
            raise BadRequestError(
                "'documents' scoping requires the sharded service; "
                f"{type(self.service).__name__} does not support it"
            )
        self.admission.check_quota(request.tenant)
        key = self.flight_key(request)
        with self.telemetry.span("coalesce", xpath=request.xpath) as span:
            result, coalesced = await self.flights.run(
                key, lambda: self._execute(request)
            )
            span.annotate(
                outcome="hit" if coalesced else "lead",
                in_flight=self.flights.in_flight,
            )
        if coalesced:
            self.telemetry.event(
                "coalesced", xpath=request.xpath, tenant=request.tenant
            )
            # Followers share the leader's QueryResult object; hand each
            # its own copy so no client can mutate another's answer.
            result = ServingFacade._copy_result(result, cached=result.cached)
        return QueryResponse.from_result(
            request, result, coalesced, elapsed_seconds=_now() - started
        )

    async def _execute(self, request: QueryRequest) -> QueryResult:
        """The leader's path: bounded admission, then a worker thread."""
        with self.telemetry.span("admit") as span:
            await self.admission.acquire()
            span.annotate(
                in_flight=self.admission.in_flight,
                queued=self.admission.queue_depth,
            )
        try:
            loop = asyncio.get_running_loop()
            # copy_context(): the engine's root "query" span opened on
            # the worker thread parents under this request's trace.
            context = contextvars.copy_context()
            return await loop.run_in_executor(
                self._executor, context.run, self._run_blocking, request
            )
        finally:
            self.admission.release()

    def _run_blocking(self, request: QueryRequest) -> QueryResult:
        options = dict(request.options)
        if request.documents is not None:
            options["documents"] = list(request.documents)
        return self.service.execute(
            request.xpath,
            strategy=request.strategy,
            use_result_cache=request.use_result_cache,
            query_id=request.query_id,
            **options,
        )

    # ------------------------------------------------------------------
    # Coalescing key
    # ------------------------------------------------------------------
    def flight_key(self, request: QueryRequest) -> Optional[tuple]:
        """``(normalized_xpath, strategy, options, scope, cache, generation)``.

        ``None`` (no coalescing) when disabled or when the options are
        unhashable; the generation component is what keeps a write from
        ever being masked by an older in-flight execution.
        """
        if not self.coalesce:
            return None
        options_key = ServingFacade._options_key(
            request.strategy, dict(request.options)
        )
        if options_key is None:
            return None
        return (
            normalize_xpath(request.xpath),
            options_key,
            request.documents,
            request.use_result_cache,
            self.service.generation(),
        )

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def _record(
        self,
        request: QueryRequest,
        started: float,
        outcome: str,
        served: bool,
        cached: bool = False,
        strategy: str = "-",
    ) -> None:
        elapsed = _now() - started
        if not self.telemetry.enabled:
            return
        self.telemetry.metrics.histogram(
            "repro_frontdoor_latency_seconds",
            "Front-door request wall time, served vs rejected",
        ).observe(elapsed, disposition="served" if served else "rejected")
        self.telemetry.metrics.counter(
            "repro_frontdoor_requests_total",
            "Front-door requests by tenant and outcome",
        ).inc(tenant=request.tenant, outcome=outcome)
        if served:
            self.telemetry.record_query("frontdoor", strategy, elapsed, cached)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def drain(self) -> None:
        """Stop admitting new queries, wait for in-flight work."""
        self.telemetry.event(
            "frontdoor-drain",
            in_flight=self.admission.in_flight,
            queued=self.admission.queue_depth,
        )
        await self.admission.drain()

    def close(self) -> None:
        """Release the worker threads (after :meth:`drain`; idempotent)."""
        self._executor.shutdown(wait=True)

    def __enter__(self) -> "FrontDoor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def describe(self) -> dict[str, object]:
        return {
            "coalesce": self.coalesce,
            "requests_served": self.requests_served,
            "requests_rejected": self.requests_rejected,
            "coalesced_hits": self.flights.coalesced_hits,
            "flights": self.flights.describe(),
            "admission": self.admission.describe(),
            "service": type(self.service).__name__,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FrontDoor(served={self.requests_served}, "
            f"coalesced={self.flights.coalesced_hits}, "
            f"rejected={self.requests_rejected})"
        )


# ----------------------------------------------------------------------
# The HTTP/1.1 + JSON skin
# ----------------------------------------------------------------------

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Refuse request bodies past this size (a malformed content-length
#: must not buffer unbounded memory).
MAX_BODY_BYTES = 4 * 1024 * 1024


class FrontDoorServer:
    """A stdlib asyncio HTTP server around a :class:`FrontDoor`.

    ``port=0`` (the default) binds an ephemeral port; read it back from
    :attr:`address` after :meth:`start`.  Connections are keep-alive
    HTTP/1.1; :meth:`stop` drains the front door before closing.
    """

    def __init__(
        self,
        frontdoor: FrontDoor,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.frontdoor = frontdoor
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    # ------------------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Bind and start serving; returns ``(host, port)``."""
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.frontdoor.telemetry.event(
            "frontdoor-listening", host=self.host, port=self.port
        )
        return (self.host, self.port)

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def stop(self, drain: bool = True) -> None:
        """Graceful shutdown: drain admitted work, then close the socket."""
        if drain:
            await self.frontdoor.drain()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.frontdoor.close()

    # ------------------------------------------------------------------
    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                parsed = await self._read_request(reader)
                if parsed is None:
                    break
                method, path, headers, body = parsed
                keep_alive = headers.get("connection", "").lower() != "close"
                status, payload, content_type, extra = await self._dispatch(
                    method, path, body
                )
                self._write_response(
                    writer, status, payload, content_type, extra, keep_alive
                )
                await writer.drain()
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
        ):
            pass  # client went away mid-request; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    @staticmethod
    async def _read_request(reader: asyncio.StreamReader):
        request_line = await reader.readline()
        if not request_line:
            return None
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            raise asyncio.IncompleteReadError(request_line, None)
        method, path = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            length = -1
        if length < 0 or length > MAX_BODY_BYTES:
            raise asyncio.IncompleteReadError(b"", None)
        body = await reader.readexactly(length) if length else b""
        return method, path, headers, body

    async def _dispatch(self, method: str, path: str, body: bytes):
        """Route one request; returns (status, payload, content-type, headers)."""
        path = path.split("?", 1)[0]
        if path == "/query":
            if method != "POST":
                return self._json(405, {"error": "method-not-allowed", "status": 405, "message": "POST /query"})
            return await self._serve_query(body)
        if path == "/healthz":
            return self._json(
                200 if not self.frontdoor.admission.draining else 503,
                {
                    "status": "draining" if self.frontdoor.admission.draining else "ok",
                    "served": self.frontdoor.requests_served,
                },
            )
        if path == "/describe":
            return self._json(200, self.frontdoor.describe())
        if path == "/metrics":
            text = self.frontdoor.service.metrics_text()
            return (200, text.encode("utf-8"), "text/plain; version=0.0.4", ())
        if path == "/drain" and method == "POST":
            await self.frontdoor.drain()
            return self._json(200, {"status": "drained"})
        return self._json(
            404, {"error": "not-found", "status": 404, "message": path}
        )

    async def _serve_query(self, body: bytes):
        try:
            decoded = json.loads(body.decode("utf-8") or "null")
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            bad = BadRequestError(f"request body is not valid JSON: {error}")
            return self._json(bad.status, error_body(bad))
        try:
            response = await self.frontdoor.handle(decoded)
        except RejectedError as rejected:
            extra = ()
            if rejected.retry_after is not None:
                extra = (("Retry-After", f"{max(0.0, rejected.retry_after):.3f}"),)
            return self._json(rejected.status, error_body(rejected), extra)
        except FrontDoorError as error:
            return self._json(error.status, error_body(error))
        except ReproError as error:
            # Parse/planning/lookup errors are the *query's* fault: a
            # deterministic 400, never a 500.
            return self._json(
                400,
                {
                    "error": "query-error",
                    "status": 400,
                    "kind": type(error).__name__,
                    "message": str(error),
                },
            )
        return self._json(200, response.to_dict())

    @staticmethod
    def _json(status: int, payload: object, extra=()):
        return (
            status,
            json.dumps(payload, sort_keys=True).encode("utf-8"),
            "application/json",
            tuple(extra),
        )

    @staticmethod
    def _write_response(
        writer: asyncio.StreamWriter,
        status: int,
        payload: bytes,
        content_type: str,
        extra_headers,
        keep_alive: bool,
    ) -> None:
        reason = _REASONS.get(status, "OK")
        headers = [
            f"HTTP/1.1 {status} {reason}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(payload)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        headers.extend(f"{name}: {value}" for name, value in extra_headers)
        writer.write(
            ("\r\n".join(headers) + "\r\n\r\n").encode("latin-1") + payload
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FrontDoorServer({self.host}:{self.port})"
