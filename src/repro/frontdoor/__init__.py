"""The concurrent front door: asyncio serving over the query services.

Layers, outermost first:

* :class:`FrontDoorServer` — stdlib HTTP/1.1 + JSON (``POST /query``,
  ``GET /healthz`` / ``/metrics`` / ``/describe``, ``POST /drain``);
* :class:`FrontDoor` — the transport-free pipeline: typed validation,
  per-tenant token-bucket quotas, single-flight coalescing of identical
  in-flight queries, bounded admission with fast rejects, graceful
  drain, and execution of the blocking service call on a worker pool;
* :mod:`~repro.frontdoor.models` — the request/response dataclasses and
  the typed rejection errors the whole stack shares.
"""

from .admission import AdmissionController, TokenBucket
from .coalesce import SingleFlight
from .models import (
    BadRequestError,
    DrainingError,
    FrontDoorError,
    QueryRequest,
    QueryResponse,
    QueueFullError,
    QuotaExceededError,
    RejectedError,
    error_body,
)
from .server import FrontDoor, FrontDoorServer

__all__ = [
    "AdmissionController",
    "BadRequestError",
    "DrainingError",
    "FrontDoor",
    "FrontDoorError",
    "FrontDoorServer",
    "QueryRequest",
    "QueryResponse",
    "QueueFullError",
    "QuotaExceededError",
    "RejectedError",
    "SingleFlight",
    "TokenBucket",
    "error_body",
]
