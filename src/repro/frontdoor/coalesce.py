"""Single-flight coalescing of identical in-flight queries.

Under concurrency a hot query arrives many times while its first
arrival is still executing.  Without coalescing each arrival pays full
execution (the result cache only helps *after* the first completion);
with it, the first arrival becomes the flight *leader*, every identical
arrival becomes a *follower* awaiting the leader's future, and the
engine runs once per flight regardless of the concurrent client count.

The flight key is ``(normalized_xpath, strategy, options, documents,
use_result_cache, generation)`` — built by the front door from
:meth:`~repro.service.base.ServingFacade.generation` — so two requests
share a flight only when no write landed between them: a write bumps
the generation, later arrivals key to a *new* flight, and the old one
keeps serving only the waiters that arrived before the write (each of
which is answered consistently with its own arrival time).  That is
the coalescing contract the generation-bump race test pins.

Single-threaded by construction: every method runs on the event loop,
and the lookup/registration pair in :meth:`SingleFlight.run` contains
no ``await``, so registration is atomic and two leaders can never race
for one key.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable, Hashable, Optional, Tuple

__all__ = ["SingleFlight"]


class _Flight:
    """One in-flight execution: its future plus the follower count."""

    __slots__ = ("future", "followers")

    def __init__(self, future: asyncio.Future) -> None:
        self.future = future
        self.followers = 0


class SingleFlight:
    """In-flight deduplication keyed on whatever the caller hashes by."""

    def __init__(self) -> None:
        self._flights: dict[Hashable, _Flight] = {}
        #: Executions actually started (flight leaders).
        self.flights_started = 0
        #: Requests served by riding another request's execution.
        self.coalesced_hits = 0
        #: Requests that bypassed coalescing (no key, e.g. unhashable
        #: options or coalescing disabled).
        self.uncoalesced = 0

    @property
    def in_flight(self) -> int:
        return len(self._flights)

    async def run(
        self,
        key: Optional[Hashable],
        supplier: Callable[[], Awaitable],
    ) -> Tuple[object, bool]:
        """Run ``supplier`` once per key; returns ``(result, coalesced)``.

        A ``None`` key opts out (always executes).  The leader's
        failure fans out to every follower — they asked the exact same
        question, so they get the exact same answer, including a
        rejection by admission control.
        """
        if key is None:
            self.uncoalesced += 1
            return await supplier(), False
        flight = self._flights.get(key)
        if flight is not None:
            self.coalesced_hits += 1
            flight.followers += 1
            # shield(): a cancelled follower must not cancel the shared
            # execution other followers (and the leader) still want.
            return await asyncio.shield(flight.future), True
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        flight = _Flight(future)
        self._flights[key] = flight
        self.flights_started += 1
        try:
            result = await supplier()
        except BaseException as error:
            if not future.done():
                future.set_exception(error)
                if flight.followers == 0:
                    # Nobody will await it; mark the exception retrieved
                    # so the loop never logs a phantom "never retrieved".
                    future.exception()
            raise
        else:
            if not future.done():
                future.set_result(result)
            return result, False
        finally:
            # Popped before the leader returns: later arrivals start a
            # fresh flight instead of reading a completed one (the
            # result cache, keyed the same way, covers *that* window).
            self._flights.pop(key, None)

    def describe(self) -> dict[str, object]:
        return {
            "in_flight": len(self._flights),
            "flights_started": self.flights_started,
            "coalesced_hits": self.coalesced_hits,
            "uncoalesced": self.uncoalesced,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SingleFlight(in_flight={len(self._flights)}, "
            f"started={self.flights_started}, "
            f"coalesced={self.coalesced_hits})"
        )
