"""A small thread-safe LRU cache with TTL admission and hit/miss accounting.

``functools.lru_cache`` memoises a function, but the service needs an
*object* it can clear on invalidation, size per service instance and
introspect for its statistics — hence this minimal OrderedDict-based
implementation.  A ``max_size`` of zero disables caching entirely (every
``get`` misses, ``put`` is a no-op), which lets callers switch a cache
off without branching at every call site.

Two serving-tier concerns live here as well:

* **Thread safety** — every operation runs under one re-entrant lock,
  so the scatter-gather execution tier can share a cache between a
  request thread and the maintenance path without corrupting the
  recency list or the counters.
* **Admission control** — an optional ``ttl_seconds`` bounds how long
  an entry may be served after it was put; expired entries count as
  misses and are dropped on access (lazily — there is no sweeper
  thread), tracked by the ``expiries`` counter next to capacity
  ``evictions``.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Callable, Hashable, Iterator, Optional, TypeVar

V = TypeVar("V")

_MISSING = object()


class LRUCache:
    """Least-recently-used mapping bounded to ``max_size`` entries.

    Parameters
    ----------
    max_size:
        Capacity bound; the least recently used entry is evicted past it.
        Zero disables the cache.
    ttl_seconds:
        Optional time-to-live per entry.  An entry older than this at
        lookup time is treated as a miss and dropped (``expiries`` is
        bumped instead of ``evictions``).  ``None`` keeps entries until
        evicted or cleared.
    clock:
        Monotonic time source, injectable so tests can advance time
        deterministically.
    on_clear:
        Optional callback invoked *outside* the cache lock after each
        :meth:`clear`, with the number of live entries dropped.  The
        observability layer uses it to publish cache-invalidation
        events; keeping the call outside the lock means a listener can
        never deadlock against cache operations it triggers.
    """

    def __init__(
        self,
        max_size: int,
        ttl_seconds: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
        on_clear: Optional[Callable[[int], None]] = None,
    ) -> None:
        if max_size < 0:
            raise ValueError(f"cache size cannot be negative: {max_size}")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError(f"ttl must be positive or None: {ttl_seconds}")
        self.max_size = max_size
        self.ttl_seconds = ttl_seconds
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expiries = 0
        #: Invalidation accounting: how many times :meth:`clear` ran and
        #: how many live entries it dropped in total.  Surfaced by
        #: :meth:`describe` so maintenance-heavy workloads (document
        #: removals invalidate result caches) can be asserted on.
        self.clears = 0
        self.cleared_entries = 0
        self._clock = clock
        self._on_clear = on_clear
        self._lock = threading.RLock()
        #: key -> (expiry deadline or None, value)
        self._entries: OrderedDict[Hashable, tuple[Optional[float], object]] = (
            OrderedDict()
        )

    # ------------------------------------------------------------------
    def get(self, key: Hashable, default: Optional[V] = None):
        """The cached value (refreshing its recency), else ``default``.

        A value past its TTL deadline is dropped and counted as a miss.
        """
        with self._lock:
            entry = self._entries.get(key, _MISSING)
            if entry is _MISSING:
                self.misses += 1
                return default
            deadline, value = entry
            if deadline is not None and self._clock() >= deadline:
                del self._entries[key]
                self.expiries += 1
                self.misses += 1
                return default
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: Hashable, value) -> None:
        """Insert or refresh one entry, evicting the oldest past capacity.

        A refresh restarts the entry's TTL deadline: admission is dated
        from the most recent put, not the first.
        """
        with self._lock:
            if self.max_size == 0:
                return
            deadline = (
                self._clock() + self.ttl_seconds
                if self.ttl_seconds is not None
                else None
            )
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = (deadline, value)
            while len(self._entries) > self.max_size:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (hit/miss counters are kept).

        Counted in ``clears`` / ``cleared_entries`` so invalidation
        traffic is observable next to capacity evictions and TTL
        expiries.
        """
        with self._lock:
            dropped = len(self._entries)
            self.clears += 1
            self.cleared_entries += dropped
            self._entries.clear()
        if self._on_clear is not None:
            self._on_clear(dropped)

    # ------------------------------------------------------------------
    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            entry = self._entries.get(key, _MISSING)
            if entry is _MISSING:
                return False
            deadline, _ = entry
            if deadline is not None and self._clock() >= deadline:
                # Drop the corpse now so size reports stay truthful; a
                # membership probe is not a lookup, so no miss is charged.
                del self._entries[key]
                self.expiries += 1
                return False
            return True

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __iter__(self) -> Iterator[Hashable]:
        with self._lock:
            return iter(list(self._entries))

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused).

        Reads ``hits`` and ``misses`` under the lock: a lock-free read
        racing a concurrent ``get`` could pair a fresh ``hits`` with a
        stale ``misses`` (or vice versa) and report a rate outside the
        values any consistent counter pair would produce.
        """
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def describe(self) -> dict[str, object]:
        """Counter snapshot for service ``describe()`` reports."""
        with self._lock:
            return {
                "size": len(self._entries),
                "max_size": self.max_size,
                "ttl_seconds": self.ttl_seconds,
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": self.hit_rate,
                "evictions": self.evictions,
                "expiries": self.expiries,
                "clears": self.clears,
                "cleared_entries": self.cleared_entries,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LRUCache(size={len(self._entries)}/{self.max_size}, "
            f"hits={self.hits}, misses={self.misses})"
        )
