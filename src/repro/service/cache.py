"""A small LRU cache with hit/miss accounting for the service layer.

``functools.lru_cache`` memoises a function, but the service needs an
*object* it can clear on invalidation, size per service instance and
introspect for its statistics — hence this minimal OrderedDict-based
implementation.  A ``max_size`` of zero disables caching entirely (every
``get`` misses, ``put`` is a no-op), which lets callers switch a cache
off without branching at every call site.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, Iterator, Optional, TypeVar

V = TypeVar("V")

_MISSING = object()


class LRUCache:
    """Least-recently-used mapping bounded to ``max_size`` entries."""

    def __init__(self, max_size: int) -> None:
        if max_size < 0:
            raise ValueError(f"cache size cannot be negative: {max_size}")
        self.max_size = max_size
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: OrderedDict[Hashable, object] = OrderedDict()

    # ------------------------------------------------------------------
    def get(self, key: Hashable, default: Optional[V] = None):
        """The cached value (refreshing its recency), else ``default``."""
        value = self._entries.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return default
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, value) -> None:
        """Insert or refresh one entry, evicting the oldest past capacity."""
        if self.max_size == 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        while len(self._entries) > self.max_size:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (hit/miss counters are kept)."""
        self._entries.clear()

    # ------------------------------------------------------------------
    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._entries)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LRUCache(size={len(self._entries)}/{self.max_size}, "
            f"hits={self.hits}, misses={self.misses})"
        )
