"""Shared machinery of the single-node and sharded query services.

:class:`ServingFacade` factors out everything that does not care
whether execution happens on one engine or is scattered across shards:

* the batch loop (:meth:`~ServingFacade.execute_batch`) with its shared
  stats window, cache-hit accounting and per-strategy counts,
* hashable cache keys for (query, strategy, options) triples,
* defensive copies of cached :class:`QueryResult` objects,
* cache counter reporting for ``describe()``.

Subclasses provide :meth:`~ServingFacade.execute` plus the two stats
hooks (:meth:`~ServingFacade._stats_snapshot` /
:meth:`~ServingFacade._stats_diff`), which is exactly where one engine
and N shards differ: the sharded tier snapshots every shard's collector
and sums the diffs through
:func:`~repro.storage.stats.sum_snapshots`.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Iterable, Optional, Union

from ..planner.evaluator import QueryResult
from ..query.parser import normalize_xpath
from ..query.twig import TwigPattern
from ..storage.stats import weighted_cost
from .cache import LRUCache

#: The pseudo-strategy name that delegates plan choice to the optimizer.
AUTO_STRATEGY = "auto"


@dataclass
class BatchResult:
    """The answers to one query batch plus batch-level measurements.

    ``cost`` is the delta of one shared stats snapshot taken around the
    whole batch, so it prices exactly the logical work the batch charged
    — cached answers contribute nothing to it.
    """

    results: list[QueryResult]
    elapsed_seconds: float
    cost: dict[str, int] = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0
    strategy_counts: dict[str, int] = field(default_factory=dict)

    @property
    def total_cost(self) -> int:
        """Weighted logical cost of the whole batch (shared formula)."""
        return weighted_cost(self.cost)

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)


class ServingFacade:
    """Common batch execution and cache accounting for query services."""

    # ------------------------------------------------------------------
    # Hooks subclasses implement
    # ------------------------------------------------------------------
    def execute(
        self,
        query: Union[str, TwigPattern],
        strategy: str = AUTO_STRATEGY,
        use_result_cache: bool = True,
        **strategy_options,
    ) -> QueryResult:
        raise NotImplementedError

    def _stats_snapshot(self):
        """An opaque stats checkpoint taken before a batch runs."""
        raise NotImplementedError

    def _stats_diff(self, before) -> dict[str, int]:
        """Counter deltas since a :meth:`_stats_snapshot` checkpoint."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Batch execution (shared)
    # ------------------------------------------------------------------
    def execute_batch(
        self,
        queries: Iterable[Union[str, TwigPattern]],
        strategy: str = AUTO_STRATEGY,
        use_result_cache: bool = True,
        **strategy_options,
    ) -> BatchResult:
        """Evaluate many queries under one shared stats window.

        Returns a :class:`BatchResult` whose ``cost`` is the counter
        delta across the whole batch — the logical work actually
        charged, with repeated queries served from the result cache for
        free.
        """
        before = self._stats_snapshot()
        started = time.perf_counter()
        results: list[QueryResult] = []
        hits = 0
        strategy_counts: dict[str, int] = {}
        for query in queries:
            result = self.execute(
                query,
                strategy=strategy,
                use_result_cache=use_result_cache,
                **strategy_options,
            )
            hits += 1 if result.cached else 0
            strategy_counts[result.strategy] = (
                strategy_counts.get(result.strategy, 0) + 1
            )
            results.append(result)
        elapsed = time.perf_counter() - started
        return BatchResult(
            results=results,
            elapsed_seconds=elapsed,
            cost=self._stats_diff(before),
            cache_hits=hits,
            cache_misses=len(results) - hits,
            strategy_counts=strategy_counts,
        )

    # ------------------------------------------------------------------
    # Cache key and copy helpers (shared)
    # ------------------------------------------------------------------
    @staticmethod
    def _options_key(name: str, options: dict) -> Optional[tuple]:
        try:
            key = (name, tuple(sorted(options.items())))
            hash(key)  # building the tuple alone never hashes the values
        except TypeError:
            # Unhashable option values cannot key the caches.
            return None
        return key

    def _result_key(
        self, xpath: str, strategy: str, strategy_options: dict
    ) -> Optional[tuple]:
        options_key = self._options_key(strategy, strategy_options)
        if options_key is None:
            return None
        return (normalize_xpath(xpath), options_key)

    @staticmethod
    def _copy_result(result: QueryResult, cached: bool = False) -> QueryResult:
        return dataclasses.replace(
            result, ids=list(result.ids), cost=dict(result.cost), cached=cached
        )

    @staticmethod
    def _cache_report(cache: LRUCache) -> dict[str, object]:
        """One cache's counters for ``describe()`` (incl. TTL admission)."""
        return cache.describe()
