"""Shared machinery of the single-node and sharded query services.

:class:`ServingFacade` factors out everything that does not care
whether execution happens on one engine or is scattered across shards:

* the batch loop (:meth:`~ServingFacade.execute_batch`) with its shared
  stats window, cache-hit accounting, per-strategy counts and stable
  per-item query ids,
* hashable cache keys for (query, strategy, options) triples,
* defensive copies of cached :class:`QueryResult` objects,
* cache counter reporting for ``describe()``,
* the observability read surface (:meth:`~ServingFacade.metrics`,
  :meth:`~ServingFacade.metrics_text`, :meth:`~ServingFacade.traces`,
  :meth:`~ServingFacade.slow_queries`) over the
  :class:`~repro.obs.Telemetry` hub every service carries.

Subclasses provide :meth:`~ServingFacade.execute` plus the two stats
hooks (:meth:`~ServingFacade._stats_snapshot` /
:meth:`~ServingFacade._stats_diff`), which is exactly where one engine
and N shards differ: the sharded tier snapshots every shard's collector
and sums the diffs through
:func:`~repro.storage.stats.sum_snapshots`.
"""

from __future__ import annotations

import dataclasses
import zlib
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence, Union

from ..obs import Telemetry, Trace
from ..obs.clock import now as _now
from ..planner.evaluator import QueryResult
from ..query.parser import normalize_xpath
from ..query.twig import TwigPattern
from ..storage.stats import weighted_cost
from .cache import LRUCache

#: The pseudo-strategy name that delegates plan choice to the optimizer.
AUTO_STRATEGY = "auto"


@dataclass
class BatchResult:
    """The answers to one query batch plus batch-level measurements.

    ``cost`` is the delta of one shared stats snapshot taken around the
    whole batch, so it prices exactly the logical work the batch charged
    — cached answers contribute nothing to it.

    ``query_ids`` carries one stable identifier per item, positionally
    aligned with ``results``: the id that was threaded through
    ``execute`` for that item, so traces, cache hits and slow-query
    entries are attributable back to the batch request that caused them.
    """

    results: list[QueryResult]
    elapsed_seconds: float
    cost: dict[str, int] = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0
    strategy_counts: dict[str, int] = field(default_factory=dict)
    query_ids: list[str] = field(default_factory=list)

    @property
    def total_cost(self) -> int:
        """Weighted logical cost of the whole batch (shared formula)."""
        return weighted_cost(self.cost)

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)


class ServingFacade:
    """Common batch execution and cache accounting for query services."""

    #: The shared observability hub; subclasses assign it in their
    #: constructors (and the sharded tier adopts its collection's).
    telemetry: Telemetry

    # ------------------------------------------------------------------
    # Hooks subclasses implement
    # ------------------------------------------------------------------
    def execute(
        self,
        query: Union[str, TwigPattern],
        strategy: str = AUTO_STRATEGY,
        use_result_cache: bool = True,
        query_id: Optional[str] = None,
        **strategy_options,
    ) -> QueryResult:
        raise NotImplementedError

    def _stats_snapshot(self):
        """An opaque stats checkpoint taken before a batch runs."""
        raise NotImplementedError

    def _stats_diff(self, before) -> dict[str, int]:
        """Counter deltas since a :meth:`_stats_snapshot` checkpoint."""
        raise NotImplementedError

    def _activity_counters(self) -> dict[str, int]:
        """The full current stats snapshot, for the metrics scrape."""
        return {}

    def _cache_reports(self) -> dict[str, dict[str, object]]:
        """Cache-name -> counter report, for the metrics scrape."""
        return {}

    def generation(self) -> tuple:
        """A cheap fingerprint of everything that can change answers.

        Subclasses return a hashable tuple that moves on every
        client-visible write (document add/remove/replace/move, index
        build).  The front door keys its single-flight coalescing on
        it, so two requests may share one execution only when no write
        landed between them.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Lifecycle (shared)
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release whatever workers the service owns (idempotent).

        The single-engine service owns no threads, so the base close is
        a no-op; the sharded tier drains its rebalance worker and
        scatter pool.  Defined here so every facade supports the same
        ``with service: ...`` idiom and call sites never leak executor
        threads.
        """

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Batch execution (shared)
    # ------------------------------------------------------------------
    @staticmethod
    def default_query_id(index: int, query: Union[str, TwigPattern]) -> str:
        """A stable, human-scannable id for batch item ``index``.

        Position plus a checksum of the normalized query text, so the
        same batch produces the same ids on every run (determinism) and
        an id alone identifies which query it belonged to.
        """
        if isinstance(query, str):
            text = normalize_xpath(query)
        else:
            text = str(query)
        digest = zlib.crc32(text.encode("utf-8")) & 0xFFFFFFFF
        return f"q{index:03d}-{digest:08x}"

    def execute_batch(
        self,
        queries: Iterable[Union[str, TwigPattern]],
        strategy: str = AUTO_STRATEGY,
        use_result_cache: bool = True,
        query_ids: Optional[Sequence[str]] = None,
        **strategy_options,
    ) -> BatchResult:
        """Evaluate many queries under one shared stats window.

        Returns a :class:`BatchResult` whose ``cost`` is the counter
        delta across the whole batch — the logical work actually
        charged, with repeated queries served from the result cache for
        free.  Each item runs under a stable query id (caller-supplied
        via ``query_ids``, else :meth:`default_query_id`), recorded
        positionally in ``BatchResult.query_ids`` and threaded through
        ``execute`` so traces and slow-query entries name the request.
        """
        queries = list(queries)
        if query_ids is not None:
            ids = [str(query_id) for query_id in query_ids]
            if len(ids) != len(queries):
                raise ValueError(
                    f"query_ids length {len(ids)} != batch length {len(queries)}"
                )
        else:
            ids = [
                self.default_query_id(index, query)
                for index, query in enumerate(queries)
            ]
        before = self._stats_snapshot()
        started = _now()
        results: list[QueryResult] = []
        hits = 0
        strategy_counts: dict[str, int] = {}
        for query, query_id in zip(queries, ids):
            result = self.execute(
                query,
                strategy=strategy,
                use_result_cache=use_result_cache,
                query_id=query_id,
                **strategy_options,
            )
            hits += 1 if result.cached else 0
            strategy_counts[result.strategy] = (
                strategy_counts.get(result.strategy, 0) + 1
            )
            results.append(result)
        elapsed = _now() - started
        return BatchResult(
            results=results,
            elapsed_seconds=elapsed,
            cost=self._stats_diff(before),
            cache_hits=hits,
            cache_misses=len(results) - hits,
            strategy_counts=strategy_counts,
            query_ids=ids,
        )

    # ------------------------------------------------------------------
    # Observability read surface (shared)
    # ------------------------------------------------------------------
    def _scrape(self) -> None:
        """Refresh scrape-time gauges from the live counters.

        Counters the stack already maintains — the
        :class:`~repro.storage.stats.StatsCollector` totals (logical
        cost plus failover / auto-rebalance activity) and the LRU cache
        counters — are exported as gauges set at scrape time rather
        than re-counted, so the metric surface cannot double-count
        them.
        """
        if not self.telemetry.enabled:
            return
        metrics = self.telemetry.metrics
        activity = self._activity_counters()
        if activity:
            stats_gauge = metrics.gauge(
                "repro_stats",
                "StatsCollector totals (logical cost and activity counters)",
            )
            for name, value in activity.items():
                stats_gauge.set(value, counter=name)
        reports = self._cache_reports()
        if reports:
            cache_gauge = metrics.gauge(
                "repro_cache",
                "LRU cache counters, by cache and counter name",
            )
            for cache_name, report in reports.items():
                for counter in (
                    "size",
                    "hits",
                    "misses",
                    "evictions",
                    "expiries",
                    "clears",
                    "cleared_entries",
                ):
                    if counter in report:
                        cache_gauge.set(
                            report[counter], cache=cache_name, counter=counter
                        )

    def metrics(self) -> dict[str, object]:
        """A JSON-serializable metrics snapshot (refreshes the gauges)."""
        self._scrape()
        return self.telemetry.metrics.snapshot()

    def metrics_text(self) -> str:
        """Prometheus-style text exposition of :meth:`metrics`."""
        self._scrape()
        return self.telemetry.metrics_text()

    def traces(self, last: Optional[int] = None) -> list[Trace]:
        """The most recent finished query traces, oldest first."""
        return self.telemetry.traces(last=last)

    def slow_queries(self, last: Optional[int] = None) -> list[Trace]:
        """Retained traces that crossed the slow-query threshold."""
        return self.telemetry.slow_queries(last=last)

    # ------------------------------------------------------------------
    # Cache key and copy helpers (shared)
    # ------------------------------------------------------------------
    @staticmethod
    def _options_key(name: str, options: dict) -> Optional[tuple]:
        try:
            key = (name, tuple(sorted(options.items())))
            hash(key)  # building the tuple alone never hashes the values
        except TypeError:
            # Unhashable option values cannot key the caches.
            return None
        return key

    def _result_key(
        self, xpath: str, strategy: str, strategy_options: dict
    ) -> Optional[tuple]:
        options_key = self._options_key(strategy, strategy_options)
        if options_key is None:
            return None
        return (normalize_xpath(xpath), options_key)

    @staticmethod
    def _copy_result(result: QueryResult, cached: bool = False) -> QueryResult:
        return dataclasses.replace(
            result, ids=list(result.ids), cost=dict(result.cost), cached=cached
        )

    @staticmethod
    def _cache_report(cache: LRUCache) -> dict[str, object]:
        """One cache's counters for ``describe()`` (incl. TTL admission)."""
        return cache.describe()
